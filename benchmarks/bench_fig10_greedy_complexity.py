"""Figure 10 — complexity of the Greedy heuristic on the scale-up workload.

The paper plots, for CQ1..CQ5, the total number of cost propagations across
equivalence nodes and the total number of cost (benefit) recomputations
initiated, and observes that both grow almost linearly with the number of
queries — far below the worst-case O(k^2 e) bound — because the multi-query
DAG is "short and fat".

The counters are invariant under the array-backed cost engine rewrite
(:mod:`repro.optimizer.engine`) *and* under the dense incremental state with
its fused monotonicity probe loop: CQ1..CQ5 report 310/1007/1633/2208/2913
cost propagations and 26/65/101/134/172 benefit recomputations before and
after both reworks — the engine changes constant factors, not the algorithm.
The randomized differential suite (``tests/test_differential.py``) pins the
equivalences the counters rely on.
"""

import pytest

from repro import Algorithm
from repro.workloads.scaleup import all_scaleup_workloads

WORKLOADS = all_scaleup_workloads()


@pytest.fixture(scope="module")
def figure10_counters(psp_opt):
    counters = {}
    print("\n=== Figure 10: greedy complexity counters ===")
    print(f"{'workload':<10s}{'queries':>9s}{'propagations':>15s}{'recomputations':>16s}{'sharable':>10s}")
    for name, queries in WORKLOADS.items():
        result = psp_opt.optimize(queries, Algorithm.GREEDY)
        counters[name] = result
        print(
            f"{name:<10s}{len(queries):>9d}{result.counters['cost_propagations']:>15d}"
            f"{result.counters['benefit_recomputations']:>16d}{result.sharable_nodes:>10d}"
        )
    return counters


def test_fig10_counters_grow_roughly_linearly(figure10_counters):
    """Cost propagations and recomputations should scale close to linearly
    with the number of queries (CQ5 has 9x the queries of CQ1)."""
    small = figure10_counters["CQ1"].counters
    large = figure10_counters["CQ5"].counters
    assert large["cost_propagations"] <= small["cost_propagations"] * 9 * 4
    assert large["benefit_recomputations"] <= small["benefit_recomputations"] * 9 * 4


def test_fig10_propagations_per_recomputation_stable(figure10_counters):
    """The number of propagations per recomputation stays roughly constant,
    because the sub-DAG affected by one materialization does not grow with
    the number of queries (the incremental-cost-update payoff)."""
    ratios = [
        r.counters["cost_propagations"] / max(1, r.counters["benefit_recomputations"])
        for r in figure10_counters.values()
    ]
    assert max(ratios) <= max(10.0, 4 * min(ratios))


def test_fig10_sharable_nodes_grow_linearly(figure10_counters):
    assert figure10_counters["CQ5"].sharable_nodes > figure10_counters["CQ1"].sharable_nodes


@pytest.mark.parametrize("workload", ["CQ2", "CQ5"])
def test_fig10_greedy_benchmark(benchmark, psp_opt, workload):
    queries = WORKLOADS[workload]
    dag = psp_opt.build_dag(queries)
    result = benchmark(lambda: psp_opt.optimize(queries, Algorithm.GREEDY, dag=dag))
    assert result.counters["cost_propagations"] > 0
