"""Figure 6 — optimization of the stand-alone TPC-D queries Q2, Q2-D, Q11, Q15.

Regenerates both panels of the figure: estimated plan cost per algorithm and
optimization time per algorithm, on the TPC-D catalog at scale 1 with
clustered primary-key indices.  The benchmark timings measure the Greedy
optimizer (the most expensive algorithm), per workload.
"""

import pytest

from harness import assert_cost_ordering, print_cost_table, print_time_table, run_workload
from repro import Algorithm
from repro.workloads.tpcd_queries import standalone_workloads

WORKLOADS = standalone_workloads()


@pytest.fixture(scope="module")
def figure6_results(tpcd_opt):
    results = {name: run_workload(tpcd_opt, queries) for name, queries in WORKLOADS.items()}
    print_cost_table("Figure 6 (stand-alone TPC-D)", results)
    print_time_table("Figure 6 (stand-alone TPC-D)", results)
    return results


@pytest.mark.parametrize("workload", list(WORKLOADS))
def test_fig6_greedy_optimization_time(benchmark, tpcd_opt, figure6_results, workload):
    """Time the Greedy optimizer on each stand-alone workload (right panel)."""
    queries = WORKLOADS[workload]
    dag = tpcd_opt.build_dag(queries)
    result = benchmark(lambda: tpcd_opt.optimize(queries, Algorithm.GREEDY, dag=dag))
    assert result.cost <= figure6_results[workload]["Volcano"].cost * 1.001


@pytest.mark.parametrize("workload", list(WORKLOADS))
def test_fig6_cost_ordering(figure6_results, workload):
    """The paper's headline shape: heuristics beat Volcano, Greedy is best or tied."""
    assert_cost_ordering(figure6_results[workload])


def test_fig6_sharing_workloads_improve(figure6_results):
    """Q2-D, Q11 and Q15 all have common sub-expressions; the paper reports
    roughly 2x improvements for Q11/Q15 and large gains for Q2-D."""
    for workload in ("Q2-D", "Q11", "Q15"):
        results = figure6_results[workload]
        assert results["Greedy"].cost < 0.8 * results["Volcano"].cost
