"""Figure 7 — execution of the stand-alone TPC-D plans (No-MQO vs MQO).

The paper runs the plans chosen with and without multi-query optimization on
Microsoft SQL Server 6.5.  Substitution (documented in DESIGN.md): the plans
are executed by the in-memory engine over deterministic synthetic TPC-D data,
and "execution time" is the block-accounted simulated cost derived from the
actual rows and bytes the plans touch.  The claim checked is the figure's
shape: for every workload, the MQO plan does no more work than the No-MQO
plan, and both return the same result rows.
"""

import pytest

from repro import Algorithm, MQOptimizer
from repro.catalog import tpcd_catalog
from repro.execution import Executor, generate_tpcd_data
from repro.workloads.tpcd_queries import standalone_workloads

EXECUTION_SCALE = 0.005
WORKLOADS = standalone_workloads()


@pytest.fixture(scope="module")
def execution_setup():
    catalog = tpcd_catalog(EXECUTION_SCALE)
    database = generate_tpcd_data(EXECUTION_SCALE)
    optimizer = MQOptimizer(catalog)
    executor = Executor(database, catalog)
    return optimizer, executor


@pytest.fixture(scope="module")
def figure7_results(execution_setup):
    optimizer, executor = execution_setup
    rows = {}
    print("\n=== Figure 7: executed work, No-MQO vs MQO (simulated seconds) ===")
    print(f"{'workload':<10s}{'No-MQO':>12s}{'MQO':>12s}{'result rows':>14s}")
    for name, queries in WORKLOADS.items():
        dag = optimizer.build_dag(queries)
        volcano = optimizer.optimize(queries, Algorithm.VOLCANO, dag=dag)
        greedy = optimizer.optimize(queries, Algorithm.GREEDY, dag=dag)
        no_mqo = executor.run(volcano.plan)
        mqo = executor.run(greedy.plan)
        rows[name] = (no_mqo, mqo)
        print(
            f"{name:<10s}{no_mqo.simulated_seconds:>12.2f}{mqo.simulated_seconds:>12.2f}"
            f"{len(mqo.rows):>14d}"
        )
    return rows


@pytest.mark.parametrize("workload", list(WORKLOADS))
def test_fig7_mqo_plans_do_less_work(figure7_results, workload):
    no_mqo, mqo = figure7_results[workload]
    assert mqo.simulated_seconds <= no_mqo.simulated_seconds * 1.05


@pytest.mark.parametrize("workload", list(WORKLOADS))
def test_fig7_same_results(figure7_results, workload):
    """MQO changes the plan, never the answer."""
    no_mqo, mqo = figure7_results[workload]
    assert len(no_mqo.rows) == len(mqo.rows)


@pytest.mark.parametrize("workload", list(WORKLOADS))
def test_fig7_execute_mqo_plan(benchmark, execution_setup, workload):
    """Benchmark execution of the MQO plan on the synthetic database."""
    optimizer, executor = execution_setup
    queries = WORKLOADS[workload]
    plan = optimizer.optimize(queries, Algorithm.GREEDY).plan
    result = benchmark.pedantic(lambda: executor.run(plan), rounds=3, iterations=1)
    assert result.stats.rows_scanned > 0
