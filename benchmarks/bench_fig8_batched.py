"""Figure 8 — optimization of the batched TPC-D queries BQ1..BQ5.

Each composite query BQ_i consists of the first i of Q3, Q5, Q7, Q9, Q10, each
repeated twice with different selection constants (TPC-D scale 1, clustered
primary-key indices).  Regenerates both panels: estimated cost and
optimization time per algorithm.
"""

import pytest

from harness import assert_cost_ordering, print_cost_table, print_time_table, run_workload
from repro import Algorithm
from repro.workloads.batch import all_batched_workloads

WORKLOADS = all_batched_workloads()


@pytest.fixture(scope="module")
def figure8_results(tpcd_opt):
    results = {name: run_workload(tpcd_opt, queries) for name, queries in WORKLOADS.items()}
    print_cost_table("Figure 8 (batched TPC-D)", results)
    print_time_table("Figure 8 (batched TPC-D)", results)
    return results


@pytest.mark.parametrize("workload", list(WORKLOADS))
def test_fig8_cost_ordering(figure8_results, workload):
    assert_cost_ordering(figure8_results[workload])


def test_fig8_greedy_beats_volcano_substantially(figure8_results):
    """The paper reports up to ~56% improvement for Greedy on this workload."""
    results = figure8_results["BQ5"]
    assert results["Greedy"].cost < 0.7 * results["Volcano"].cost


def test_fig8_greedy_beats_volcano_sh(figure8_results):
    """Greedy finds strictly more sharing than the plan-local heuristics on
    the larger batches (the paper's ~14% vs ~56% contrast)."""
    results = figure8_results["BQ5"]
    assert results["Greedy"].cost < results["Volcano-SH"].cost


@pytest.mark.parametrize("workload", ["BQ1", "BQ3", "BQ5"])
def test_fig8_greedy_optimization_time(benchmark, tpcd_opt, workload):
    queries = WORKLOADS[workload]
    dag = tpcd_opt.build_dag(queries)
    benchmark(lambda: tpcd_opt.optimize(queries, Algorithm.GREEDY, dag=dag))


@pytest.mark.parametrize("workload", ["BQ5"])
def test_fig8_volcano_sh_overhead_is_negligible(benchmark, tpcd_opt, workload):
    """Volcano-SH costs essentially the same optimization time as Volcano."""
    queries = WORKLOADS[workload]
    dag = tpcd_opt.build_dag(queries)
    benchmark(lambda: tpcd_opt.optimize(queries, Algorithm.VOLCANO_SH, dag=dag))
