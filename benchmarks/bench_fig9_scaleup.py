"""Figure 9 — cost and optimization time on the scale-up workload CQ1..CQ5.

CQ_i consists of the chain-query pairs SQ1..SQ(4i-2) over the PSP relations.
The paper's observations checked here: the relative benefit of the algorithms
persists (Greedy best, Volcano-RU somewhat better than Volcano-SH on this
workload), and the optimization time of Greedy grows roughly linearly with the
number of queries.

Reference points for the array-backed cost engine
(:mod:`repro.optimizer.engine`): before the engine, greedy optimization took
~4.0/13/21/32/41 ms on CQ1..CQ5 (CPython 3.11, this container); the PR 1
array engine brought that to ~1.2/3.5/7.1/9.6/13 ms, and the dense
incremental state + fused monotonicity probe loop (PR 2) to
~0.7/2.1/3.6/4.8/7 ms — identical plan costs and Figure 10 counters
throughout.  The same PR 2 rework made Volcano-RU incremental: CQ5 dropped
from ~53 ms to ~5 ms.  PR 3 moved the Volcano-SH decision pass onto the same
flat engine arrays and memoized the engine's empty-set cost table, taking
Volcano-RU CQ5 to ~3.4 ms (standalone Volcano-SH CQ5 ~1.9→~0.9 ms) and, with
the incremental unused-materialization pruning, greedy CQ1 to ~0.65 ms.

With the optimizers that fast, *DAG construction* dominated end-to-end wall
time (the Section 6.4 overhead): ~15/44/73/98/140 ms warm on CQ1..CQ5
(~220 ms for CQ5 cold, with profiling overhead).  The PR 4 memoized,
hash-consed builder (join-choice memo, key-determined partition-enumeration
skipping, weak-join memo in subsumption, cached tuple widths / copy-on-write
``with_rows`` / cost-primitive memos) brings the warm build to
~7.5/20/32/47/55 ms — CQ5 ~2.6x warm, ~4x against the cold pre-PR figure —
with byte-identical DAGs (the builder differential oracle in
``tests/test_differential.py``).  ``harness.py --perf-gate`` guards the
greedy, Volcano-RU, *and* DAG-build times against regressions in CI
(normalized against a fixed calibration loop, baseline in
``benchmarks/perf_baseline.json``).
"""

import pytest

from harness import assert_cost_ordering, print_cost_table, print_time_table, run_workload
from repro import Algorithm
from repro.workloads.scaleup import all_scaleup_workloads

WORKLOADS = all_scaleup_workloads()


@pytest.fixture(scope="module")
def figure9_results(psp_opt):
    results = {name: run_workload(psp_opt, queries) for name, queries in WORKLOADS.items()}
    print_cost_table("Figure 9 (scale-up)", results)
    print_time_table("Figure 9 (scale-up)", results)
    return results


@pytest.mark.parametrize("workload", list(WORKLOADS))
def test_fig9_cost_ordering(figure9_results, workload):
    assert_cost_ordering(figure9_results[workload])


def test_fig9_greedy_finds_sharing_at_scale(figure9_results):
    for name in ("CQ3", "CQ4", "CQ5"):
        results = figure9_results[name]
        assert results["Greedy"].cost < results["Volcano"].cost
        assert results["Greedy"].materialized_count >= 1


def test_fig9_volcano_ru_at_least_as_good_as_sh(figure9_results):
    """On the scale-up workload the paper finds Volcano-RU somewhat better
    than Volcano-SH."""
    results = figure9_results["CQ5"]
    assert results["Volcano-RU"].cost <= results["Volcano-SH"].cost * 1.001


def test_fig9_greedy_scales_roughly_linearly(figure9_results):
    """Optimization time grows close to linearly in the number of queries
    (a small super-linear component is expected, as in the paper)."""
    t1 = figure9_results["CQ1"]["Greedy"].optimization_time
    t5 = figure9_results["CQ5"]["Greedy"].optimization_time
    # CQ5 has 9x the queries of CQ1; allow a generous super-linear factor.
    assert t5 <= max(t1, 1e-4) * 9 * 6


@pytest.mark.parametrize("workload", ["CQ1", "CQ3", "CQ5"])
def test_fig9_greedy_optimization_time(benchmark, psp_opt, workload):
    queries = WORKLOADS[workload]
    dag = psp_opt.build_dag(queries)
    benchmark(lambda: psp_opt.optimize(queries, Algorithm.GREEDY, dag=dag))


@pytest.mark.parametrize("workload", ["CQ5"])
def test_fig9_volcano_optimization_time(benchmark, psp_opt, workload):
    queries = WORKLOADS[workload]
    dag = psp_opt.build_dag(queries)
    benchmark(lambda: psp_opt.optimize(queries, Algorithm.VOLCANO, dag=dag))
