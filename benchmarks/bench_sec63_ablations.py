"""Section 6.3 — effect of the individual Greedy optimizations (ablations).

The paper reports that on the scale-up workload:

* without the **monotonicity heuristic** the number of benefit recomputations
  explodes (≈1558 per materialization at CQ2 vs ≈45 with it) and optimization
  time grows by an order of magnitude, while the returned plans have virtually
  the same cost;
* without the **sharability computation** every node is a candidate and
  optimization time increases significantly.

This module regenerates those comparisons (and adds the incremental-cost-update
ablation, the third optimization of Section 4).
"""

import pytest

from repro import Algorithm, GreedyOptions
from repro.workloads.scaleup import all_scaleup_workloads

WORKLOADS = all_scaleup_workloads()
ABLATION_WORKLOAD = "CQ2"


@pytest.fixture(scope="module")
def ablation_results(psp_opt):
    queries = WORKLOADS[ABLATION_WORKLOAD]
    dag = psp_opt.build_dag(queries)
    variants = {
        "full": GreedyOptions(),
        "no-monotonicity": GreedyOptions(use_monotonicity=False),
        "no-sharability": GreedyOptions(use_sharability=False),
        "no-incremental": GreedyOptions(use_incremental=False),
    }
    results = {}
    print(f"\n=== Section 6.3 ablations on {ABLATION_WORKLOAD} ===")
    print(f"{'variant':<18s}{'cost':>12s}{'opt ms':>10s}{'recomputations':>16s}{'candidates':>12s}")
    for name, options in variants.items():
        result = psp_opt.optimize(queries, Algorithm.GREEDY, dag=dag, greedy_options=options)
        results[name] = result
        print(
            f"{name:<18s}{result.cost:>12.1f}{result.optimization_time * 1000:>10.1f}"
            f"{result.counters['benefit_recomputations']:>16d}{result.counters['candidates']:>12d}"
        )
    return results


def test_sec63_monotonicity_reduces_recomputations(ablation_results):
    with_mono = ablation_results["full"].counters["benefit_recomputations"]
    without_mono = ablation_results["no-monotonicity"].counters["benefit_recomputations"]
    assert without_mono > 2 * with_mono


def test_sec63_monotonicity_preserves_plan_quality(ablation_results):
    """The paper: plans with and without monotonicity had virtually the same cost."""
    assert ablation_results["full"].cost <= ablation_results["no-monotonicity"].cost * 1.05


def test_sec63_sharability_prunes_candidates(ablation_results):
    assert (
        ablation_results["full"].counters["candidates"]
        < ablation_results["no-sharability"].counters["candidates"]
    )


def test_sec63_all_variants_beat_volcano(psp_opt, ablation_results):
    volcano = psp_opt.optimize(WORKLOADS[ABLATION_WORKLOAD], Algorithm.VOLCANO)
    for result in ablation_results.values():
        assert result.cost <= volcano.cost * 1.001


@pytest.mark.parametrize(
    "variant",
    ["full", "no-monotonicity", "no-sharability", "no-incremental"],
)
def test_sec63_greedy_variant_benchmark(benchmark, psp_opt, variant):
    """Time each variant: the full implementation should be the fastest or
    close to it (this is the order-of-magnitude claim of Section 6.3)."""
    options = {
        "full": GreedyOptions(),
        "no-monotonicity": GreedyOptions(use_monotonicity=False),
        "no-sharability": GreedyOptions(use_sharability=False),
        "no-incremental": GreedyOptions(use_incremental=False),
    }[variant]
    queries = WORKLOADS[ABLATION_WORKLOAD]
    dag = psp_opt.build_dag(queries)
    benchmark.pedantic(
        lambda: psp_opt.optimize(queries, Algorithm.GREEDY, dag=dag, greedy_options=options),
        rounds=3,
        iterations=1,
    )
