"""Section 6.4 — overheads without sharing, database scale, and memory size.

Three text experiments from the discussion section:

* **No overlap**: the batched TPC-D queries with all relations renamed so the
  workload has no common sub-expressions.  Expected: the sharability pass
  finds nothing, Greedy returns the Volcano plan, and its overhead over plain
  Volcano is modest (the paper measures ~25%, dominated by DAG expansion).
* **Database scale**: the benefit of MQO grows with database size while the
  optimization cost stays the same (BQ5 at scale 1 vs scale 100).
* **Memory size**: relative gains are stable across 6 MB / 32 MB / 128 MB of
  memory per operator.

Build/optimize split on this container (CPython 3.11, warm, after the PR 4
memoized builder): the no-overlap batch builds in ~19 ms (~24 ms before —
the memo machinery costs nothing when there is no overlap to hash-cons) and
BQ5 in ~45 ms (~100 ms before), against greedy search times of a few
milliseconds — construction remains the dominant overhead term, exactly as
Section 6.4 reports, but is now gated in CI (``harness.py --perf-gate``
times CQ1..CQ5, BQ5, and the no-overlap batch) so it can only improve.
"""

import pytest

from repro import Algorithm, MQOptimizer
from repro.catalog import tpcd_catalog
from repro.cost.model import CostModel
from repro.workloads.batch import batched_queries, no_overlap_batch

MEMORY_SIZES_MB = (6, 32, 128)


@pytest.fixture(scope="module")
def no_overlap_setup():
    catalog = tpcd_catalog(1.0)
    queries, extended_catalog = no_overlap_batch(catalog)
    return MQOptimizer(extended_catalog), queries


def test_sec64_no_overlap_greedy_matches_volcano(no_overlap_setup):
    optimizer, queries = no_overlap_setup
    dag = optimizer.build_dag(queries)
    volcano = optimizer.optimize(queries, Algorithm.VOLCANO, dag=dag)
    greedy = optimizer.optimize(queries, Algorithm.GREEDY, dag=dag)
    print(
        f"\n=== Section 6.4 no-overlap batch ===\n"
        f"sharable nodes: {greedy.sharable_nodes}, "
        f"Volcano cost {volcano.cost:.1f}s, Greedy cost {greedy.cost:.1f}s"
    )
    assert greedy.sharable_nodes == 0
    assert greedy.materialized_count == 0
    assert abs(greedy.cost - volcano.cost) < 1e-6 * max(1.0, volcano.cost)


def test_sec64_no_overlap_overhead_benchmarks(benchmark, no_overlap_setup):
    """Greedy on a no-overlap workload: pure overhead (DAG expansion plus the
    sharability pass that immediately finds nothing)."""
    optimizer, queries = no_overlap_setup
    benchmark.pedantic(lambda: optimizer.optimize(queries, Algorithm.GREEDY), rounds=3, iterations=1)


def test_sec64_benefit_grows_with_database_scale():
    """BQ5 at scale 1 vs scale 100: the absolute saving grows with data size,
    while the optimization effort (DAG size, candidates) is unchanged."""
    savings = {}
    print("\n=== Section 6.4 database scale ===")
    for scale in (1.0, 100.0):
        optimizer = MQOptimizer(tpcd_catalog(scale))
        queries = batched_queries(5)
        dag = optimizer.build_dag(queries)
        volcano = optimizer.optimize(queries, Algorithm.VOLCANO, dag=dag)
        greedy = optimizer.optimize(queries, Algorithm.GREEDY, dag=dag)
        savings[scale] = volcano.cost - greedy.cost
        print(
            f"scale {scale:>6.0f}: Volcano {volcano.cost:12.1f}s  Greedy {greedy.cost:12.1f}s  "
            f"saving {savings[scale]:12.1f}s  (DAG: {greedy.dag_equivalence_nodes} nodes)"
        )
    assert savings[100.0] > 10 * savings[1.0]


@pytest.mark.parametrize("memory_mb", MEMORY_SIZES_MB)
def test_sec64_memory_sizes(memory_mb):
    """Relative gains are essentially unchanged across operator memory sizes."""
    model = CostModel(memory_bytes=memory_mb * 1024 * 1024)
    optimizer = MQOptimizer(tpcd_catalog(1.0), cost_model=model)
    queries = batched_queries(3)
    dag = optimizer.build_dag(queries)
    volcano = optimizer.optimize(queries, Algorithm.VOLCANO, dag=dag)
    greedy = optimizer.optimize(queries, Algorithm.GREEDY, dag=dag)
    ratio = greedy.cost / volcano.cost
    print(f"\nmemory {memory_mb:>4d} MB: Volcano {volcano.cost:10.1f}s Greedy {greedy.cost:10.1f}s ratio {ratio:.2f}")
    assert greedy.cost <= volcano.cost * 1.001
    assert ratio < 0.95


def test_sec64_scale100_optimization_time_benchmark(benchmark):
    """Optimization time is independent of the database size (scale 100)."""
    optimizer = MQOptimizer(tpcd_catalog(100.0))
    queries = batched_queries(5)
    dag = optimizer.build_dag(queries)
    benchmark.pedantic(
        lambda: optimizer.optimize(queries, Algorithm.GREEDY, dag=dag), rounds=3, iterations=1
    )
