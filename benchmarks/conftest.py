"""Benchmark-suite configuration.

Makes the locally built package and the harness importable when the suite is
run as ``pytest benchmarks/ --benchmark-only`` from the repository root, and
provides session-scoped catalogs so DAG construction cost is not re-paid by
every benchmark.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

import pytest

from repro import MQOptimizer
from repro.catalog import psp_catalog, tpcd_catalog


@pytest.fixture(scope="session")
def tpcd_opt() -> MQOptimizer:
    """Optimizer over the TPC-D catalog at scale 1 (the paper's main setup)."""
    return MQOptimizer(tpcd_catalog(1.0))


@pytest.fixture(scope="session")
def psp_opt() -> MQOptimizer:
    """Optimizer over the PSP scale-up catalog."""
    return MQOptimizer(psp_catalog())
