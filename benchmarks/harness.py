"""Shared helpers for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper's
evaluation (Section 6): it optimizes the corresponding workload with all four
algorithms, prints the same rows/series the paper reports (estimated cost,
optimization time, greedy counters, executed cost), and uses pytest-benchmark
to time the part of the pipeline the figure is about.

Absolute numbers differ from the paper (different machine, simulated
execution substrate); the *shape* — which algorithm wins, by roughly what
factor, and how costs scale — is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro import MQOptimizer, PAPER_ALGORITHMS
from repro.catalog import psp_catalog, tpcd_catalog
from repro.dag.builder import Query
from repro.optimizer.report import OptimizationResult

ALGORITHM_ORDER = ["Volcano", "Volcano-SH", "Volcano-RU", "Greedy"]


def run_workload(
    optimizer: MQOptimizer, queries: Sequence[Query]
) -> Dict[str, OptimizationResult]:
    """Optimize one workload with all four paper algorithms on a shared DAG."""
    return optimizer.optimize_all(queries, PAPER_ALGORITHMS)


def print_cost_table(title: str, rows: Dict[str, Dict[str, OptimizationResult]]) -> None:
    """Print estimated plan costs, one line per workload (paper figure layout)."""
    print(f"\n=== {title}: estimated plan cost (seconds) ===")
    header = f"{'workload':<10s}" + "".join(f"{name:>14s}" for name in ALGORITHM_ORDER)
    print(header)
    for workload, results in rows.items():
        line = f"{workload:<10s}"
        for name in ALGORITHM_ORDER:
            line += f"{results[name].cost:14.1f}"
        print(line)


def print_time_table(title: str, rows: Dict[str, Dict[str, OptimizationResult]]) -> None:
    """Print optimization times, one line per workload."""
    print(f"\n=== {title}: optimization time (milliseconds) ===")
    header = f"{'workload':<10s}" + "".join(f"{name:>14s}" for name in ALGORITHM_ORDER)
    print(header)
    for workload, results in rows.items():
        line = f"{workload:<10s}"
        for name in ALGORITHM_ORDER:
            line += f"{results[name].optimization_time * 1000:14.2f}"
        print(line)


def assert_cost_ordering(results: Dict[str, OptimizationResult], slack: float = 1.001) -> None:
    """Check the qualitative claim of the paper: the heuristics never lose to
    Volcano, and Greedy is the best (within floating-point slack)."""
    volcano = results["Volcano"].cost
    assert results["Volcano-SH"].cost <= volcano * slack
    assert results["Volcano-RU"].cost <= volcano * slack
    assert results["Greedy"].cost <= volcano * slack


def tpcd_optimizer(scale: float = 1.0) -> MQOptimizer:
    return MQOptimizer(tpcd_catalog(scale))


def psp_optimizer() -> MQOptimizer:
    return MQOptimizer(psp_catalog())
