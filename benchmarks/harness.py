"""Shared helpers for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper's
evaluation (Section 6): it optimizes the corresponding workload with all four
algorithms, prints the same rows/series the paper reports (estimated cost,
optimization time, greedy counters, executed cost), and uses pytest-benchmark
to time the part of the pipeline the figure is about.

Absolute numbers differ from the paper (different machine, simulated
execution substrate); the *shape* — which algorithm wins, by roughly what
factor, and how costs scale — is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Iterable, List, Sequence

# Make ``src`` importable when this file is executed directly
# (``python benchmarks/harness.py --smoke``); under pytest the benchmark
# conftest does the same insertion, which is harmless to repeat.
sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro import MQOptimizer, PAPER_ALGORITHMS
from repro.catalog import psp_catalog, tpcd_catalog
from repro.dag.builder import Query
from repro.optimizer.report import OptimizationResult

ALGORITHM_ORDER = ["Volcano", "Volcano-SH", "Volcano-RU", "Greedy"]


def run_workload(
    optimizer: MQOptimizer, queries: Sequence[Query]
) -> Dict[str, OptimizationResult]:
    """Optimize one workload with all four paper algorithms on a shared DAG."""
    return optimizer.optimize_all(queries, PAPER_ALGORITHMS)


def print_cost_table(title: str, rows: Dict[str, Dict[str, OptimizationResult]]) -> None:
    """Print estimated plan costs, one line per workload (paper figure layout)."""
    print(f"\n=== {title}: estimated plan cost (seconds) ===")
    header = f"{'workload':<10s}" + "".join(f"{name:>14s}" for name in ALGORITHM_ORDER)
    print(header)
    for workload, results in rows.items():
        line = f"{workload:<10s}"
        for name in ALGORITHM_ORDER:
            line += f"{results[name].cost:14.1f}"
        print(line)


def print_time_table(title: str, rows: Dict[str, Dict[str, OptimizationResult]]) -> None:
    """Print optimization times, one line per workload."""
    print(f"\n=== {title}: optimization time (milliseconds) ===")
    header = f"{'workload':<10s}" + "".join(f"{name:>14s}" for name in ALGORITHM_ORDER)
    print(header)
    for workload, results in rows.items():
        line = f"{workload:<10s}"
        for name in ALGORITHM_ORDER:
            line += f"{results[name].optimization_time * 1000:14.2f}"
        print(line)


def assert_cost_ordering(results: Dict[str, OptimizationResult], slack: float = 1.001) -> None:
    """Check the qualitative claim of the paper: the heuristics never lose to
    Volcano, and Greedy is the best (within floating-point slack)."""
    volcano = results["Volcano"].cost
    assert results["Volcano-SH"].cost <= volcano * slack
    assert results["Volcano-RU"].cost <= volcano * slack
    assert results["Greedy"].cost <= volcano * slack


def tpcd_optimizer(scale: float = 1.0) -> MQOptimizer:
    return MQOptimizer(tpcd_catalog(scale))


def psp_optimizer() -> MQOptimizer:
    return MQOptimizer(psp_catalog())


def smoke(batch_index: int = 2) -> None:
    """Run one small batched workload end-to-end and check the cost ordering.

    Used by CI (``python benchmarks/harness.py --smoke``) so that the
    benchmark entry points cannot silently rot between full benchmark runs:
    it exercises DAG construction, all four paper algorithms, the result
    tables, and the qualitative cost assertion, in a few seconds.
    """
    from repro.optimizer.costing import bestcost
    from repro.workloads.batch import batched_queries

    queries = batched_queries(batch_index)
    optimizer = tpcd_optimizer()
    results = run_workload(optimizer, queries)
    rows = {f"BQ{batch_index}": results}
    print_cost_table("smoke (batched TPC-D)", rows)
    print_time_table("smoke (batched TPC-D)", rows)
    assert_cost_ordering(results)
    greedy = results["Greedy"]
    # The materialized ids belong to the DAG the result was computed on.
    assert greedy.cost == bestcost(greedy.plan.dag, greedy.plan.materialized)
    print(f"\nsmoke ok: {len(queries)} queries, greedy cost {greedy.cost:.2f}, "
          f"{greedy.materialized_count} materializations")


def _main(argv: List[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="Benchmark harness entry point")
    parser.add_argument("--smoke", action="store_true",
                        help="run one small batched workload end-to-end (used by CI)")
    parser.add_argument("--batch", type=int, default=2, metavar="1..5",
                        help="which BQ_i batch the smoke run uses (default: 2)")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do: pass --smoke (the full suite runs via pytest)")
    smoke(batch_index=args.batch)
    return 0


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
