"""Shared helpers for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper's
evaluation (Section 6): it optimizes the corresponding workload with all four
algorithms, prints the same rows/series the paper reports (estimated cost,
optimization time, greedy counters, executed cost), and uses pytest-benchmark
to time the part of the pipeline the figure is about.

Absolute numbers differ from the paper (different machine, simulated
execution substrate); the *shape* — which algorithm wins, by roughly what
factor, and how costs scale — is what EXPERIMENTS.md records.

**BENCH_pr<k>.json series.**  ``python benchmarks/harness.py --smoke --json
PATH`` writes a machine-readable snapshot of one smoke run; the repository
root keeps one per PR (``BENCH_pr4.json``, ...) as the performance
trajectory.  Format, one entry per workload::

    {
      "<workload>": {
        "build_ms": <min-of-N DAG construction wall time, milliseconds>,
        "algorithms": {
          "<algorithm>": {
            "cost": <estimated plan cost, seconds>,
            "optimization_time_ms": <wall time of the search, milliseconds>,
            "materialized": [<equivalence node ids>],
            "counters": {<Figure 10 counters>}
          }
        }
      },
      "warm_rebuild": {                      # since PR 5 (OptimizerSession)
        "<scenario>": {
          "cold_ms": <fresh-session build, milliseconds>,
          "warm_ms": <session rebuild, milliseconds>,
          "speedup": <cold_ms / warm_ms>
        }
      }
    }

Times are raw (not calibration-normalized): the trajectory documents what a
given PR measured on its container, while regression *checking* goes through
the normalized ``--perf-gate`` below.  Warm-rebuild *speedups* are ratios —
machine-independent — so the gate checks them against fixed floors
(:data:`WARM_GATE_MIN_SPEEDUP`) with no baseline entry.

**Series policy.**  Every PR that touches performance-relevant code emits
exactly one ``BENCH_pr<k>.json`` at the repository root, produced by this
harness on the PR's container (``--smoke --warm --service --json
BENCH_pr<k>.json``, full service scale; since PR 10 plus ``--result-cache``).  PRs that do not touch perf code
emit none — gaps in the ``pr<k>`` numbering are expected and mean exactly
that, not lost data (there is no ``BENCH_pr6.json``: PR 6 was the linter).
Since PR 7 the snapshot also carries a ``service_throughput`` entry — the
multi-worker service path (pickled fragment-cache snapshot fanned out to
worker processes, bounded caches, overlapping batches)::

    "service_throughput": {
      "workers": <process count>, "batches": <total batches served>,
      "qps": <batches per wall-clock second, all workers>,
      "p50_ms": ..., "p99_ms": ...,   # per-batch service latency
      "fragment_hit_rate": <hits / (hits + misses), aggregated>,
      "lru_evictions": <capacity evictions, aggregated>,
      "family_sizes_max": {<family>: <largest end-state size any worker saw>},
      ...
    }

Since PR 10 ``--result-cache`` adds a ``result_cache`` entry — the
cross-batch semantic result cache drill: the same stream of overlapping
batches is optimized *and executed* twice, once per-batch cold and once
through a single session whose :class:`~repro.execution.result_cache.
ResultCache` carries intermediates across batches.  Rows must be
byte-identical in both modes and accounted block reads must drop at least
2x (the PR's acceptance metric)::

    "result_cache": {
      "off_blocks_read": ..., "on_blocks_read": ..., "reduction": ...,
      "counters": {"exact_injections": ..., "covering_injections": ...,
                   "adoptions": ..., "exec_serves": ..., "injected_serves": ...,
                   ...},
      ...
    }
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

# Make ``src`` importable when this file is executed directly
# (``python benchmarks/harness.py --smoke``); under pytest the benchmark
# conftest does the same insertion, which is harmless to repeat.
sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro import MQOptimizer, PAPER_ALGORITHMS
from repro.catalog import psp_catalog, tpcd_catalog
from repro.dag.builder import Query
from repro.optimizer.report import OptimizationResult

ALGORITHM_ORDER = ["Volcano", "Volcano-SH", "Volcano-RU", "Greedy"]


def run_workload(
    optimizer: MQOptimizer, queries: Sequence[Query]
) -> Dict[str, OptimizationResult]:
    """Optimize one workload with all four paper algorithms on a shared DAG."""
    return optimizer.optimize_all(queries, PAPER_ALGORITHMS)


def print_cost_table(title: str, rows: Dict[str, Dict[str, OptimizationResult]]) -> None:
    """Print estimated plan costs, one line per workload (paper figure layout)."""
    print(f"\n=== {title}: estimated plan cost (seconds) ===")
    header = f"{'workload':<10s}" + "".join(f"{name:>14s}" for name in ALGORITHM_ORDER)
    print(header)
    for workload, results in rows.items():
        line = f"{workload:<10s}"
        for name in ALGORITHM_ORDER:
            line += f"{results[name].cost:14.1f}"
        print(line)


def print_time_table(
    title: str,
    rows: Dict[str, Dict[str, OptimizationResult]],
    build_times_ms: Optional[Dict[str, float]] = None,
) -> None:
    """Print optimization times, one line per workload.

    When *build_times_ms* is given (workload -> milliseconds), a ``DAG
    build`` column is appended — construction now being the part of the
    pipeline Section 6.4 identifies as the dominant MQO overhead, the tables
    report it alongside the search times.
    """
    print(f"\n=== {title}: optimization time (milliseconds) ===")
    header = f"{'workload':<10s}" + "".join(f"{name:>14s}" for name in ALGORITHM_ORDER)
    if build_times_ms is not None:
        header += f"{'DAG build':>14s}"
    print(header)
    for workload, results in rows.items():
        line = f"{workload:<10s}"
        for name in ALGORITHM_ORDER:
            line += f"{results[name].optimization_time * 1000:14.2f}"
        if build_times_ms is not None:
            line += f"{build_times_ms[workload]:14.2f}"
        print(line)


def assert_cost_ordering(results: Dict[str, OptimizationResult], slack: float = 1.001) -> None:
    """Check the qualitative claim of the paper: the heuristics never lose to
    Volcano, and Greedy is the best (within floating-point slack)."""
    volcano = results["Volcano"].cost
    assert results["Volcano-SH"].cost <= volcano * slack
    assert results["Volcano-RU"].cost <= volcano * slack
    assert results["Greedy"].cost <= volcano * slack


def tpcd_optimizer(scale: float = 1.0) -> MQOptimizer:
    return MQOptimizer(tpcd_catalog(scale))


def psp_optimizer() -> MQOptimizer:
    return MQOptimizer(psp_catalog())


def results_as_json(results: Dict[str, OptimizationResult]) -> Dict[str, dict]:
    """Machine-readable form of one workload's results (for CI artifacts)."""
    return {
        name: {
            "cost": result.cost,
            "optimization_time_ms": result.optimization_time * 1000.0,
            "materialized": sorted(result.plan.materialized),
            "counters": dict(sorted(result.counters.items())),
        }
        for name, result in results.items()
    }


def smoke(batch_index: int = 2, json_path: Optional[str] = None) -> None:
    """Run one small batched workload end-to-end and check the cost ordering.

    Used by CI (``python benchmarks/harness.py --smoke``) so that the
    benchmark entry points cannot silently rot between full benchmark runs:
    it exercises DAG construction, all four paper algorithms, the result
    tables, and the qualitative cost assertion, in a few seconds.
    """
    from repro.optimizer.costing import bestcost
    from repro.workloads.batch import batched_queries

    from repro.service.session import OptimizerSession

    queries = batched_queries(batch_index)
    optimizer = tpcd_optimizer()
    workload = f"BQ{batch_index}"
    optimizer.build_dag(queries)  # warm caches before timing construction
    build_ms = min(_best_of(lambda: optimizer.build_dag(queries), 3)) * 1000.0
    results = run_workload(optimizer, queries)
    rows = {workload: results}
    print_cost_table("smoke (batched TPC-D)", rows)
    print_time_table("smoke (batched TPC-D)", rows, {workload: build_ms})
    assert_cost_ordering(results)
    greedy = results["Greedy"]
    # The materialized ids belong to the DAG the result was computed on.
    assert greedy.cost == bestcost(greedy.plan.dag, greedy.plan.materialized)
    # Session warm rebuild of the same batch through the fragment cache; the
    # rebuilt DAG must match what the one-shot optimizer produced.
    session = OptimizerSession(optimizer.catalog, cache_plans=False)
    session.build_dag(queries)
    warm_ms = min(_best_of(lambda: session.build_dag(queries), 3)) * 1000.0
    warm_result = session.optimize(queries, "greedy")
    assert warm_result.cost == greedy.cost
    if json_path:
        payload = {workload: {"build_ms": build_ms,
                              "warm_build_ms": warm_ms,
                              "algorithms": results_as_json(results)}}
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        print(f"smoke results written to {json_path}")
    print(f"\nsmoke ok: {len(queries)} queries, DAG build {build_ms:.2f} ms "
          f"(session warm rebuild {warm_ms:.2f} ms), "
          f"greedy cost {greedy.cost:.2f}, "
          f"{greedy.materialized_count} materializations")


# ---------------------------------------------------------------------------
# Multi-worker service throughput (PR 7: content-addressed, bounded caches)
# ---------------------------------------------------------------------------

#: Bound on the per-worker batch-level plan cache.  The batch stream cycles
#: through more distinct batches than this (see :func:`_service_batch_specs`),
#: so with LRU the plan cache is pure churn and every batch genuinely
#: rebuilds its DAG through the fragment cache — the path under test.
SERVICE_MAX_PLANS = 32


def _service_batch_specs(count: int) -> List[tuple]:
    """Deterministic stream of overlapping component-query windows.

    Each spec is ``(start, width)``: the batch optimizes components
    ``SQ_start .. SQ_{start+width-1}`` of the CQ5 scale-up workload.  Starts
    stride through 1..17 and widths cycle 2/3/4 (clamped to the 18 available
    components), giving 51 distinct batches that repeat for larger *count* —
    heavy fragment overlap between batches, workers, and the warm snapshot,
    with no randomness.
    """
    specs = []
    for i in range(count):
        start = (i * 7) % 17 + 1
        width = 2 + i % 3
        specs.append((start, min(width, 19 - start)))
    return specs


def _service_batch_queries(spec: tuple) -> List[Query]:
    from repro.workloads.scaleup import component_query

    start, width = spec
    return [query for c in range(start, start + width) for query in component_query(c)]


def _service_worker(worker_id: int, snapshot: bytes, specs: List[tuple],
                    results: "object", heartbeats: "object" = None,
                    chaos_seed: Optional[int] = None,
                    kill_after: Optional[int] = None,
                    result_cache: bool = False) -> None:
    """One service worker: restore the snapshot, serve batches, report stats.

    The snapshot bytes are deliberately round-tripped through
    :meth:`OptimizerSession.from_snapshot` even though the fork start method
    would have inherited the parent's cache for free — exercising the pickled
    content-addressed form is the point.  The first batch is also checked for
    exact cost agreement against a fresh one-shot optimizer, so the
    throughput numbers cannot come from a silently wrong cache.

    *heartbeats* is a shared ``multiprocessing.Array``; the worker bumps its
    slot once per served batch so the parent can report how far a crashed
    worker got.  With *chaos_seed* a seeded
    :class:`~repro.service.faults.FaultInjector` drops/corrupts fragment
    cache entries throughout the run and the **last** batch is verified
    against a one-shot optimizer too — faults must degrade hit rate, never
    correctness.  *kill_after* makes the worker SIGKILL itself after serving
    that many batches (the crash path under test in ``tests/test_chaos.py``).
    With *result_cache* the restored snapshot carries the parent's warm
    ``results`` family: the worker executes every batch through a
    :class:`~repro.execution.ResultCache`-backed executor (deterministically
    regenerated data), and the verification batches additionally run the
    one-shot reference plan on a cache-less executor and require the rows to
    be byte-identical.
    """
    from repro.service.session import OptimizerSession

    session = OptimizerSession.from_snapshot(
        snapshot, cache_plans=True, max_plans=SERVICE_MAX_PLANS,
        result_cache=result_cache,
    )
    executor = cold_executor = None
    exec_blocks = 0
    if result_cache:
        from repro.catalog.psp import DEFAULT_RELATION_COUNT
        from repro.execution import Executor, generate_psp_data

        database = generate_psp_data(relation_count=DEFAULT_RELATION_COUNT,
                                     rows_per_table=SERVICE_EXEC_ROWS)
        executor = Executor(database, session.catalog,
                            result_cache=session.result_cache)
        cold_executor = Executor(database, session.catalog)
    injector = None
    if chaos_seed is not None:
        from repro.service.faults import FaultInjector

        injector = FaultInjector(seed=chaos_seed + worker_id, rate=0.05).attach(session)
    latencies: List[float] = []
    verified = False
    served = 0
    for index, spec in enumerate(specs):
        queries = _service_batch_queries(spec)
        start = time.perf_counter()
        result = session.optimize(queries, "greedy")
        latencies.append(time.perf_counter() - start)
        served += 1
        if heartbeats is not None:
            heartbeats[worker_id] = served
        execution = None
        if executor is not None:
            execution = executor.run(result.plan)
            exec_blocks += execution.stats.blocks_read
        verify = not verified or (injector is not None and index == len(specs) - 1)
        if verify:
            reference = MQOptimizer(session.catalog).optimize(queries, "greedy")
            assert result.cost == reference.cost, (
                f"worker {worker_id}: warm cost {result.cost!r} != "
                f"one-shot cost {reference.cost!r}"
            )
            if execution is not None:
                cold = cold_executor.run(reference.plan)
                assert (_rows_digest(execution.per_query_rows)
                        == _rows_digest(cold.per_query_rows)), (
                    f"worker {worker_id}: result-cache rows diverged from "
                    f"the cold execution on batch {index}"
                )
            verified = True
        if kill_after is not None and served >= kill_after:
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
    stats = session.cache_stats()
    results.put({
        "worker": worker_id,
        "latencies": latencies,
        "hits": stats.hits,
        "misses": stats.misses,
        "lru_evictions": stats.lru_evictions,
        "interner_resets": stats.interner_resets,
        "quarantined": stats.quarantined,
        "recipe_quarantines": stats.recipe_quarantines,
        "injected_faults": injector.injected_faults if injector is not None else 0,
        "plan_hits": session.plan_hits,
        "plan_misses": session.plan_misses,
        "family_sizes": session.cache.family_sizes(),
        "verified_first_batch": verified,
        "exec_blocks_read": exec_blocks,
        "result_cache_counters": (
            session.result_cache.counters()
            if session.result_cache is not None else None
        ),
    })


def measure_service_throughput(
    workers: int = 2, batches: int = 1000, scale: int = 1,
    chaos_seed: Optional[int] = None, kill_after: Optional[int] = None,
    worker_timeout_s: float = 120.0, result_cache: bool = False,
) -> Dict[str, object]:
    """Serve *batches* overlapping batches from *workers* processes sharing
    one warm, bounded fragment-cache snapshot; return throughput metrics.

    The parent warms a session with :class:`SessionCacheLimits.bounded`
    bounds, pickles it via :meth:`OptimizerSession.snapshot_state`, and hands
    the bytes to every worker process (fork start method; the bytes travel
    explicitly so the content-addressed pickled form is what gets restored).
    Workers split the batch stream round-robin and time each
    ``optimize(queries, "greedy")`` call; the parent aggregates per-batch
    p50/p99 latency, whole-run qps, fragment hit rate, and LRU eviction
    counts, and asserts that no cache family ever exceeds its configured
    bound.  On a single-core container the workers time-share — qps measures
    the *service configuration*, not parallel speedup.

    Worker death is a **typed failure, not a hang**: results are collected
    with a timeout and a liveness poll against per-worker heartbeat slots, so
    a worker that dies mid-run (OOM kill, segfault, the chaos suite's
    deliberate SIGKILL) surfaces as :class:`ServiceWorkerError` carrying the
    dead workers' exit codes, last heartbeats, and the surviving workers'
    partial metrics.  *kill_after* arms worker 0 (only) to SIGKILL itself
    after serving that many batches — the crash-drill knob.  With *chaos_seed* the run doubles as a fault drill:
    each worker serves under a seeded :class:`FaultInjector`, and the parent
    first proves a corrupted snapshot is *rejected* (``SnapshotError`` →
    ``from_snapshot_or_cold`` fallback) rather than restored wrong.

    With *result_cache* (the ``--service --result-cache`` CI smoke leg) the
    parent additionally executes one warm workload so the pickled snapshot
    carries ``results``-family entries, and every worker executes its batches
    through the restored :class:`~repro.execution.ResultCache` — cross-batch
    *and* cross-process reuse with byte-identity spot checks.
    """
    import multiprocessing
    import queue as queue_module

    from repro.catalog import psp_catalog
    from repro.service.resilience import ServiceWorkerError
    from repro.service.session import OptimizerSession, SessionCacheLimits
    from repro.workloads.scaleup import scaleup_queries

    limits = SessionCacheLimits.bounded(scale)
    parent = OptimizerSession(psp_catalog(), cache_plans=False, limits=limits,
                              result_cache=result_cache)
    parent.build_dag(scaleup_queries(5))  # warm the shared fragment snapshot
    if result_cache:
        # Warm the results family too: workers restore a snapshot that
        # already holds executed intermediates for the early components.
        from repro.catalog.psp import DEFAULT_RELATION_COUNT
        from repro.execution import Executor, generate_psp_data

        database = generate_psp_data(relation_count=DEFAULT_RELATION_COUNT,
                                     rows_per_table=SERVICE_EXEC_ROWS)
        warm_plan = parent.optimize(scaleup_queries(2), "greedy").plan
        Executor(database, parent.catalog,
                 result_cache=parent.result_cache).run(warm_plan)
    snapshot = parent.snapshot_state()

    if chaos_seed is not None:
        # Snapshot-integrity drill: damaged bytes must never restore wrong —
        # the sealed header rejects them and the service falls back cold.
        from repro.service.faults import FaultInjector

        damaged = FaultInjector(seed=chaos_seed).corrupt_snapshot(snapshot)
        recovered = OptimizerSession.from_snapshot_or_cold(damaged, parent.catalog)
        assert recovered.restore_error is not None, (
            "corrupted snapshot was restored without a SnapshotError"
        )

    specs = _service_batch_specs(batches)
    context = multiprocessing.get_context("fork")
    results_queue = context.Queue()
    heartbeats = context.Array("i", workers, lock=False)
    processes = [
        context.Process(
            target=_service_worker,
            args=(worker_id, snapshot, specs[worker_id::workers], results_queue,
                  heartbeats, chaos_seed,
                  kill_after if worker_id == 0 else None, result_cache),
        )
        for worker_id in range(workers)
    ]
    wall_start = time.perf_counter()
    for process in processes:
        process.start()

    # Timeout-based collection with a liveness poll: never block forever on a
    # queue a dead worker will not feed.  After spotting a dead process the
    # queue is drained non-blocking first — its report may have raced in.
    reports: List[Dict[str, object]] = []
    reported: set = set()
    failures: List[Dict[str, object]] = []
    failed: set = set()
    collect_deadline = time.perf_counter() + worker_timeout_s
    while len(reported) + len(failed) < workers:
        try:
            report = results_queue.get(timeout=0.5)
            reports.append(report)
            reported.add(report["worker"])
            continue
        except queue_module.Empty:
            pass
        for worker_id, process in enumerate(processes):
            if worker_id in reported or worker_id in failed:
                continue
            if process.is_alive():
                continue
            while True:
                try:
                    report = results_queue.get_nowait()
                except queue_module.Empty:
                    break
                reports.append(report)
                reported.add(report["worker"])
            if worker_id in reported:
                continue
            process.join()
            failures.append({
                "worker": worker_id,
                "exitcode": process.exitcode,
                "heartbeat": heartbeats[worker_id],
            })
            failed.add(worker_id)
        if time.perf_counter() >= collect_deadline:
            for worker_id, process in enumerate(processes):
                if worker_id not in reported and worker_id not in failed:
                    process.terminate()
                    process.join()
                    failures.append({
                        "worker": worker_id,
                        "exitcode": process.exitcode,
                        "heartbeat": heartbeats[worker_id],
                    })
                    failed.add(worker_id)
    for process in processes:
        process.join()
    wall = time.perf_counter() - wall_start
    for worker_id, process in enumerate(processes):
        if worker_id not in failed and process.exitcode != 0:
            failures.append({
                "worker": worker_id,
                "exitcode": process.exitcode,
                "heartbeat": heartbeats[worker_id],
            })
            failed.add(worker_id)
    if failures:
        partial = {
            "reports": len(reports),
            "batches_served": sum(len(r["latencies"]) for r in reports)
            + sum(f["heartbeat"] for f in failures),
        }
        dead = ", ".join(
            f"worker {f['worker']} (exit {f['exitcode']}, "
            f"{f['heartbeat']} batches served)" for f in failures
        )
        raise ServiceWorkerError(
            f"{len(failures)}/{workers} service workers died: {dead}",
            failures=failures,
            partial=partial,
        )

    latencies = sorted(lat for report in reports for lat in report["latencies"])
    assert len(latencies) == batches
    assert all(report["verified_first_batch"] for report in reports)
    caps = {
        family: getattr(limits, family)
        for family in reports[0]["family_sizes"]
        if getattr(limits, family, None) is not None
    }
    sizes_max = {
        family: max(report["family_sizes"][family] for report in reports)
        for family in reports[0]["family_sizes"]
    }
    for family, cap in caps.items():
        assert sizes_max[family] <= cap, (
            f"bounded family '{family}' exceeded its cap: "
            f"{sizes_max[family]} > {cap}"
        )
    hits = sum(report["hits"] for report in reports)
    misses = sum(report["misses"] for report in reports)
    rc_counters: Optional[Dict[str, int]] = None
    if result_cache:
        rc_counters = {}
        for report in reports:
            for key, value in report["result_cache_counters"].items():
                rc_counters[key] = rc_counters.get(key, 0) + value
    return {
        "workers": workers,
        "batches": batches,
        "limits_scale": scale,
        "snapshot_bytes": len(snapshot),
        "wall_s": wall,
        "qps": batches / wall,
        "p50_ms": latencies[len(latencies) // 2] * 1000.0,
        "p99_ms": latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))] * 1000.0,
        "fragment_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "hits": hits,
        "misses": misses,
        "lru_evictions": sum(report["lru_evictions"] for report in reports),
        "interner_resets": sum(report["interner_resets"] for report in reports),
        "plan_hits": sum(report["plan_hits"] for report in reports),
        "plan_misses": sum(report["plan_misses"] for report in reports),
        "family_sizes_max": sizes_max,
        "family_caps": caps,
        "chaos": chaos_seed is not None,
        "injected_faults": sum(report["injected_faults"] for report in reports),
        "quarantined": sum(report["quarantined"] for report in reports),
        "recipe_quarantines": sum(report["recipe_quarantines"] for report in reports),
        "result_cache": result_cache,
        "exec_blocks_read": sum(report["exec_blocks_read"] for report in reports),
        "result_cache_counters": rc_counters,
        "worker_failures": [],
    }


def print_service_table(metrics: Dict[str, object]) -> None:
    """One summary block for :func:`measure_service_throughput`."""
    print("\n=== service throughput (multi-worker, bounded caches) ===")
    print(f"workers:            {metrics['workers']}")
    print(f"batches served:     {metrics['batches']}")
    print(f"snapshot size:      {metrics['snapshot_bytes'] / 1024:.0f} KiB")
    print(f"throughput:         {metrics['qps']:.1f} batches/s "
          f"({metrics['wall_s']:.2f} s wall)")
    print(f"latency p50 / p99:  {metrics['p50_ms']:.2f} / {metrics['p99_ms']:.2f} ms")
    print(f"fragment hit rate:  {metrics['fragment_hit_rate']:.1%} "
          f"({metrics['hits']} hits / {metrics['misses']} misses)")
    print(f"LRU evictions:      {metrics['lru_evictions']} "
          f"(interner resets: {metrics['interner_resets']})")
    print(f"plan cache:         {metrics['plan_hits']} hits / "
          f"{metrics['plan_misses']} misses (bound {SERVICE_MAX_PLANS})")
    if metrics.get("chaos"):
        print(f"chaos:              {metrics['injected_faults']} faults injected, "
              f"{metrics['quarantined']} entries quarantined, "
              f"{metrics['recipe_quarantines']} recipes quarantined "
              f"(plans verified byte-identical)")
    if metrics.get("result_cache"):
        counters = metrics["result_cache_counters"]
        print(f"result cache:       {metrics['exec_blocks_read']} executed block "
              f"reads; {counters['injected_serves']} injected / "
              f"{counters['exec_serves']} digest serves, "
              f"{counters['exact_injections']}+{counters['covering_injections']} "
              f"injections (rows verified byte-identical)")
    sizes = metrics["family_sizes_max"]
    caps = metrics["family_caps"]
    over = ", ".join(
        f"{family} {sizes[family]}/{caps[family]}"
        for family in sorted(caps)
        if sizes[family] > 0
    )
    print(f"family fill (max/cap): {over}")


# ---------------------------------------------------------------------------
# Cross-batch result-cache scenario (PR 10)
# ---------------------------------------------------------------------------

#: Rows per PSP relation for the standalone ``--result-cache`` scenario:
#: small enough that the pure-Python executor stays fast, large enough that
#: intermediates span multiple accounted blocks and caching them pays.
RESULT_CACHE_ROWS = 300
#: Rows per PSP relation when ``--service --result-cache`` workers execute
#: every batch (the full 22-relation schema, so smaller tables).
SERVICE_EXEC_ROWS = 120


def _result_cache_batch_specs(count: int) -> List[tuple]:
    """Deterministic overlapping component windows over components 1..6.

    Each spec is ``(start, width)`` like :func:`_service_batch_specs`, but
    confined to the first six scale-up components so the whole stream fits a
    10-relation catalog (component ``i`` reads ``PSP_i .. PSP_{i+4}``).
    Starts cycle 1..5 and widths alternate 1/2 — ten distinct batches with
    heavy scan overlap, repeating for larger *count* (repeats exercise
    warm-fragment reuse plus execution-time digest serves).
    """
    return [((i * 2) % 5 + 1, 1 + i % 2) for i in range(count)]


def _rows_digest(per_query_rows: List[List[dict]]) -> str:
    """sha256 over the exact rows — values, row order, column order — of a
    per-query row list (the byte-identity oracle used across the suite)."""
    import hashlib

    serialized = repr([
        [[(str(col), row[col]) for col in row] for row in rows]
        for rows in per_query_rows
    ])
    return hashlib.sha256(serialized.encode()).hexdigest()


def measure_result_cache(
    batches: int = 12, relation_count: int = 10,
    rows_per_table: int = RESULT_CACHE_ROWS,
) -> Dict[str, object]:
    """Execute overlapping batches with the cross-batch result cache off and
    on; assert byte-identical rows and a >= 2x block-read reduction.

    The OFF pass is the seed pipeline: every batch gets a fresh one-shot
    :class:`MQOptimizer` and a fresh cache-less :class:`Executor` — no state
    crosses batch boundaries.  The ON pass serves the same stream from one
    :class:`OptimizerSession` with ``result_cache=True`` and one executor
    bound to it, so intermediates executed for early batches are injected
    (exactly or by covering subsumption) into later builds and served at
    execution time.  Both passes run over the same generated database;
    per-batch rows must be byte-identical (row and column order included),
    and the aggregated accounted block reads must drop at least 2x — the
    PR's acceptance metric, asserted here so the benchmark itself is a gate.
    """
    from repro.execution import Executor, generate_psp_data
    from repro.service.session import OptimizerSession

    catalog = psp_catalog(relation_count=relation_count)
    database = generate_psp_data(relation_count=relation_count,
                                 rows_per_table=rows_per_table)
    specs = _result_cache_batch_specs(batches)
    workloads = [_service_batch_queries(spec) for spec in specs]

    per_batch: List[Dict[str, object]] = []
    off_digests: List[str] = []
    off_blocks = 0
    off_seconds = 0.0
    for spec, queries in zip(specs, workloads):
        plan = MQOptimizer(catalog).optimize(queries, "greedy").plan
        execution = Executor(database, catalog).run(plan)
        off_digests.append(_rows_digest(execution.per_query_rows))
        off_blocks += execution.stats.blocks_read
        off_seconds += execution.simulated_seconds
        per_batch.append({"spec": list(spec),
                          "off_blocks": execution.stats.blocks_read})

    session = OptimizerSession(catalog, cache_plans=False, result_cache=True)
    executor = Executor(database, catalog, result_cache=session.result_cache)
    on_blocks = 0
    on_seconds = 0.0
    for index, queries in enumerate(workloads):
        plan = session.optimize(queries, "greedy").plan
        execution = executor.run(plan)
        digest = _rows_digest(execution.per_query_rows)
        assert digest == off_digests[index], (
            f"result-cache batch {index} returned different rows than its "
            f"cold execution"
        )
        on_blocks += execution.stats.blocks_read
        on_seconds += execution.simulated_seconds
        per_batch[index]["on_blocks"] = execution.stats.blocks_read

    reduction = (off_blocks / on_blocks) if on_blocks else float("inf")
    assert reduction >= 2.0, (
        f"result cache reduced accounted block reads only {reduction:.2f}x "
        f"({off_blocks} -> {on_blocks}); the acceptance floor is 2x"
    )
    assert session.result_cache is not None
    return {
        "batches": batches,
        "relation_count": relation_count,
        "rows_per_table": rows_per_table,
        "off_blocks_read": off_blocks,
        "on_blocks_read": on_blocks,
        "reduction": reduction,
        "off_simulated_s": off_seconds,
        "on_simulated_s": on_seconds,
        "rows_identical": True,
        "counters": session.result_cache.counters(),
        "per_batch": per_batch,
    }


def print_result_cache_table(metrics: Dict[str, object]) -> None:
    """One summary block for :func:`measure_result_cache`."""
    print("\n=== cross-batch result cache (accounted block reads) ===")
    print(f"batches:            {metrics['batches']} overlapping component "
          f"windows ({metrics['relation_count']} relations, "
          f"{metrics['rows_per_table']} rows each)")
    print(f"blocks read (off):  {metrics['off_blocks_read']}")
    print(f"blocks read (on):   {metrics['on_blocks_read']}")
    print(f"reduction:          {metrics['reduction']:.2f}x (acceptance floor: 2x)")
    print(f"simulated seconds:  {metrics['off_simulated_s']:.3f} -> "
          f"{metrics['on_simulated_s']:.3f}")
    counters = metrics["counters"]
    print(f"injections:         {counters['exact_injections']} exact / "
          f"{counters['covering_injections']} covering "
          f"({counters['adoptions']} adoptions)")
    print(f"serves:             {counters['injected_serves']} injected / "
          f"{counters['exec_serves']} digest-exact "
          f"({counters['stores']} stores, {counters['entries']} entries)")
    print("rows:               byte-identical to the cold execution, every batch")


# ---------------------------------------------------------------------------
# Perf-regression gate (CI)
# ---------------------------------------------------------------------------

#: Figure 9 workloads timed by the gate (the greedy hot path the engine work
#: targets; CQ5 is the toggle-dominated worst case).  Volcano-RU is gated on
#: the same workloads: its dominant terms — the incremental per-order costing
#: and the dense Volcano-SH decision pass it runs twice — are exactly the
#: engine code paths this repo keeps rewriting.
PERF_GATE_WORKLOADS = ("CQ1", "CQ3", "CQ5")
#: DAG construction workloads gated since PR 4 (the memoized, hash-consed
#: builder): the scale-up composites where overlap makes hash-consing pay,
#: the largest TPC-D batch, and the no-overlap batch of Section 6.4 where the
#: memo machinery must not cost anything.
BUILD_GATE_WORKLOADS = ("CQ1", "CQ2", "CQ3", "CQ4", "CQ5", "BQ5", "NO-OVERLAP")
PERF_GATE_TOLERANCE = 1.5
DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "perf_baseline.json")


def _calibrate(repeats: int = 3) -> float:
    """Seconds for a fixed pure-Python workload, as a machine-speed unit.

    Greedy wall times are only comparable across machines (laptop vs. CI
    runner) after dividing by how fast the interpreter runs comparable
    bytecode, so the gate stores and compares *normalized* times.  The
    calibration loop intentionally lives outside the repro package: if it
    used the optimizer itself, speeding the optimizer up would silently
    loosen the gate.
    """
    data = [float(i % 97) + 0.5 for i in range(5_000)]
    table: Dict[int, float] = {}

    def spin() -> float:
        acc = 0.0
        for _ in range(40):
            for i, value in enumerate(data):
                acc += value * 1.0000001
                if not i & 1023:
                    table[i] = acc
        return acc

    spin()  # warm-up
    return min(_best_of(spin, repeats))


def _best_of(fn, repeats: int) -> List[float]:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return times


def _measure_algorithm_times(algorithm, repeats: int = 7) -> Dict[str, float]:
    """Min-of-N optimization seconds for one algorithm on the gate workloads."""
    from repro.workloads.scaleup import all_scaleup_workloads

    optimizer = psp_optimizer()
    workloads = all_scaleup_workloads()
    times: Dict[str, float] = {}
    for name in PERF_GATE_WORKLOADS:
        queries = workloads[name]
        dag = optimizer.build_dag(queries)
        run = lambda: optimizer.optimize(queries, algorithm, dag=dag)
        run()  # warm caches (cost engine snapshot)
        times[name] = min(_best_of(run, repeats))
    return times


def measure_greedy_times(repeats: int = 7) -> Dict[str, float]:
    """Min-of-N greedy optimization seconds for the gate workloads."""
    from repro import Algorithm

    return _measure_algorithm_times(Algorithm.GREEDY, repeats)


def measure_volcano_ru_times(repeats: int = 7) -> Dict[str, float]:
    """Min-of-N Volcano-RU optimization seconds for the gate workloads."""
    from repro import Algorithm

    return _measure_algorithm_times(Algorithm.VOLCANO_RU, repeats)


def measure_build_times(repeats: int = 5) -> Dict[str, float]:
    """Min-of-N ``build_dag`` seconds for the build-gate workloads."""
    from repro import MQOptimizer
    from repro.catalog import tpcd_catalog
    from repro.workloads.batch import batched_queries, no_overlap_batch
    from repro.workloads.scaleup import all_scaleup_workloads

    times: Dict[str, float] = {}
    psp = psp_optimizer()
    scaleup = all_scaleup_workloads()
    tpcd = tpcd_optimizer()
    no_overlap_queries, no_overlap_catalog = no_overlap_batch(tpcd_catalog(1.0))
    cases = [(name, psp, scaleup[name]) for name in scaleup]
    cases.append(("BQ5", tpcd, batched_queries(5)))
    cases.append(("NO-OVERLAP", MQOptimizer(no_overlap_catalog), no_overlap_queries))
    for name, optimizer, queries in cases:
        if name not in BUILD_GATE_WORKLOADS:
            continue
        run = lambda: optimizer.build_dag(queries)
        run()  # warm catalog/property caches
        times[name] = min(_best_of(run, repeats))
    return times


#: Minimum warm/cold build speedups enforced by ``--perf-gate``.  Speedups
#: are ratios of two measurements from the same process, so they transfer
#: across machines without calibration; the floors are set well below the
#: measured values (repeat ~500x via the plan cache, rebuild ~3.5x, shifted
#: ~3x on this container) to absorb scheduling noise.
WARM_GATE_MIN_SPEEDUP = {
    "CQ5-repeat": 3.0,
    "CQ5-rebuild": 2.0,
    "CQ5-shifted": 1.5,
    "CQ5-stats-change": 1.05,
}


def measure_warm_rebuild(repeats: int = 5) -> Dict[str, Dict[str, float]]:
    """Cold vs. warm DAG-build times for the ``OptimizerSession`` scenarios.

    Four scenarios over the CQ5 scale-up batch (the paper's recurring-batch
    service case), each reported as ``{cold_ms, warm_ms, speedup}`` where
    *cold* is a fresh-session build and *warm* a rebuild on a long-lived
    session:

    * ``CQ5-repeat`` — the same batch re-optimized verbatim; the session's
      batch-level plan cache returns the previously built DAG outright.
    * ``CQ5-rebuild`` — the same batch with the plan cache disabled: the DAG
      is reconstructed from scratch, node by node, through the fragment
      cache (scan choices, join costs, properties, partition recipes); this
      is the path the byte-identity differential suite exercises.
    * ``CQ5-shifted`` — a *different but overlapping* batch (the SQ5..SQ18
      suffix window of CQ5's SQ1..SQ18 components) rebuilt on a session
      primed with CQ5: only fragment-level reuse can help here.
    * ``CQ5-stats-change`` — statistics of one relation (``psp3``) are
      mutated before every rebuild: the session must evict exactly that
      relation's cone and recompute it, keeping the rest warm.
    """
    from repro.catalog import psp_catalog
    from repro.service.session import OptimizerSession
    from repro.workloads.scaleup import component_query, scaleup_queries

    cq5 = scaleup_queries(5)
    shifted = [query for c in range(5, 19) for query in component_query(c)]
    scenarios: Dict[str, Dict[str, float]] = {}

    def record(name: str, cold_s: float, warm_s: float) -> None:
        scenarios[name] = {
            "cold_ms": cold_s * 1000.0,
            "warm_ms": warm_s * 1000.0,
            "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        }

    def cold_build(queries, **session_kwargs) -> float:
        return min(
            _best_of(
                lambda: OptimizerSession(psp_catalog(), **session_kwargs).build_dag(queries),
                repeats,
            )
        )

    # Same batch, plan cache enabled (the default service configuration).
    session = OptimizerSession(psp_catalog())
    session.build_dag(cq5)
    record("CQ5-repeat", cold_build(cq5),
           min(_best_of(lambda: session.build_dag(cq5), repeats)))

    # Same batch, fragment cache only.
    rebuild_cold = cold_build(cq5, cache_plans=False)
    session = OptimizerSession(psp_catalog(), cache_plans=False)
    session.build_dag(cq5)
    record("CQ5-rebuild", rebuild_cold,
           min(_best_of(lambda: session.build_dag(cq5), repeats)))

    # Overlapping-but-different batch on a CQ5-primed session.  The session
    # is re-primed for every sample: after the first shifted build its own
    # fragments would be cached too, and the measurement would degenerate
    # into the same-batch rebuild scenario above.
    def shifted_once() -> float:
        session = OptimizerSession(psp_catalog(), cache_plans=False)
        session.build_dag(cq5)
        start = time.perf_counter()
        session.build_dag(shifted)
        return time.perf_counter() - start

    record("CQ5-shifted", cold_build(shifted, cache_plans=False),
           min(shifted_once() for _ in range(repeats)))

    # Statistics change between rebuilds: targeted invalidation of one
    # relation's cone, everything else stays warm.
    session = OptimizerSession(psp_catalog(), cache_plans=False)
    session.build_dag(cq5)
    rows = [31_000, 32_000, 33_000]

    def stats_change_rebuild() -> None:
        session.catalog.update_statistics("psp3", row_count=rows[0])
        rows.append(rows.pop(0))
        session.build_dag(cq5)

    record("CQ5-stats-change", rebuild_cold,
           min(_best_of(stats_change_rebuild, repeats)))
    return scenarios


def print_warm_rebuild_table(scenarios: Dict[str, Dict[str, float]]) -> None:
    """One line per warm-rebuild scenario (see :func:`measure_warm_rebuild`)."""
    print("\n=== warm rebuild (OptimizerSession): DAG build (milliseconds) ===")
    print(f"{'scenario':<18s}{'cold':>12s}{'warm':>12s}{'speedup':>10s}")
    for name, entry in scenarios.items():
        print(f"{name:<18s}{entry['cold_ms']:12.2f}{entry['warm_ms']:12.3f}"
              f"{entry['speedup']:9.1f}x")


#: Gate series: (name, baseline key, measurement fn, gated workloads).
_GATE_SERIES = (
    ("greedy", "greedy_normalized", measure_greedy_times, PERF_GATE_WORKLOADS),
    ("volcano_ru", "volcano_ru_normalized", measure_volcano_ru_times, PERF_GATE_WORKLOADS),
    ("build", "build_normalized", measure_build_times, BUILD_GATE_WORKLOADS),
)


def perf_gate(baseline_path: str, update: bool = False,
              tolerance: float = PERF_GATE_TOLERANCE) -> int:
    """Fail (non-zero) if fig9 greedy, Volcano-RU, or DAG construction times
    regress beyond the tolerance band, or if the ``OptimizerSession``
    warm-rebuild speedups fall below their floors.

    Times are normalized by :func:`_calibrate` so the checked-in baseline
    transfers across machines; the band (default 1.5x) absorbs the remaining
    scheduling noise.  Warm-rebuild speedups are ratios and are checked
    directly against :data:`WARM_GATE_MIN_SPEEDUP`.
    """
    calibration = _calibrate()
    measured = {series: measure() for series, _, measure, _ in _GATE_SERIES}
    normalized = {
        series: {name: t / calibration for name, t in times.items()}
        for series, times in measured.items()
    }
    print(f"calibration: {calibration * 1000:.2f} ms")
    for series, _, _, workloads in _GATE_SERIES:
        for name in workloads:
            print(f"{name}: {series} {measured[series][name] * 1000:.2f} ms "
                  f"(normalized {normalized[series][name]:.3f})")
    warm = measure_warm_rebuild()
    print_warm_rebuild_table(warm)

    if update:
        payload = {"calibration_s": calibration, "tolerance": tolerance}
        for series, key, _, _ in _GATE_SERIES:
            payload[f"{series}_s"] = measured[series]
            payload[key] = normalized[series]
        with open(baseline_path, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        print(f"baseline written to {baseline_path}")
        return 0

    try:
        with open(baseline_path) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(f"ERROR: no perf baseline at {baseline_path}; "
              "run with --update-baseline first", file=sys.stderr)
        return 2

    failures = []
    for series, key, _, workloads in _GATE_SERIES:
        reference_series = baseline.get(key)
        if reference_series is None:
            print(f"ERROR: baseline at {baseline_path} lacks '{key}'; "
                  "regenerate it with --update-baseline", file=sys.stderr)
            return 2
        for name in workloads:
            reference = reference_series[name]
            limit = reference * tolerance
            if normalized[series][name] > limit:
                failures.append(
                    f"{name}: normalized {series} time "
                    f"{normalized[series][name]:.3f} exceeds baseline "
                    f"{reference:.3f} x {tolerance} = {limit:.3f}"
                )
    for scenario, floor in WARM_GATE_MIN_SPEEDUP.items():
        speedup = warm[scenario]["speedup"]
        if speedup < floor:
            failures.append(
                f"{scenario}: warm-rebuild speedup {speedup:.2f}x "
                f"below the {floor}x floor"
            )
    if failures:
        print("PERF REGRESSION:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print("perf gate ok: all workloads within "
          f"{tolerance}x of the normalized baseline")
    return 0


def _main(argv: List[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="Benchmark harness entry point")
    parser.add_argument("--smoke", action="store_true",
                        help="run one small batched workload end-to-end (used by CI)")
    parser.add_argument("--batch", type=int, default=2, metavar="1..5",
                        help="which BQ_i batch the smoke run uses (default: 2)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="with --smoke/--warm: also write the results as JSON")
    parser.add_argument("--warm", action="store_true",
                        help="measure the OptimizerSession warm-rebuild "
                             "scenarios (CQ5 repeat/rebuild/shifted/"
                             "stats-change) and print the speedup table")
    parser.add_argument("--service", action="store_true",
                        help="measure multi-worker service throughput over a "
                             "shared bounded fragment-cache snapshot "
                             "(p50/p99 latency, qps, hit rate)")
    parser.add_argument("--service-workers", type=int, default=2, metavar="N",
                        help="worker process count for --service (default: 2)")
    parser.add_argument("--service-batches", type=int, default=1000, metavar="N",
                        help="total batches served by --service (default: 1000; "
                             "CI smoke uses 40)")
    parser.add_argument("--result-cache", action="store_true",
                        help="run the cross-batch ResultCache drill: the same "
                             "overlapping batches executed with the cache off "
                             "and on (byte-identical rows enforced, >= 2x "
                             "fewer accounted block reads asserted); with "
                             "--service, workers also execute every batch "
                             "through a snapshot-restored result cache")
    parser.add_argument("--chaos", action="store_true",
                        help="with --service: run the fault drill — seeded "
                             "FaultInjector in every worker, corrupted-"
                             "snapshot rejection check, first+last batch "
                             "verified against a one-shot optimizer")
    parser.add_argument("--chaos-seed", type=int, default=1337, metavar="SEED",
                        help="fault-schedule seed for --chaos (default: 1337)")
    parser.add_argument("--perf-gate", action="store_true",
                        help="fail if fig9 greedy, Volcano-RU, or DAG build "
                             "times regress beyond the tolerance band vs. the "
                             "checked-in baseline, or warm-rebuild speedups "
                             "drop below their floors")
    parser.add_argument("--baseline", metavar="PATH", default=DEFAULT_BASELINE,
                        help="perf baseline JSON (default: benchmarks/perf_baseline.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="with --perf-gate: rewrite the baseline instead of checking")
    args = parser.parse_args(argv)
    if args.perf_gate:
        return perf_gate(args.baseline, update=args.update_baseline)
    if (not args.smoke and not args.warm and not args.service
            and not args.result_cache):
        parser.error("nothing to do: pass --smoke, --warm, --service, "
                     "--result-cache, or --perf-gate (the full suite runs "
                     "via pytest)")
    if args.smoke:
        smoke(batch_index=args.batch, json_path=args.json)
    if args.warm:
        scenarios = measure_warm_rebuild()
        print_warm_rebuild_table(scenarios)
        if args.json:
            # Merge into the smoke payload when both were requested.
            try:
                with open(args.json) as handle:
                    payload = json.load(handle)
            except (FileNotFoundError, ValueError):
                payload = {}
            payload["warm_rebuild"] = scenarios
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            print(f"warm-rebuild results written to {args.json}")
    if args.chaos and not args.service:
        parser.error("--chaos only makes sense with --service")
    if args.result_cache:
        metrics = measure_result_cache()
        print_result_cache_table(metrics)
        if args.json:
            try:
                with open(args.json) as handle:
                    payload = json.load(handle)
            except (FileNotFoundError, ValueError):
                payload = {}
            payload["result_cache"] = metrics
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            print(f"result-cache results written to {args.json}")
    if args.service:
        metrics = measure_service_throughput(
            workers=args.service_workers, batches=args.service_batches,
            chaos_seed=args.chaos_seed if args.chaos else None,
            result_cache=args.result_cache,
        )
        print_service_table(metrics)
        if args.json:
            try:
                with open(args.json) as handle:
                    payload = json.load(handle)
            except (FileNotFoundError, ValueError):
                payload = {}
            payload["service_throughput"] = metrics
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            print(f"service results written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
