"""Batched decision-support reporting (the paper's Experiment 2 scenario).

A nightly reporting batch runs several TPC-D queries, some repeated with
different constants.  The example shows the estimated cost of the batch under
each algorithm and the optimization-time overhead of multi-query optimization.

Run with ``python examples/batched_reporting.py [BQ-index]``.
"""

import sys

from repro import MQOptimizer, PAPER_ALGORITHMS
from repro.catalog import tpcd_catalog
from repro.workloads.batch import batched_queries


def main(index: int = 5) -> None:
    catalog = tpcd_catalog(scale=1.0)
    optimizer = MQOptimizer(catalog)
    queries = batched_queries(index)

    print(f"BQ{index}: {len(queries)} queries ({', '.join(q.name for q in queries)})\n")
    results = optimizer.optimize_all(queries, PAPER_ALGORITHMS)

    volcano_cost = results["Volcano"].cost
    print(f"{'algorithm':<12s} {'est. cost (s)':>14s} {'vs Volcano':>11s} {'opt. time (ms)':>15s} {'materialized':>13s}")
    for result in results.values():
        ratio = result.cost / volcano_cost if volcano_cost else 1.0
        print(
            f"{result.algorithm:<12s} {result.cost:14.1f} {ratio:10.2f}x "
            f"{result.optimization_time * 1000:15.1f} {result.materialized_count:13d}"
        )

    greedy = results["Greedy"]
    print("\nShared results materialized by Greedy:")
    for label in greedy.materialized_labels():
        print(f"  - {label}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
