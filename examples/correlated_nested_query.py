"""Correlated nested queries and temporary index selection (Section 5).

TPC-D Q2 contains a correlated scalar sub-query whose invariant part
(``partsupp ⋈ supplier ⋈ nation ⋈ σ(region)``) can be materialized — with a
temporary index on the correlation column — and shared across invocations and
with the outer query.  The example optimizes the correlated form, its
decorrelated form, and the inequality-correlated variant the paper uses to
show the benefit when decorrelation is not possible, then executes the chosen
plans on synthetic data to compare the actual work performed.
"""

from repro import Algorithm, MQOptimizer
from repro.catalog import tpcd_catalog
from repro.execution import Executor, generate_tpcd_data
from repro.workloads import tpcd_queries as tq


def optimize_and_execute(optimizer, executor, name, queries) -> None:
    dag = optimizer.build_dag(queries)
    volcano = optimizer.optimize(queries, Algorithm.VOLCANO, dag=dag)
    greedy = optimizer.optimize(queries, Algorithm.GREEDY, dag=dag)
    print(f"\n{name}")
    print(f"  estimated cost:  Volcano {volcano.cost:10.1f}s   Greedy {greedy.cost:10.1f}s")
    if executor is not None:
        no_mqo = executor.run(volcano.plan)
        mqo = executor.run(greedy.plan)
        print(
            f"  executed work:   No-MQO  {no_mqo.simulated_seconds:10.2f}s   "
            f"MQO    {mqo.simulated_seconds:10.2f}s   (rows: {len(mqo.rows)})"
        )
    if greedy.materialized_count:
        print("  materialized:", "; ".join(greedy.materialized_labels()))


def main() -> None:
    catalog = tpcd_catalog(scale=1.0)
    optimizer = MQOptimizer(catalog)

    execution_catalog = tpcd_catalog(scale=0.005)
    database = generate_tpcd_data(scale=0.005)
    executor = Executor(database, execution_catalog)

    optimize_and_execute(optimizer, executor, "Q2 (correlated)", [tq.q2()])
    optimize_and_execute(optimizer, executor, "Q2-D (decorrelated)", tq.q2_decorrelated())
    optimize_and_execute(optimizer, None, "Q2 modified (inequality correlation)", [tq.q2_modified()])


if __name__ == "__main__":
    main()
