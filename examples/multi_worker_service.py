"""Deploying the optimizer as a multi-worker service.

Run with ``python examples/multi_worker_service.py``.

A production deployment of the recurring-batch scenario the paper motivates
MQO with looks less like one long-lived process and more like a small fleet:
N workers answering optimization requests against one catalog, plus
something that keeps their caches warm.  Three PR 7 capabilities make that
shape work:

1. **Content-addressed snapshots** — every session-cache key is derived from
   *values* (canonical equivalence keys, ``LogicalProperties.content_key()``
   bit patterns, per-relation statistics digests), never from ``id()``.  A
   warm cache is therefore a value too: ``OptimizerSession.snapshot_state()``
   pickles it, and ``OptimizerSession.from_snapshot()`` rebuilds a session
   around it in any process.
2. **Bounded families** — ``SessionCacheLimits.bounded()`` puts an LRU cap
   on every cache family, so a worker serving an unbounded stream of
   distinct batches has bounded memory.  Correctness never depends on
   residency: an evicted fragment is recomputed and interns back to the
   same content ids.
3. **Background warming** — a ``CacheWarmer`` thread drains a queue of
   anticipated batches through the session, so the foreground request never
   pays the cold build.

Every warm answer is byte-identical to a cold one-shot optimization — the
workers check one batch each against a fresh ``MQOptimizer`` to prove it.
"""

import multiprocessing
import time

from repro import MQOptimizer, OptimizerSession
from repro.catalog import psp_catalog
from repro.service import CacheWarmer, SessionCacheLimits
from repro.workloads.scaleup import component_query, scaleup_queries


def batch_window(start: int, width: int):
    """One service request: an overlapping window of component queries."""
    return [q for c in range(start, start + width) for q in component_query(c)]


def serve(worker_id: int, snapshot: bytes, windows, results) -> None:
    """A worker process: restore the warm snapshot, answer requests."""
    session = OptimizerSession.from_snapshot(snapshot, max_plans=16)
    latencies = []
    for index, (start, width) in enumerate(windows):
        queries = batch_window(start, width)
        began = time.perf_counter()
        result = session.optimize(queries, "greedy")
        latencies.append((time.perf_counter() - began) * 1000.0)
        if index == 0:
            # Byte-identity check: the warm answer must exactly equal a cold
            # one-shot optimization (no tolerance — same bits, same cost).
            cold = MQOptimizer(session.catalog).optimize(queries, "greedy")
            assert result.cost == cold.cost
    stats = session.cache_stats()
    results.put(
        f"worker {worker_id}: {len(windows)} batches, "
        f"median latency {sorted(latencies)[len(latencies) // 2]:.1f} ms, "
        f"fragment hit rate {stats.hit_rate:.0%}"
    )


def main() -> None:
    # -- parent: warm a bounded session and snapshot it -----------------------
    limits = SessionCacheLimits.bounded()
    parent = OptimizerSession(psp_catalog(), cache_plans=False, limits=limits)

    warmer = CacheWarmer(parent)
    warmer.enqueue(scaleup_queries(5))          # anticipate the CQ5 fragments
    warmer.flush()
    print(f"warmed {warmer.warmed} batch in the background "
          f"({parent.cache.entry_count()} cached fragments)")
    warmer.close()

    snapshot = parent.snapshot_state()
    print(f"snapshot: {len(snapshot) // 1024} KiB, portable to any process\n")

    # -- workers: restore the snapshot, serve overlapping windows -------------
    windows = [((i * 7) % 17 + 1, 2 + i % 3) for i in range(12)]
    context = multiprocessing.get_context()
    results = context.Queue()
    workers = [
        context.Process(target=serve, args=(n, snapshot, windows[n::2], results))
        for n in range(2)
    ]
    for worker in workers:
        worker.start()
    for _ in workers:
        print(results.get())
    for worker in workers:
        worker.join()
        assert worker.exitcode == 0

    sizes = parent.cache.family_sizes()
    print("\nbounded families stay under their caps, e.g. "
          f"join_ops {sizes['join_ops']}/{limits.join_ops}, "
          f"scans {sizes['scans']}/{limits.scans}")
    print("every warm answer checked byte-identical to a cold optimization")


if __name__ == "__main__":
    main()
