"""Quickstart: optimize a small batch of queries with and without MQO.

Run with ``python examples/quickstart.py``.

The example builds the TPC-D catalog at scale 1, writes two small ad-hoc
queries that share the ``orders ⋈ lineitem`` sub-expression, and compares the
plans found by plain Volcano optimization and by the paper's three multi-query
optimization heuristics.
"""

from repro import MQOptimizer, PAPER_ALGORITHMS, Query
from repro.algebra import Aggregate, AggregateFunction, Join, Relation, Select, col, eq, ge, lt
from repro.catalog import tpcd_catalog
from repro.catalog.tpcd import date_day


def build_queries():
    """Two reporting queries over the same orders/lineitem join."""
    orders_lineitem = Join(
        Relation("orders"),
        Relation("lineitem"),
        eq(col("orders", "o_orderkey"), col("lineitem", "l_orderkey")),
    )

    revenue_by_priority = Aggregate(
        Select(orders_lineitem, ge(col("orders", "o_orderdate"), date_day(1995))),
        group_by=(col("orders", "o_orderpriority"),),
        aggregates=(AggregateFunction("sum", col("lineitem", "l_extendedprice"), "revenue"),),
        alias="by_priority",
    )
    discounted_volume = Aggregate(
        Select(orders_lineitem, lt(col("lineitem", "l_discount"), 0.05)),
        group_by=(col("lineitem", "l_returnflag"),),
        aggregates=(AggregateFunction("sum", col("lineitem", "l_quantity"), "volume"),),
        alias="by_flag",
    )
    return [
        Query("revenue_by_priority", revenue_by_priority),
        Query("discounted_volume", discounted_volume),
    ]


def main() -> None:
    catalog = tpcd_catalog(scale=1.0)
    optimizer = MQOptimizer(catalog)
    queries = build_queries()

    print(f"Optimizing a batch of {len(queries)} queries on the TPC-D catalog (scale 1)\n")
    results = optimizer.optimize_all(queries, PAPER_ALGORITHMS)
    for result in results.values():
        print(result.summary())

    greedy = results["Greedy"]
    print("\nMaterialized intermediate results chosen by Greedy:")
    for label in greedy.materialized_labels():
        print(f"  - {label}")
    print("\nGreedy plan:")
    print(greedy.plan.explain())


if __name__ == "__main__":
    main()
