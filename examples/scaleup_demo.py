"""Scale-up behaviour of the greedy heuristic (Sections 6.2 and 6.3).

Optimizes the CQ1..CQ5 composite chain-query workloads and reports plan cost,
optimization time, and the greedy instrumentation counters (cost propagations
and benefit recomputations), with and without the monotonicity heuristic.

Run with ``python examples/scaleup_demo.py``.
"""

from repro import Algorithm, GreedyOptions, MQOptimizer
from repro.catalog import psp_catalog
from repro.workloads.scaleup import all_scaleup_workloads


def main() -> None:
    catalog = psp_catalog()
    optimizer = MQOptimizer(catalog)

    header = (
        f"{'workload':<6s} {'queries':>8s} {'Volcano':>10s} {'Greedy':>10s} "
        f"{'opt ms':>8s} {'propagations':>13s} {'recomputations':>15s} {'no-mono recomp':>15s}"
    )
    print(header)
    for name, queries in all_scaleup_workloads().items():
        dag = optimizer.build_dag(queries)
        volcano = optimizer.optimize(queries, Algorithm.VOLCANO, dag=dag)
        greedy = optimizer.optimize(queries, Algorithm.GREEDY, dag=dag)
        no_mono = optimizer.optimize(
            queries,
            Algorithm.GREEDY,
            dag=dag,
            greedy_options=GreedyOptions(use_monotonicity=False),
        )
        print(
            f"{name:<6s} {len(queries):>8d} {volcano.cost:>10.1f} {greedy.cost:>10.1f} "
            f"{greedy.optimization_time * 1000:>8.1f} "
            f"{greedy.counters['cost_propagations']:>13d} "
            f"{greedy.counters['benefit_recomputations']:>15d} "
            f"{no_mono.counters['benefit_recomputations']:>15d}"
        )
    print(
        "\nThe monotonicity heuristic cuts benefit recomputations by roughly an order of"
        "\nmagnitude while (here, as in the paper) returning plans of the same cost."
    )


if __name__ == "__main__":
    main()
