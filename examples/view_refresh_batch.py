"""Materialized-view refresh as a multi-query optimization problem.

Updating a set of related materialized views generates queries with common
sub-expressions (one of the motivating scenarios in the paper's introduction
and in [RSS96]).  The example defines three aggregate views over the same
``orders ⋈ lineitem`` join and optimizes their refresh queries as one batch,
plus a parameterized-query batch (Section 5) built from a single template.
"""

from repro import MQOptimizer, PAPER_ALGORITHMS, Query
from repro.algebra import Aggregate, AggregateFunction, Join, Relation, Select, col, eq, ge
from repro.catalog import tpcd_catalog
from repro.catalog.tpcd import date_day
from repro.workloads.nested import parameterized_batch
from repro.workloads.tpcd_queries import q3


def view_refresh_queries():
    base_join = Join(
        Relation("orders"),
        Relation("lineitem"),
        eq(col("orders", "o_orderkey"), col("lineitem", "l_orderkey")),
    )
    recent = Select(base_join, ge(col("orders", "o_orderdate"), date_day(1997)))

    views = {
        "revenue_by_customer": Aggregate(
            recent,
            group_by=(col("orders", "o_custkey"),),
            aggregates=(AggregateFunction("sum", col("lineitem", "l_extendedprice"), "revenue"),),
            alias="v_customer",
        ),
        "volume_by_shipmode": Aggregate(
            recent,
            group_by=(col("lineitem", "l_shipmode"),),
            aggregates=(AggregateFunction("sum", col("lineitem", "l_quantity"), "volume"),),
            alias="v_shipmode",
        ),
        "orders_by_priority": Aggregate(
            recent,
            group_by=(col("orders", "o_orderpriority"),),
            aggregates=(AggregateFunction("count", None, "orders"),),
            alias="v_priority",
        ),
    }
    return [Query(name, expression) for name, expression in views.items()]


def main() -> None:
    catalog = tpcd_catalog(scale=1.0)
    optimizer = MQOptimizer(catalog)

    print("=== refreshing three materialized views over orders ⋈ lineitem ===")
    for result in optimizer.optimize_all(view_refresh_queries(), PAPER_ALGORITHMS).values():
        print(" ", result.summary())

    print("\n=== five invocations of a parameterized query (TPC-D Q3 template) ===")
    batch = parameterized_batch(
        q3,
        [
            {"segment": "BUILDING", "date": date_day(1995, 3, 15)},
            {"segment": "BUILDING", "date": date_day(1995, 6, 1)},
            {"segment": "MACHINERY", "date": date_day(1995, 3, 15)},
            {"segment": "HOUSEHOLD", "date": date_day(1995, 3, 15)},
            {"segment": "BUILDING", "date": date_day(1995, 9, 1)},
        ],
        name="Q3",
    )
    for result in optimizer.optimize_all(batch, PAPER_ALGORITHMS).values():
        print(" ", result.summary())


if __name__ == "__main__":
    main()
