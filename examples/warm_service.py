"""Warm rebuilds in a long-lived optimizer service (``OptimizerSession``).

Run with ``python examples/warm_service.py``.

The paper motivates multi-query optimization with *recurring* batch
workloads: the same (or overlapping) reporting batches re-optimized against
one catalog, over and over.  A plain :class:`repro.MQOptimizer` rebuilds the
AND-OR DAG from a cold start every time; an
:class:`repro.OptimizerSession` keeps a catalog-lifetime cache across calls:

1. an exact repeat of a batch hits the **plan cache** (the previously built
   DAG and results come back outright);
2. an overlapping-but-different batch rebuilds through the **fragment
   cache** (scan choices, join costs, derived properties, partition-
   enumeration recipes) several times faster than cold;
3. a statistics change (``Catalog.update_statistics``) invalidates exactly
   the affected relation's entries — the next rebuild recomputes that cone
   and keeps the rest warm, and the resulting DAG is byte-identical to a
   cold build against the new statistics.
"""

import time

from repro import MQOptimizer, OptimizerSession
from repro.catalog import psp_catalog
from repro.workloads.scaleup import component_query, scaleup_queries


def timed_build(label, session, queries):
    start = time.perf_counter()
    session.build_dag(queries)
    elapsed = (time.perf_counter() - start) * 1000.0
    print(f"  {label:<42s}{elapsed:9.2f} ms")
    return elapsed


def main() -> None:
    catalog = psp_catalog()
    session = OptimizerSession(catalog)

    cq5 = scaleup_queries(5)                                   # SQ1..SQ18
    shifted = [q for c in range(5, 19) for q in component_query(c)]  # SQ5..SQ18

    print(f"CQ5: {len(cq5)} chain queries over 22 PSP relations\n")
    print("DAG construction on one long-lived session:")
    cold = timed_build("cold build (empty session)", session, cq5)
    repeat = timed_build("same batch again (plan cache)", session, cq5)
    shifted_ms = timed_build("shifted overlapping batch (fragments)", session, shifted)

    catalog.update_statistics("psp3", row_count=31_000)
    stats_ms = timed_build("rebuild after psp3 stats change", session, cq5)

    print(f"\nspeedups vs cold: repeat {cold / repeat:,.0f}x, "
          f"shifted {cold / shifted_ms:.1f}x, stats-change {cold / stats_ms:.1f}x")

    result = session.optimize(cq5, "greedy")
    print(f"\ngreedy on the rebuilt DAG: {result.summary()}")
    print(f"fragment cache: {session.cache_stats()}")

    # The warm DAGs are byte-identical to what a cold optimizer would build —
    # the differential suite (tests/test_session_cache.py) enforces this; the
    # cheap spot-check here compares the estimated plan cost.
    cold_result = MQOptimizer(catalog).optimize(cq5, "greedy")
    assert cold_result.cost == result.cost
    print("cost identical to a cold MQOptimizer run ✓")


if __name__ == "__main__":
    main()
