"""Setup shim for environments without the `wheel` package.

The project is fully described in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517 --no-build-isolation`` on offline machines
where the PEP 517 editable-install path (which needs ``bdist_wheel``) is not
available.
"""

from setuptools import setup

setup()
