"""repro — a reproduction of "Efficient and Extensible Algorithms for Multi
Query Optimization" (Roy, Seshadri, Sudarshan, Bhobe; SIGMOD 2000).

The package provides:

* :mod:`repro.algebra` — relational algebra expressions and predicates;
* :mod:`repro.catalog` — schemas and statistics (TPC-D and the PSP scale-up
  schema);
* :mod:`repro.cost` — the block-based cost model and cardinality estimation;
* :mod:`repro.dag` — the AND-OR DAG with unification, subsumption derivations
  and sharability detection;
* :mod:`repro.optimizer` — Volcano, Volcano-SH, Volcano-RU, Greedy (with the
  incremental cost update and monotonicity optimizations) and an exhaustive
  oracle;
* :mod:`repro.execution` — a simulated execution engine and data generators;
* :mod:`repro.workloads` — the TPC-D, batched and scale-up workloads of the
  paper's evaluation;
* :mod:`repro.api` — the public façade (:class:`MQOptimizer`);
* :mod:`repro.service` — the long-lived service layer
  (:class:`OptimizerSession`): a catalog-lifetime plan/fragment cache that
  makes warm rebuilds of overlapping batches cheap.
"""

from repro.api import Algorithm, MQOptimizer, PAPER_ALGORITHMS, optimize
from repro.dag.builder import Query
from repro.optimizer import GreedyOptions, OptimizationResult
from repro.service import OptimizerSession, SessionCache

__version__ = "1.0.0"

__all__ = [
    "Algorithm",
    "MQOptimizer",
    "PAPER_ALGORITHMS",
    "optimize",
    "Query",
    "GreedyOptions",
    "OptimizationResult",
    "OptimizerSession",
    "SessionCache",
    "__version__",
]
