"""Relational algebra substrate: column references, predicates and logical
query expressions.

This package is the front end of the reproduction: workloads are written as
logical expression trees (:mod:`repro.algebra.expressions`) over a catalog,
with predicates from :mod:`repro.algebra.predicates`.  The multi-query
optimizer consumes these trees (after normalization into query blocks, see
:mod:`repro.dag.builder`).
"""

from repro.algebra.columns import ColumnRef, Constant, col, lit
from repro.algebra.predicates import (
    Comparison,
    Conjunction,
    Disjunction,
    Predicate,
    TruePredicate,
    and_,
    conjuncts_of,
    eq,
    ge,
    gt,
    implies,
    le,
    lt,
    ne,
    or_,
)
from repro.algebra.expressions import (
    Aggregate,
    AggregateFunction,
    Expression,
    Join,
    Project,
    Relation,
    Select,
)

__all__ = [
    "ColumnRef",
    "Constant",
    "col",
    "lit",
    "Predicate",
    "Comparison",
    "Conjunction",
    "Disjunction",
    "TruePredicate",
    "and_",
    "or_",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "implies",
    "conjuncts_of",
    "Expression",
    "Relation",
    "Select",
    "Project",
    "Join",
    "Aggregate",
    "AggregateFunction",
]
