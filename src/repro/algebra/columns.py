"""Column references and literal constants used in predicates and expressions.

A :class:`ColumnRef` names a column of a relation *instance*; the ``relation``
part is the alias used in the query (for base tables that are referenced only
once, the alias conventionally equals the table name).  Canonicalization of
aliases for DAG unification happens later, in :mod:`repro.dag.builder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A reference to ``relation.column``."""

    relation: str
    column: str

    def __str__(self) -> str:
        return f"{self.relation}.{self.column}"

    def with_relation(self, relation: str) -> "ColumnRef":
        """Return a copy of this reference bound to a different alias."""
        return ColumnRef(relation, self.column)


@dataclass(frozen=True, order=True)
class Constant:
    """A literal constant appearing in a predicate.

    Values are restricted to orderable Python scalars (numbers and strings) so
    that predicate implication tests and selectivity estimation can compare
    them.
    """

    value: Union[int, float, str]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


Operand = Union[ColumnRef, Constant]


def col(relation: str, column: str) -> ColumnRef:
    """Convenience constructor for a column reference."""
    return ColumnRef(relation, column)


def lit(value: Union[int, float, str]) -> Constant:
    """Convenience constructor for a literal constant."""
    return Constant(value)


def is_column(operand: Operand) -> bool:
    """Return ``True`` if *operand* is a column reference."""
    return isinstance(operand, ColumnRef)


def is_constant(operand: Operand) -> bool:
    """Return ``True`` if *operand* is a literal constant."""
    return isinstance(operand, Constant)
