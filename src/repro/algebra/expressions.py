"""Logical query expressions.

Queries are written as immutable expression trees.  The trees are what a SQL
front end would produce after parsing and view expansion; they are the input
to the multi-query optimizer (which normalizes them into *query blocks* before
building the AND-OR DAG, see :mod:`repro.dag.builder`).

The node types follow the operations the paper's optimizer rule set supports:
relation scans, selections, projections, (inner) joins, and group-by
aggregation.  Nested/correlated queries are expressed at the workload level
(:mod:`repro.workloads.nested`) as structures over these trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Mapping, Optional, Tuple

from repro.algebra.columns import ColumnRef
from repro.algebra.predicates import Predicate, TruePredicate


class Expression:
    """Abstract base class of logical expressions."""

    def children(self) -> Tuple["Expression", ...]:
        """Return the input expressions."""
        raise NotImplementedError

    def relations(self) -> FrozenSet[str]:
        """Return the aliases of all base relations referenced below here."""
        out: FrozenSet[str] = frozenset()
        for child in self.children():
            out = out | child.relations()
        return out

    def rename(self, mapping: Mapping[str, str]) -> "Expression":
        """Return a copy with relation aliases rewritten through *mapping*."""
        raise NotImplementedError


@dataclass(frozen=True)
class Relation(Expression):
    """A scan of a base relation.

    ``alias`` defaults to the table name; it must be unique within a query
    when the same table is referenced more than once.
    """

    table: str
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        """The alias under which this relation instance is referenced."""
        return self.alias or self.table

    def children(self) -> Tuple[Expression, ...]:
        return ()

    def relations(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        if self.name in mapping:
            return Relation(self.table, mapping[self.name])
        return self

    def __str__(self) -> str:
        if self.alias and self.alias != self.table:
            return f"{self.table} AS {self.alias}"
        return self.table


@dataclass(frozen=True)
class Select(Expression):
    """A selection (filter) over a single input."""

    child: Expression
    predicate: Predicate

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def rename(self, mapping: Mapping[str, str]) -> "Select":
        return Select(self.child.rename(mapping), self.predicate.rename(mapping))

    def __str__(self) -> str:
        return f"σ[{self.predicate}]({self.child})"


@dataclass(frozen=True)
class Project(Expression):
    """A (duplicate-preserving) projection onto a list of columns."""

    child: Expression
    columns: Tuple[ColumnRef, ...]

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    def rename(self, mapping: Mapping[str, str]) -> "Project":
        renamed = tuple(
            c.with_relation(mapping[c.relation]) if c.relation in mapping else c
            for c in self.columns
        )
        return Project(self.child.rename(mapping), renamed)

    def __str__(self) -> str:
        cols = ", ".join(str(c) for c in self.columns)
        return f"π[{cols}]({self.child})"


@dataclass(frozen=True)
class Join(Expression):
    """An inner join of two inputs on a predicate.

    A :class:`~repro.algebra.predicates.TruePredicate` yields a cross product
    (which the optimizer tolerates but never prefers).
    """

    left: Expression
    right: Expression
    predicate: Predicate = field(default_factory=TruePredicate)

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def rename(self, mapping: Mapping[str, str]) -> "Join":
        return Join(
            self.left.rename(mapping),
            self.right.rename(mapping),
            self.predicate.rename(mapping),
        )

    def __str__(self) -> str:
        return f"({self.left} ⋈[{self.predicate}] {self.right})"


@dataclass(frozen=True, order=True)
class AggregateFunction:
    """A single aggregate such as ``sum(l.extendedprice) AS revenue``.

    ``column`` is ``None`` for ``count(*)``.
    """

    func: str
    column: Optional[ColumnRef]
    alias: str

    _SUPPORTED = ("sum", "min", "max", "count", "avg")

    def __post_init__(self) -> None:
        if self.func not in self._SUPPORTED:
            raise ValueError(f"unsupported aggregate function: {self.func!r}")

    def __str__(self) -> str:
        arg = "*" if self.column is None else str(self.column)
        return f"{self.func}({arg}) AS {self.alias}"


@dataclass(frozen=True)
class Aggregate(Expression):
    """Group-by aggregation over a single input."""

    child: Expression
    group_by: Tuple[ColumnRef, ...]
    aggregates: Tuple[AggregateFunction, ...]
    alias: Optional[str] = None

    def children(self) -> Tuple[Expression, ...]:
        return (self.child,)

    @property
    def name(self) -> str:
        """Alias under which the aggregate's output columns are referenced."""
        return self.alias or "agg"

    def rename(self, mapping: Mapping[str, str]) -> "Aggregate":
        group = tuple(
            c.with_relation(mapping[c.relation]) if c.relation in mapping else c
            for c in self.group_by
        )
        aggs = tuple(
            AggregateFunction(
                a.func,
                a.column.with_relation(mapping[a.column.relation])
                if a.column is not None and a.column.relation in mapping
                else a.column,
                a.alias,
            )
            for a in self.aggregates
        )
        return Aggregate(self.child.rename(mapping), group, aggs, self.alias)

    def __str__(self) -> str:
        group = ", ".join(str(c) for c in self.group_by) or "()"
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"γ[{group}; {aggs}]({self.child})"


def walk(expression: Expression) -> Iterator[Expression]:
    """Yield every node of the expression tree, pre-order."""
    yield expression
    for child in expression.children():
        yield from walk(child)


def base_relations(expression: Expression) -> Tuple[Relation, ...]:
    """Return all base-relation leaves of the expression, in tree order."""
    return tuple(node for node in walk(expression) if isinstance(node, Relation))
