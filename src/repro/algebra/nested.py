"""Correlated nested sub-queries.

The paper's Section 5 extension treats correlated evaluation of nested queries
as repeated invocations of the nested query, where the part of the nested
query that does not depend on correlation variables (the *invariant* part) can
be materialized — ideally with a temporary index on the correlation column —
and shared across invocations and with the outer query.

:class:`CorrelatedSubqueryFilter` is the logical form of such a query: it
filters the *outer* expression by comparing one of its columns against a
scalar aggregate computed, per outer row, over the correlated selection of the
*invariant* expression.  TPC-D Q2 is the canonical example::

    ... WHERE ps_supplycost = (SELECT min(ps_supplycost) FROM ... WHERE
                               ps_partkey = p_partkey AND r_name = '...')

Here the invariant part is ``partsupp ⋈ supplier ⋈ nation ⋈ σ(region)`` and
the correlation predicate is ``inner.ps_partkey = outer.p_partkey``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.algebra.columns import ColumnRef
from repro.algebra.expressions import AggregateFunction, Expression
from repro.algebra.predicates import Predicate


@dataclass(frozen=True)
class CorrelatedSubqueryFilter(Expression):
    """Filter the outer expression with a correlated scalar sub-query.

    Semantics: keep an outer row iff
    ``outer_column <op> aggregate(σ_correlation(invariant))`` where the
    correlation predicates compare invariant columns with the outer row's
    values.

    Parameters
    ----------
    outer:
        The outer query expression (a join block, typically).
    invariant:
        The correlation-independent part of the nested query.
    correlation:
        Predicates linking invariant columns to outer columns; evaluated per
        outer row.
    aggregate:
        The scalar aggregate computed over the matching invariant rows.
    outer_column:
        The outer column compared against the aggregate value.
    op:
        Comparison operator between ``outer_column`` and the aggregate.
    invariant_alias:
        Alias under which the invariant result's columns are referenced by the
        correlation predicates.
    """

    outer: Expression
    invariant: Expression
    correlation: Tuple[Predicate, ...]
    aggregate: AggregateFunction
    outer_column: ColumnRef
    op: str = "="
    invariant_alias: str = "inner"

    def children(self) -> Tuple[Expression, ...]:
        return (self.outer, self.invariant)

    def rename(self, mapping: Mapping[str, str]) -> "CorrelatedSubqueryFilter":
        renamed_corr = tuple(p.rename(mapping) for p in self.correlation)
        outer_col = self.outer_column
        if outer_col.relation in mapping:
            outer_col = outer_col.with_relation(mapping[outer_col.relation])
        return CorrelatedSubqueryFilter(
            self.outer.rename(mapping),
            self.invariant.rename(mapping),
            renamed_corr,
            self.aggregate,
            outer_col,
            self.op,
            self.invariant_alias,
        )

    def correlation_columns(self) -> Tuple[ColumnRef, ...]:
        """Invariant-side columns used by the correlation predicates."""
        columns = []
        for predicate in self.correlation:
            # ``columns()`` is a frozenset; sorted so the tuple (which feeds
            # operator keys) never depends on hash iteration order.
            for column in sorted(predicate.columns()):
                if column.relation == self.invariant_alias or not column.relation:
                    columns.append(column)
        return tuple(columns)

    def __str__(self) -> str:
        corr = " AND ".join(str(p) for p in self.correlation)
        return (
            f"σ[{self.outer_column} {self.op} {self.aggregate.func}(... where {corr})]"
            f"({self.outer})"
        )
