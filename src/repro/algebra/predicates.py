"""Predicates for selections and joins.

The predicate language is deliberately small — comparisons between columns and
constants (or columns and columns, for join predicates), conjunctions, and
disjunctions — but it is sufficient for the TPC-D-style workloads in the paper
and it supports the two operations the multi-query optimizer needs beyond
evaluation:

* **implication tests** between single-column predicates, which drive the
  subsumption derivations of Section 2.1 of the paper
  (``sigma_{A<5}(E)`` is derivable from ``sigma_{A<10}(E)``), and
* **canonical alias rewriting**, which drives unification of equivalence nodes
  across queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.algebra.columns import ColumnRef, Constant, Operand

_COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_NEGATION = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}

_FLIPPED = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class Predicate:
    """Abstract base class for all predicates."""

    def columns(self) -> FrozenSet[ColumnRef]:
        """Return every column referenced by the predicate."""
        raise NotImplementedError

    def relations(self) -> FrozenSet[str]:
        """Return the set of relation aliases referenced by the predicate.

        Cached on the instance: the DAG builder consults the alias set of
        every predicate once per query block it appears in, and all concrete
        predicate classes are immutable (frozen dataclasses).
        """
        cached = self.__dict__.get("_relations")
        if cached is None:
            cached = frozenset(c.relation for c in self.columns())
            object.__setattr__(self, "_relations", cached)  # repro-lint: ok(C002) idempotent memo of a pure derived value on a frozen instance
        return cached

    def rename(self, mapping: Mapping[str, str]) -> "Predicate":
        """Return a copy with relation aliases rewritten through *mapping*.

        Aliases absent from *mapping* are left unchanged.
        """
        raise NotImplementedError

    def evaluate(self, row: Mapping[ColumnRef, object]) -> bool:
        """Evaluate the predicate against a row binding columns to values."""
        raise NotImplementedError

    def conjuncts(self) -> Tuple["Predicate", ...]:
        """Return the top-level conjuncts of this predicate."""
        return (self,)

    def is_join_predicate(self) -> bool:
        """Return ``True`` if the predicate references more than one alias."""
        return len(self.relations()) > 1


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The always-true predicate (used for cross products and empty filters)."""

    def columns(self) -> FrozenSet[ColumnRef]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "TruePredicate":
        return self

    def evaluate(self, row: Mapping[ColumnRef, object]) -> bool:
        return True

    def conjuncts(self) -> Tuple[Predicate, ...]:
        return ()

    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True, order=True)
class Comparison(Predicate):
    """A comparison ``left op right`` between columns and/or constants."""

    left: Operand
    op: str
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unsupported comparison operator: {self.op!r}")

    def columns(self) -> FrozenSet[ColumnRef]:
        cols = []
        for operand in (self.left, self.right):
            if isinstance(operand, ColumnRef):
                cols.append(operand)
        return frozenset(cols)

    def rename(self, mapping: Mapping[str, str]) -> "Comparison":
        def rewrite(operand: Operand) -> Operand:
            if isinstance(operand, ColumnRef) and operand.relation in mapping:
                return operand.with_relation(mapping[operand.relation])
            return operand

        return Comparison(rewrite(self.left), self.op, rewrite(self.right))

    def evaluate(self, row: Mapping[ColumnRef, object]) -> bool:
        left = row[self.left] if isinstance(self.left, ColumnRef) else self.left.value
        right = row[self.right] if isinstance(self.right, ColumnRef) else self.right.value
        if left is None or right is None:
            return False
        return _COMPARATORS[self.op](left, right)

    def flipped(self) -> "Comparison":
        """Return the equivalent comparison with operands exchanged."""
        return Comparison(self.right, _FLIPPED[self.op], self.left)

    def negated(self) -> "Comparison":
        """Return the logical negation of this comparison."""
        return Comparison(self.left, _NEGATION[self.op], self.right)

    def is_column_constant(self) -> bool:
        """True for ``column op constant`` (after normalization)."""
        return isinstance(self.left, ColumnRef) and isinstance(self.right, Constant)

    def is_column_column(self) -> bool:
        """True for ``column op column`` (typically an equi-join predicate)."""
        return isinstance(self.left, ColumnRef) and isinstance(self.right, ColumnRef)

    def normalized(self) -> "Comparison":
        """Return an equivalent comparison with any constant on the right and
        column-column comparisons ordered lexicographically."""
        if isinstance(self.left, Constant) and isinstance(self.right, ColumnRef):
            return self.flipped()
        if (
            isinstance(self.left, ColumnRef)
            and isinstance(self.right, ColumnRef)
            and self.right < self.left
            and self.op in ("=", "!=")
        ):
            return self.flipped()
        return self

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Conjunction(Predicate):
    """A conjunction (AND) of predicates."""

    children: Tuple[Predicate, ...]

    def columns(self) -> FrozenSet[ColumnRef]:
        return frozenset().union(*(c.columns() for c in self.children)) if self.children else frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "Conjunction":
        return Conjunction(tuple(c.rename(mapping) for c in self.children))

    def evaluate(self, row: Mapping[ColumnRef, object]) -> bool:
        return all(c.evaluate(row) for c in self.children)

    def conjuncts(self) -> Tuple[Predicate, ...]:
        out = []
        for child in self.children:
            out.extend(child.conjuncts())
        return tuple(out)

    def __str__(self) -> str:
        return "(" + " AND ".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Disjunction(Predicate):
    """A disjunction (OR) of predicates.

    Disjunctions are also what the subsumption machinery introduces for shared
    access between equality selections (``sigma_{A=5 or A=10}(E)``).
    """

    children: Tuple[Predicate, ...]

    def columns(self) -> FrozenSet[ColumnRef]:
        return frozenset().union(*(c.columns() for c in self.children)) if self.children else frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "Disjunction":
        return Disjunction(tuple(c.rename(mapping) for c in self.children))

    def evaluate(self, row: Mapping[ColumnRef, object]) -> bool:
        return any(c.evaluate(row) for c in self.children)

    def __str__(self) -> str:
        return "(" + " OR ".join(str(c) for c in self.children) + ")"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def _operand(value) -> Operand:
    if isinstance(value, (ColumnRef, Constant)):
        return value
    return Constant(value)


def eq(left, right) -> Comparison:
    """``left = right``"""
    return Comparison(_operand(left), "=", _operand(right))


def ne(left, right) -> Comparison:
    """``left != right``"""
    return Comparison(_operand(left), "!=", _operand(right))


def lt(left, right) -> Comparison:
    """``left < right``"""
    return Comparison(_operand(left), "<", _operand(right))


def le(left, right) -> Comparison:
    """``left <= right``"""
    return Comparison(_operand(left), "<=", _operand(right))


def gt(left, right) -> Comparison:
    """``left > right``"""
    return Comparison(_operand(left), ">", _operand(right))


def ge(left, right) -> Comparison:
    """``left >= right``"""
    return Comparison(_operand(left), ">=", _operand(right))


def and_(*predicates: Predicate) -> Predicate:
    """Conjunction of the given predicates, flattening nested conjunctions."""
    flattened = []
    for predicate in predicates:
        if isinstance(predicate, TruePredicate):
            continue
        if isinstance(predicate, Conjunction):
            flattened.extend(predicate.children)
        else:
            flattened.append(predicate)
    if not flattened:
        return TruePredicate()
    if len(flattened) == 1:
        return flattened[0]
    return Conjunction(tuple(flattened))


def or_(*predicates: Predicate) -> Predicate:
    """Disjunction of the given predicates, flattening nested disjunctions."""
    flattened = []
    for predicate in predicates:
        if isinstance(predicate, Disjunction):
            flattened.extend(predicate.children)
        else:
            flattened.append(predicate)
    if not flattened:
        return TruePredicate()
    if len(flattened) == 1:
        return flattened[0]
    return Disjunction(tuple(flattened))


def conjuncts_of(predicate: Optional[Predicate]) -> Tuple[Predicate, ...]:
    """Return the conjuncts of *predicate* (empty tuple for ``None``/TRUE)."""
    if predicate is None:
        return ()
    return predicate.conjuncts()


# ---------------------------------------------------------------------------
# Implication — the engine behind subsumption derivations
# ---------------------------------------------------------------------------

def _single_column_range(predicate: Predicate) -> Optional[Tuple[ColumnRef, str, Constant]]:
    """Decompose ``column op constant``; return ``None`` for anything else."""
    if isinstance(predicate, Comparison):
        normalized = predicate.normalized()
        if normalized.is_column_constant():
            return normalized.left, normalized.op, normalized.right
    return None


def _comparison_implies(p: Comparison, q: Comparison) -> bool:
    """Implication between two single-column comparisons on the same column."""
    dp = _single_column_range(p)
    dq = _single_column_range(q)
    if dp is None or dq is None:
        return False
    (pc, pop, pv), (qc, qop, qv) = dp, dq
    if pc != qc:
        return False
    pval, qval = pv.value, qv.value
    try:
        if pop == "=":
            return _COMPARATORS[qop](pval, qval)
        if pop in ("<", "<="):
            if qop == "<":
                return pval < qval or (pval == qval and pop == "<")
            if qop == "<=":
                return pval <= qval
            if qop == "!=":
                return pval <= qval if pop == "<" else pval < qval
            return False
        if pop in (">", ">="):
            if qop == ">":
                return pval > qval or (pval == qval and pop == ">")
            if qop == ">=":
                return pval >= qval
            if qop == "!=":
                return pval >= qval if pop == ">" else pval > qval
            return False
        if pop == "!=":
            return qop == "!=" and pval == qval
    except TypeError:
        return False
    return False


def implies(p: Predicate, q: Predicate) -> bool:
    """Return ``True`` if predicate *p* provably implies predicate *q*.

    The test is sound but deliberately incomplete: it covers the cases needed
    by the subsumption machinery of the paper — conjunctions of single-column
    comparisons against constants, plus syntactic equality and disjunction
    membership.  When in doubt it returns ``False``, which only means a
    subsumption derivation is not added.
    """
    if p == q:
        return True
    if isinstance(q, TruePredicate):
        return True
    if isinstance(p, TruePredicate):
        return False
    if isinstance(q, Conjunction):
        return all(implies(p, qc) for qc in q.children)
    if isinstance(p, Conjunction):
        return any(implies(pc, q) for pc in p.children)
    if isinstance(q, Disjunction):
        return any(implies(p, qc) for qc in q.children)
    if isinstance(p, Disjunction):
        return all(implies(pc, q) for pc in p.children)
    if isinstance(p, Comparison) and isinstance(q, Comparison):
        return _comparison_implies(p, q)
    return False


def predicate_columns(predicates: Iterable[Predicate]) -> FrozenSet[ColumnRef]:
    """Union of columns referenced by a collection of predicates."""
    cols: FrozenSet[ColumnRef] = frozenset()
    for predicate in predicates:
        cols = cols | predicate.columns()
    return cols
