"""Project-specific static analysis: determinism & cache-safety linting.

This package is the mechanical lock-down of the repository's differential
testing discipline: the bug classes the byte-identical oracles caught at
test time (hash-order float folds, ``and_(*frozenset)`` argument ordering,
identity-keyed cache entries) are rejected at review time instead.  Run it
with ``python -m repro.analysis src tests benchmarks``; the rule catalogue,
the suppression policy, and the history behind each rule live in
``docs/DETERMINISM.md``.

The package depends only on the standard library (``ast``, ``tokenize``,
``tomllib`` when available) so it runs in every CI leg.
"""

from repro.analysis.config import LintConfig, load_config
from repro.analysis.engine import discover_files, lint_paths, lint_source
from repro.analysis.rules import RULES, Finding, check_module

__all__ = [
    "Finding",
    "LintConfig",
    "RULES",
    "check_module",
    "discover_files",
    "lint_paths",
    "lint_source",
    "load_config",
]
