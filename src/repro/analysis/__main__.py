"""Command-line entry point: ``python -m repro.analysis src tests benchmarks``.

Exit status: 0 when the tree is clean, 1 when findings are reported, 2 on
usage errors.  ``--format json`` emits a machine-readable report; CI consumes
the default text format, which names rule + file:line per finding.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis.config import LintConfig, load_config
from repro.analysis.engine import lint_paths
from repro.analysis.rules import RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & cache-safety linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        default=None,
        help="explicit pyproject.toml to read [tool.repro-lint] from",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its description and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return 0

    try:
        config: LintConfig = load_config(args.config, start=args.paths[0] if args.paths else ".")
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    try:
        findings, checked = lint_paths(args.paths, config)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.format == "json":
        report = {
            "files_checked": checked,
            "findings": [
                {
                    "path": finding.path,
                    "line": finding.line,
                    "col": finding.col + 1,
                    "rule": finding.rule,
                    "message": finding.message,
                }
                for finding in findings
            ],
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
        summary = f"{len(findings)} finding(s) in {checked} file(s)"
        print(summary if findings else f"clean: {summary}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
