"""Configuration for the determinism & cache-safety linter.

Defaults are tuned to this repository's actual bug history (see
``docs/DETERMINISM.md``); projects can override them from the
``[tool.repro-lint]`` table of ``pyproject.toml``::

    [tool.repro-lint]
    exclude = ["*/analysis_fixtures/*"]
    set_returning = ["relations", "columns"]
    frozen_attributes = ["columns"]

    [tool.repro-lint.registries]
    SessionCache = "_catalog_dependent_caches"

``tomllib`` ships with Python 3.11+; on older interpreters the built-in
defaults are used unchanged (the defaults and the checked-in pyproject table
are kept identical, so lint results do not depend on the interpreter).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, Mapping, Optional, Tuple

try:  # Python 3.11+
    import tomllib as _tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised only on 3.10 legs
    _tomllib = None  # type: ignore[assignment]

#: Method/function names whose *calls* are treated as returning an unordered
#: (hash-ordered) iterable, in addition to ``set()``/``frozenset()``
#: constructors and set-operator methods.  ``relations``/``columns`` are the
#: ``FrozenSet``-returning accessors of :mod:`repro.algebra.predicates` that
#: fed both historical hash-order bugs.
DEFAULT_SET_RETURNING: FrozenSet[str] = frozenset({"relations", "columns"})

#: Callables through which consuming a set in arbitrary order is harmless
#: (order-insensitive constructors/combinators); ``f(*some_set)`` is only
#: flagged when ``f`` is not one of these.
DEFAULT_ORDER_INSENSITIVE_CALLS: FrozenSet[str] = frozenset(
    {
        "set",
        "frozenset",
        "dict",
        "union",
        "intersection",
        "difference",
        "symmetric_difference",
        "update",
        "intersection_update",
        "difference_update",
        "symmetric_difference_update",
        "isdisjoint",
        "issubset",
        "issuperset",
        "print",  # diagnostics, not key/plan construction
    }
)

#: Attribute names documenting frozen / copy-on-write mapping state; writes
#: through them (``x.columns[k] = v``, ``x.columns.update(...)``) are C002.
DEFAULT_FROZEN_ATTRIBUTES: FrozenSet[str] = frozenset({"columns"})

#: Constructor names whose call results count as cache tables for rule M001,
#: in addition to dict/set literals and comprehensions.  ``BoundedCache`` is
#: this repo's LRU-bounded cache family
#: (:class:`repro.service.session.BoundedCache`); projects with their own
#: cache classes add them here so M001 keeps tracking registry coverage.
DEFAULT_CACHE_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {
        "dict",
        "set",
        "frozenset",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "WeakValueDictionary",
        "WeakKeyDictionary",
        "BoundedCache",
    }
)

#: Cache-owning classes mapped to the method that declares their
#: invalidation story.  Every dict/set-valued ``self.*`` attribute created in
#: the class ``__init__`` must be referenced by that method (or carry a
#: justified suppression) — rule M001.
DEFAULT_REGISTRIES: Mapping[str, str] = {
    "SessionCache": "_catalog_dependent_caches",
    "DagBuilder": "build",
    "OptimizerSession": "_sync",
    "DagArena": "__setstate__",
    "ResultCache": "clear",
}

#: Path fragments excluded from linting (fnmatch patterns over ``/``-joined
#: relative paths).  The fixture corpus is deliberately full of violations.
DEFAULT_EXCLUDE: Tuple[str, ...] = ("*/analysis_fixtures/*",)


@dataclass(frozen=True)
class LintConfig:
    """Resolved linter configuration."""

    exclude: Tuple[str, ...] = DEFAULT_EXCLUDE
    set_returning: FrozenSet[str] = DEFAULT_SET_RETURNING
    order_insensitive_calls: FrozenSet[str] = DEFAULT_ORDER_INSENSITIVE_CALLS
    frozen_attributes: FrozenSet[str] = DEFAULT_FROZEN_ATTRIBUTES
    cache_constructors: FrozenSet[str] = DEFAULT_CACHE_CONSTRUCTORS
    registries: Mapping[str, str] = field(default_factory=lambda: dict(DEFAULT_REGISTRIES))


def _coerce_str_tuple(value: Any, key: str) -> Tuple[str, ...]:
    if not isinstance(value, list) or not all(isinstance(item, str) for item in value):
        raise ValueError(f"[tool.repro-lint] {key} must be a list of strings")
    return tuple(value)


def config_from_mapping(data: Mapping[str, Any]) -> LintConfig:
    """Build a :class:`LintConfig` from a ``[tool.repro-lint]`` table."""
    config = LintConfig()
    if "exclude" in data:
        config = replace(config, exclude=_coerce_str_tuple(data["exclude"], "exclude"))
    if "set_returning" in data:
        config = replace(
            config, set_returning=frozenset(_coerce_str_tuple(data["set_returning"], "set_returning"))
        )
    if "order_insensitive_calls" in data:
        config = replace(
            config,
            order_insensitive_calls=frozenset(
                _coerce_str_tuple(data["order_insensitive_calls"], "order_insensitive_calls")
            ),
        )
    if "frozen_attributes" in data:
        config = replace(
            config,
            frozen_attributes=frozenset(
                _coerce_str_tuple(data["frozen_attributes"], "frozen_attributes")
            ),
        )
    if "cache_constructors" in data:
        config = replace(
            config,
            cache_constructors=frozenset(
                _coerce_str_tuple(data["cache_constructors"], "cache_constructors")
            ),
        )
    if "registries" in data:
        registries = data["registries"]
        if not isinstance(registries, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in registries.items()
        ):
            raise ValueError("[tool.repro-lint] registries must map class names to method names")
        config = replace(config, registries=dict(registries))
    return config


def find_pyproject(start: str) -> Optional[str]:
    """Walk upwards from *start* looking for a ``pyproject.toml``."""
    directory = os.path.abspath(start)
    if os.path.isfile(directory):
        directory = os.path.dirname(directory)
    while True:
        candidate = os.path.join(directory, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(directory)
        if parent == directory:
            return None
        directory = parent


def load_config(pyproject_path: Optional[str] = None, start: str = ".") -> LintConfig:
    """Load the configuration from ``pyproject.toml`` (defaults if absent).

    On interpreters without :mod:`tomllib` the defaults are returned; the
    checked-in ``[tool.repro-lint]`` table mirrors them exactly, so results
    are interpreter-independent.
    """
    if pyproject_path is None:
        pyproject_path = find_pyproject(start)
    if pyproject_path is None or _tomllib is None:
        return LintConfig()
    with open(pyproject_path, "rb") as handle:
        document: Dict[str, Any] = _tomllib.load(handle)
    table = document.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        raise ValueError("[tool.repro-lint] must be a table")
    return config_from_mapping(table)
