"""Linter driver: file discovery, suppression matching, reporting.

The pipeline per file is: parse → run the AST rules → collect the
``# repro-lint: ok(...)`` suppressions → match findings to suppressions →
emit the survivors plus the suppression meta-findings (S001 bare, S002
unknown rule, S003 unused).  A suppression only silences a finding when it is
well-formed, names a known rule, and carries a justification — a malformed
suppression never widens what passes.
"""

from __future__ import annotations

import ast
import fnmatch
import os
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.config import LintConfig
from repro.analysis.rules import RULES, Finding, check_module
from repro.analysis.suppressions import Suppression, collect_suppressions


def _suppression_findings(suppressions: Sequence[Suppression], path: str) -> List[Finding]:
    findings: List[Finding] = []
    for suppression in suppressions:
        if not suppression.well_formed:
            findings.append(
                Finding(
                    "S001",
                    "malformed suppression: expected '# repro-lint: ok(RULE) reason'",
                    suppression.line,
                    suppression.col,
                    path,
                )
            )
            continue
        if not suppression.reason:
            findings.append(
                Finding(
                    "S001",
                    "bare suppression: ok("
                    + ", ".join(suppression.rules)
                    + ") requires a justification after the closing parenthesis",
                    suppression.line,
                    suppression.col,
                    path,
                )
            )
        for rule in suppression.rules:
            if rule not in RULES:
                findings.append(
                    Finding(
                        "S002",
                        f"suppression names unknown rule {rule!r}",
                        suppression.line,
                        suppression.col,
                        path,
                    )
                )
    return findings


def _suppression_active(suppression: Suppression) -> bool:
    """Only a well-formed, justified suppression of known rules silences."""
    return (
        suppression.well_formed
        and bool(suppression.reason)
        and bool(suppression.rules)
        and all(rule in RULES for rule in suppression.rules)
    )


def lint_source(source: str, path: str, config: LintConfig) -> List[Finding]:
    """Lint one file's contents; returns the reportable findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding("E999", f"syntax error: {error.msg}", error.lineno or 1, 0, path)]

    raw = check_module(tree, config)
    suppressions = collect_suppressions(source)
    findings = _suppression_findings(suppressions, path)

    # A suppression covers its own line and the line below it (so a standalone
    # comment line can precede a multi-line statement it silences).
    by_line: Dict[Tuple[int, str], List[Suppression]] = {}
    for suppression in suppressions:
        if not _suppression_active(suppression):
            continue
        for rule in suppression.rules:
            by_line.setdefault((suppression.line, rule), []).append(suppression)
            by_line.setdefault((suppression.line + 1, rule), []).append(suppression)

    seen: set = set()
    for finding in raw:
        key = (finding.rule, finding.line, finding.col, finding.message)
        if key in seen:
            continue
        seen.add(key)
        matches = by_line.get((finding.line, finding.rule))
        if matches:
            for suppression in matches:
                suppression.used_rules.add(finding.rule)
            continue
        findings.append(
            Finding(finding.rule, finding.message, finding.line, finding.col, path)
        )

    for suppression in suppressions:
        if not _suppression_active(suppression):
            continue
        unused = [rule for rule in suppression.rules if rule not in suppression.used_rules]
        for rule in unused:
            findings.append(
                Finding(
                    "S003",
                    f"unused suppression: no {rule} finding on this or the next line",
                    suppression.line,
                    suppression.col,
                    path,
                )
            )
    return findings


def _excluded(relative: str, config: LintConfig) -> bool:
    posix = relative.replace(os.sep, "/")
    return any(
        fnmatch.fnmatch(posix, pattern) or fnmatch.fnmatch("/" + posix, pattern)
        for pattern in config.exclude
    )


def discover_files(paths: Iterable[str], config: LintConfig) -> List[str]:
    """Expand path arguments into a sorted, exclusion-filtered file list."""
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if not _excluded(path, config):
                files.append(path)
            continue
        for root, dirs, names in os.walk(path):
            dirs.sort()
            for name in sorted(names):
                if not name.endswith(".py"):
                    continue
                candidate = os.path.join(root, name)
                if not _excluded(candidate, config):
                    files.append(candidate)
    return sorted(dict.fromkeys(files))


def lint_paths(paths: Iterable[str], config: LintConfig) -> Tuple[List[Finding], int]:
    """Lint every python file under *paths*; returns (findings, files checked)."""
    files = discover_files(paths, config)
    findings: List[Finding] = []
    for path in files:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(lint_source(source, path, config))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return findings, len(files)
