"""AST rules distilled from this repository's actual bug history.

Determinism rules (the PR 2 / PR 4 class — hash-order leaking into floats,
keys, or plan structure):

* **D001** — an unordered iterable (``set``/``frozenset`` literal, value, or
  a call known to return one) is materialized in iteration order: ``tuple()``
  / ``list()`` / a list comprehension, a ``min``/``max`` tie-break with a
  ``key=``, ``str.join``, star-unpacking into an order-sensitive callable, or
  a loop that ``.append``\\ s per element — all without ``sorted(...)``.
* **D002** — an order-sensitive float fold over an unordered source:
  ``sum``/``math.prod`` over a set (directly or through a comprehension), or
  a loop over one whose body ``+=``/``*=``-accumulates the element.

Cache-safety rules (the PR 5 class — cache keys whose identity/equality
semantics do not match their invalidation story):

* **C001** — an ``id(...)``-derived cache key without a companion strong
  reference in the same function (``refs.append(obj)`` or equivalent), the
  GC id-reuse hazard.
* **C002** — mutation of documented frozen / copy-on-write structures:
  ``object.__setattr__`` escapes outside ``__init__``-like methods, and
  writes through attributes declared frozen (``x.columns[k] = v``).
* **M001** — memo-table registry coherence: every dict/set-valued ``self.*``
  attribute created in the ``__init__`` of a registered cache-owning class
  must be referenced by that class's declared invalidation registry method.

Inference is deliberately conservative: only *provably* unordered sources are
flagged (literals, constructors, set-operator methods, set-annotated names and
parameters, and calls to functions whose return annotation is set-like),
so an unannotated value of unknown type never fires a rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.config import LintConfig

#: Every rule id with its one-line description (``--list-rules``).
RULES: Dict[str, str] = {
    "D001": "unordered iterable materialized in hash order without sorted(...)",
    "D002": "order-sensitive float fold (sum/prod/+=/*=) over an unordered source",
    "C001": "id()-derived cache key without a companion strong reference",
    "C002": "mutation of a documented frozen/copy-on-write structure",
    "M001": "cache attribute missing from the declared invalidation registry",
    "S001": "bare suppression: ok(RULE) requires a justification",
    "S002": "suppression names an unknown rule id",
    "S003": "unused suppression (matches no finding)",
    "E999": "file could not be parsed",
}


@dataclass(frozen=True)
class Finding:
    """One lint finding, position in a specific file."""

    rule: str
    message: str
    line: int
    col: int
    path: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


# ---------------------------------------------------------------------------
# Set-typedness inference
# ---------------------------------------------------------------------------

_SETISH_HEADS = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"})
_UNION_HEADS = frozenset({"Optional", "Union"})
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_OPERATOR_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
_ORDERED_CALLS = frozenset({"sorted", "list", "tuple", "enumerate", "zip", "range"})
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__", "__setattr__"})
_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _annotation_is_setish(node: Optional[ast.expr]) -> bool:
    """True iff the annotation names a set-like type at its head."""
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in _SETISH_HEADS
    if isinstance(node, ast.Attribute):
        return node.attr in _SETISH_HEADS
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = (
            head.id
            if isinstance(head, ast.Name)
            else head.attr
            if isinstance(head, ast.Attribute)
            else None
        )
        if head_name in _UNION_HEADS:
            elements = (
                list(node.slice.elts) if isinstance(node.slice, ast.Tuple) else [node.slice]
            )
            return any(_annotation_is_setish(element) for element in elements)
        return _annotation_is_setish(head)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):  # X | None
        return _annotation_is_setish(node.left) or _annotation_is_setish(node.right)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _annotation_is_setish(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return False
    return False


class ModuleIndex:
    """Module-wide facts shared by every function check.

    Currently: the names of locally defined functions/methods whose return
    annotation is set-like, merged with the configured ``set_returning``
    names — calls to any of them are treated as unordered sources.  The
    lookup is by simple name (``self._foo()`` matches a method ``_foo``
    defined anywhere in the module), a deliberate over-approximation that
    keeps the inference resolution-free.
    """

    def __init__(self, tree: ast.Module, config: LintConfig) -> None:
        names: Set[str] = set(config.set_returning)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _annotation_is_setish(node.returns):
                    names.add(node.name)
        self.setish_callables: Set[str] = names


@dataclass
class _Scope:
    """Names bound to provably unordered / provably ordered values."""

    unordered: Set[str] = field(default_factory=set)
    ordered: Set[str] = field(default_factory=set)

    def is_unordered(self, name: str) -> bool:
        return name in self.unordered and name not in self.ordered


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _expr_unordered(node: ast.expr, scope: _Scope, index: ModuleIndex) -> bool:
    """True iff *node* provably evaluates to a hash-ordered iterable."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in _SET_CONSTRUCTORS:
            return True
        if isinstance(node.func, ast.Attribute) and name in _SET_OPERATOR_METHODS:
            return True
        if name is not None and name in index.setish_callables:
            return True
        return False
    if isinstance(node, ast.Name):
        return scope.is_unordered(node.id)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return _expr_unordered(node.left, scope, index) or _expr_unordered(
            node.right, scope, index
        )
    if isinstance(node, ast.BoolOp):  # e.g. ``materialized or set()``
        return any(_expr_unordered(value, scope, index) for value in node.values)
    if isinstance(node, ast.IfExp):
        return _expr_unordered(node.body, scope, index) or _expr_unordered(
            node.orelse, scope, index
        )
    return False


def _expr_ordered(node: ast.expr) -> bool:
    """True iff *node* is clearly an ordered container (used to un-taint names)."""
    if isinstance(node, (ast.List, ast.Tuple, ast.ListComp)):
        return True
    if isinstance(node, ast.Call):
        return _call_name(node) in _ORDERED_CALLS
    return False


def _body_statements(fn: Union[_FunctionNode, ast.Module]) -> Iterator[ast.stmt]:
    """All statements of *fn*, without descending into nested functions."""
    stack: List[ast.stmt] = list(reversed(fn.body))
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            # Statements nested inside e.g. ``if``/``for`` arrive via the
            # bodies, which are stmt lists handled by iter_child_nodes.


def _collect_scope(fn: Union[_FunctionNode, ast.Module], index: ModuleIndex) -> _Scope:
    """Flow-insensitive binding pass: which names hold unordered values?

    A name counts as unordered only if some binding makes it provably
    unordered and *no* binding makes it provably ordered — reuse of one name
    for both shapes drops it from the analysis instead of guessing.
    """
    scope = _Scope()
    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = fn.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if _annotation_is_setish(arg.annotation):
                scope.unordered.add(arg.arg)
    for stmt in _body_statements(fn):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
            if isinstance(target, ast.Name) and _annotation_is_setish(stmt.annotation):
                scope.unordered.add(target.id)
        if not isinstance(target, ast.Name) or value is None:
            continue
        if _expr_unordered(value, scope, index):
            scope.unordered.add(target.id)
        elif _expr_ordered(value):
            scope.ordered.add(target.id)
    return scope


# ---------------------------------------------------------------------------
# D001 / D002 / C001 / C002: per-function consumption checks
# ---------------------------------------------------------------------------

def _loop_target_names(target: ast.expr) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _comprehension_over_unordered(
    node: ast.expr, scope: _Scope, index: ModuleIndex
) -> bool:
    """True iff *node* is a comprehension iterating an unordered source."""
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
        return any(
            _expr_unordered(generator.iter, scope, index) for generator in node.generators
        )
    return False


class _FunctionChecker(ast.NodeVisitor):
    """Runs D001/D002/C001/C002 over one function body (or the module level).

    Nested functions are skipped — each gets its own checker with its own
    scope — and comprehension arguments already handled at a call site are
    marked *sanitized* so they are not reported twice.
    """

    def __init__(
        self,
        fn: Union[_FunctionNode, ast.Module],
        scope: _Scope,
        index: ModuleIndex,
        config: LintConfig,
    ) -> None:
        self.fn = fn
        self.scope = scope
        self.index = index
        self.config = config
        self.findings: List[Finding] = []
        self._sanitized: Set[int] = set()
        self._id_key_findings: List[Tuple[Finding, Optional[str]]] = []
        self.fn_name = fn.name if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)) else None

    # -- plumbing ---------------------------------------------------------
    def run(self) -> List[Finding]:
        for stmt in self.fn.body:
            self.visit(stmt)
        self._resolve_id_keys()
        return self.findings

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # checked separately with its own scope

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(rule, message, getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        )

    def _unordered(self, node: ast.expr) -> bool:
        return _expr_unordered(node, self.scope, self.index)

    def _unordered_or_comp(self, node: ast.expr) -> bool:
        """Unordered directly, or a comprehension over an unordered source."""
        if self._unordered(node):
            return True
        if _comprehension_over_unordered(node, self.scope, self.index):
            self._sanitized.add(id(node))  # repro-lint: ok(C001) the tree pins every AST node for the checker's lifetime
            return True
        return False

    # -- calls: tuple/list/min/max/sum/prod/join/star-unpack/id -----------
    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name == "sorted" and node.args:
            # sorted(...) is the canonical fix: its argument (including a
            # comprehension over a set) is sanitized, not reported.
            self._sanitized.add(id(node.args[0]))  # repro-lint: ok(C001) the tree pins every AST node for the checker's lifetime
        elif name in ("tuple", "list") and len(node.args) == 1:
            if self._unordered_or_comp(node.args[0]):
                self._report(
                    "D001",
                    node,
                    f"{name}() materializes an unordered iterable in hash order; "
                    "wrap the source in sorted(...)",
                )
        elif name in ("min", "max"):
            has_key = any(keyword.arg == "key" for keyword in node.keywords)
            if has_key and any(self._unordered_or_comp(arg) for arg in node.args):
                self._report(
                    "D001",
                    node,
                    f"{name}(..., key=...) over an unordered iterable breaks ties in "
                    "hash order; iterate sorted(...) instead",
                )
        elif name in ("sum", "prod", "fsum"):
            if node.args and self._unordered_or_comp(node.args[0]):
                self._report(
                    "D002",
                    node,
                    f"{name}() over an unordered iterable is a float fold in hash "
                    "order; fold over sorted(...)",
                )
        elif name == "join" and isinstance(node.func, ast.Attribute) and len(node.args) == 1:
            if self._unordered_or_comp(node.args[0]):
                self._report(
                    "D001",
                    node,
                    "str.join over an unordered iterable builds a hash-ordered key; "
                    "join sorted(...)",
                )
        elif name == "id" and len(node.args) == 1:
            finding = Finding(
                "C001",
                "id()-derived key: object identity can be reused after GC; keep a "
                "companion strong reference or key on an epoch",
                node.lineno,
                node.col_offset,
            )
            arg = node.args[0]
            arg_token = ast.dump(arg) if isinstance(arg, (ast.Name, ast.Attribute)) else None
            self._id_key_findings.append((finding, arg_token))
        # Star-unpacking a set positionally fixes an arbitrary argument order.
        for arg in node.args:
            if isinstance(arg, ast.Starred) and self._unordered(arg.value):
                if name not in self.config.order_insensitive_calls:
                    self._report(
                        "D001",
                        node,
                        f"*-unpacking an unordered iterable into {name or 'a call'}() "
                        "fixes an arbitrary argument order; unpack sorted(...)",
                    )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "__setattr__"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "object"
        ):
            if self.fn_name not in _INIT_METHODS:
                self._report(
                    "C002",
                    node,
                    "object.__setattr__ escape outside __init__/__post_init__ mutates "
                    "a frozen structure",
                )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("update", "setdefault", "pop", "popitem", "clear")
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr in self.config.frozen_attributes
        ):
            self._report(
                "C002",
                node,
                f".{node.func.value.attr} is documented frozen/copy-on-write; "
                f"mutating it with .{node.func.attr}(...) leaks into shared state",
            )
        self.generic_visit(node)

    # -- comprehensions ----------------------------------------------------
    def visit_ListComp(self, node: ast.ListComp) -> None:
        # repro-lint: ok(C001) the tree pins every AST node for the checker's lifetime
        if id(node) not in self._sanitized and _comprehension_over_unordered(
            node, self.scope, self.index
        ):
            self._report(
                "D001",
                node,
                "list comprehension over an unordered iterable materializes hash "
                "order; iterate sorted(...)",
            )
        self.generic_visit(node)

    # -- loops: float folds and per-element appends -------------------------
    def visit_For(self, node: ast.For) -> None:
        if self._unordered(node.iter):
            targets = _loop_target_names(node.target)
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.AugAssign)
                        and isinstance(sub.op, (ast.Add, ast.Mult))
                        and any(
                            isinstance(ref, ast.Name) and ref.id in targets
                            for ref in ast.walk(sub.value)
                        )
                    ):
                        self._report(
                            "D002",
                            sub,
                            "accumulating +=/*= over a set iterates in hash order; "
                            "iterate sorted(...)",
                        )
                    elif (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "append"
                    ):
                        self._report(
                            "D001",
                            node,
                            "loop over an unordered iterable appends per element, "
                            "materializing hash order; iterate sorted(...)",
                        )
        self.generic_visit(node)

    # -- frozen-attribute subscript stores ----------------------------------
    def _check_store_target(self, target: ast.expr) -> None:
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and target.value.attr in self.config.frozen_attributes
        ):
            self._report(
                "C002",
                target,
                f"subscript write into .{target.value.attr}, a documented "
                "frozen/copy-on-write mapping",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    # -- C001 companion resolution ------------------------------------------
    def _resolve_id_keys(self) -> None:
        """Keep only the id() findings lacking a same-function strong reference."""
        if not self._id_key_findings:
            return
        companions: Set[str] = set()
        for stmt in _body_statements(self.fn):
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("append", "add")
                    and len(sub.args) == 1
                    and isinstance(sub.args[0], (ast.Name, ast.Attribute))
                ):
                    companions.add(ast.dump(sub.args[0]))
                elif (
                    isinstance(sub, ast.Assign)
                    and isinstance(sub.value, (ast.Name, ast.Attribute))
                    and any(isinstance(t, ast.Subscript) for t in sub.targets)
                ):
                    companions.add(ast.dump(sub.value))
        for finding, arg_token in self._id_key_findings:
            if arg_token is not None and arg_token in companions:
                continue
            self.findings.append(finding)


# ---------------------------------------------------------------------------
# M001: memo-table registry coherence
# ---------------------------------------------------------------------------

def _is_cache_value(node: Optional[ast.expr], constructors: FrozenSet[str]) -> bool:
    """Dict/set-shaped initializer: the memo-table signature M001 tracks.

    *constructors* comes from :attr:`LintConfig.cache_constructors`, so
    project-specific cache classes (``BoundedCache`` here) stay tracked.
    """
    if node is None:
        return False
    if isinstance(node, (ast.Dict, ast.Set, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _call_name(node) in constructors
    if isinstance(node, ast.IfExp):
        return _is_cache_value(node.body, constructors) or _is_cache_value(
            node.orelse, constructors
        )
    return False


def _self_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def check_registries(tree: ast.Module, config: LintConfig) -> List[Finding]:
    """M001 over every registered cache-owning class defined in *tree*."""
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or node.name not in config.registries:
            continue
        registry_name = config.registries[node.name]
        init: Optional[_FunctionNode] = None
        registry: Optional[_FunctionNode] = None
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if item.name == "__init__":
                    init = item
                elif item.name == registry_name:
                    registry = item
        if init is None:
            continue
        if registry is None:
            findings.append(
                Finding(
                    "M001",
                    f"class {node.name} is a registered cache owner but has no "
                    f"invalidation registry method {registry_name}()",
                    node.lineno,
                    node.col_offset,
                )
            )
            continue
        mentioned: Set[str] = set()
        for sub in ast.walk(registry):
            attr = _self_attr(sub) if isinstance(sub, ast.Attribute) else None
            if attr is not None:
                mentioned.add(attr)
        for stmt in _body_statements(init):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if target is None or not _is_cache_value(value, config.cache_constructors):
                continue
            attr = _self_attr(target)
            if attr is not None and attr not in mentioned:
                findings.append(
                    Finding(
                        "M001",
                        f"cache attribute self.{attr} of {node.name} is not referenced "
                        f"by its invalidation registry {registry_name}()",
                        stmt.lineno,
                        stmt.col_offset,
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Entry point: all rules over one parsed module
# ---------------------------------------------------------------------------

def check_module(tree: ast.Module, config: LintConfig) -> List[Finding]:
    """Run every rule over *tree* and return the raw (unsuppressed) findings."""
    index = ModuleIndex(tree, config)
    findings: List[Finding] = []

    # Module- and class-level statements (the checker skips function bodies;
    # visiting a ClassDef covers its non-method statements with module scope).
    module_scope = _collect_scope(tree, index)
    findings.extend(_FunctionChecker(tree, module_scope, index, config).run())

    # Every function, with its own scope (methods and nested functions alike).
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope = _collect_scope(node, index)
            findings.extend(_FunctionChecker(node, scope, index, config).run())

    findings.extend(check_registries(tree, config))
    return findings
