"""Per-line justified suppressions.

A finding is silenced by a comment on the same physical line as the finding
(or on the line directly above, for multi-line statements)::

    selectivity = 1.0
    for predicate in predicates:  # repro-lint: ok(D002) integer counters only
        ...

The grammar is ``# repro-lint: ok(RULE[, RULE...]) <justification>``.  The
justification is mandatory: a bare ``ok(D001)`` is itself an error (S001), as
is an unknown rule id (S002) or a suppression that matches no finding (S003).
That policy keeps every silenced site carrying its own review trail and makes
stale suppressions impossible to accumulate; see ``docs/DETERMINISM.md``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import List, Set, Tuple

#: Matches the whole suppression comment; group 1 = rule list, group 2 = reason.
_SUPPRESSION_RE = re.compile(r"#\s*repro-lint:\s*ok\(([^)]*)\)\s*(.*?)\s*$")

#: Loose marker used to reject malformed variants (wrong verb, missing parens).
_MARKER_RE = re.compile(r"#\s*repro-lint:")


@dataclass
class Suppression:
    """One parsed ``# repro-lint: ok(...)`` comment."""

    line: int
    col: int
    rules: Tuple[str, ...]
    reason: str
    #: True iff the comment was syntactically well-formed (``ok(...)``).
    well_formed: bool = True
    #: Filled during matching: the rule ids this suppression actually silenced.
    used_rules: Set[str] = field(default_factory=set)


def collect_suppressions(source: str) -> List[Suppression]:
    """Extract every suppression comment from *source*, in line order.

    Tokenization errors are swallowed (the parser reports the syntax error
    through its own channel); comments seen before the error still count.
    """
    suppressions: List[Suppression] = []
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type != tokenize.COMMENT:
                continue
            comment = token.string
            if not _MARKER_RE.search(comment):
                continue
            match = _SUPPRESSION_RE.search(comment)
            line, col = token.start
            if match is None:
                suppressions.append(Suppression(line, col, (), "", well_formed=False))
                continue
            rules = tuple(
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            )
            suppressions.append(Suppression(line, col, rules, match.group(2)))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return suppressions
