"""Public façade of the multi-query optimization library.

Typical usage::

    from repro import MQOptimizer, Query, Algorithm
    from repro.catalog import tpcd_catalog
    from repro.workloads import tpcd_queries

    catalog = tpcd_catalog(scale=1.0)
    optimizer = MQOptimizer(catalog)
    batch = [tpcd_queries.q11(), tpcd_queries.q15()]
    result = optimizer.optimize(batch, Algorithm.GREEDY)
    print(result.summary())
    print(result.plan.explain())
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Optional, Sequence, Union

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.dag.builder import DagBuilder, Query
from repro.dag.nodes import Dag
from repro.optimizer import (
    GreedyOptions,
    OptimizationResult,
    optimize_exhaustive,
    optimize_greedy,
    optimize_volcano,
    optimize_volcano_ru,
    optimize_volcano_sh,
)


class Algorithm(enum.Enum):
    """The optimization algorithms evaluated in the paper."""

    VOLCANO = "volcano"
    VOLCANO_SH = "volcano-sh"
    VOLCANO_RU = "volcano-ru"
    GREEDY = "greedy"
    EXHAUSTIVE = "exhaustive"

    @classmethod
    def parse(cls, value: Union[str, "Algorithm"]) -> "Algorithm":
        if isinstance(value, cls):
            return value
        normalized = value.strip().lower().replace("_", "-")
        for member in cls:
            if member.value == normalized:
                return member
        raise ValueError(f"unknown algorithm: {value!r}")


#: The algorithms compared in every figure of the paper, in presentation order.
PAPER_ALGORITHMS = (
    Algorithm.VOLCANO,
    Algorithm.VOLCANO_SH,
    Algorithm.VOLCANO_RU,
    Algorithm.GREEDY,
)


class MQOptimizer:
    """Multi-query optimizer over a catalog.

    The optimizer owns DAG construction (including subsumption derivations)
    and dispatches to the requested search algorithm.  A flag can disable the
    multi-query machinery entirely, reducing to plain Volcano, as suggested in
    Section 6.4 for workloads known to have no overlap.
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        enable_subsumption: bool = True,
        enable_mqo: bool = True,
    ) -> None:
        self.catalog = catalog
        self.cost_model = cost_model
        self.enable_subsumption = enable_subsumption
        self.enable_mqo = enable_mqo

    # -- DAG construction ------------------------------------------------------
    def build_dag(self, queries: Sequence[Query], memoize: bool = True) -> Dag:
        """Build the combined AND-OR DAG for *queries*.

        ``memoize=False`` disables the builder-level memo tables (join-op
        memo, partition-enumeration skipping, weak-join memo, per-node
        caches), restoring the pre-memo control flow as the oracle for the
        builder differential suite; value-level caches in the estimation and
        cost layers are shared by both paths.  The two produce byte-identical
        DAGs, the reference being several times slower on overlapping
        batches.
        """
        builder = DagBuilder(
            self.catalog,
            cost_model=self.cost_model,
            enable_subsumption=self.enable_subsumption and self.enable_mqo,
            memoize=memoize,
        )
        return builder.build(list(queries))

    def _build_reference(self, queries: Sequence[Query]) -> Dag:
        """The builder with all builder-level memos disabled (the oracle for
        the differential suite; see :meth:`build_dag`)."""
        return self.build_dag(queries, memoize=False)

    def session(self, cache_plans: bool = True) -> "OptimizerSession":
        """A long-lived :class:`~repro.service.session.OptimizerSession` with
        this optimizer's catalog, cost model and flags.

        The session keeps a catalog-lifetime fragment cache (and, with
        *cache_plans*, a batch-level plan cache) alive across ``build_dag``
        calls, making warm rebuilds of overlapping batches several times
        cheaper while staying byte-identical to this optimizer's output; see
        :mod:`repro.service.session` for the invalidation contract.
        """
        from repro.service.session import OptimizerSession

        return OptimizerSession(
            self.catalog,
            cost_model=self.cost_model,
            enable_subsumption=self.enable_subsumption,
            enable_mqo=self.enable_mqo,
            cache_plans=cache_plans,
        )

    # -- optimization ----------------------------------------------------------
    def optimize(
        self,
        queries: Sequence[Query],
        algorithm: Union[str, Algorithm] = Algorithm.GREEDY,
        dag: Optional[Dag] = None,
        greedy_options: Optional[GreedyOptions] = None,
    ) -> OptimizationResult:
        """Optimize a batch of queries with the requested algorithm."""
        algorithm = Algorithm.parse(algorithm)
        if dag is None:
            dag = self.build_dag(queries)
        if not self.enable_mqo or algorithm is Algorithm.VOLCANO:
            return optimize_volcano(dag)
        if algorithm is Algorithm.VOLCANO_SH:
            return optimize_volcano_sh(dag)
        if algorithm is Algorithm.VOLCANO_RU:
            return optimize_volcano_ru(dag)
        if algorithm is Algorithm.GREEDY:
            return optimize_greedy(dag, greedy_options)
        if algorithm is Algorithm.EXHAUSTIVE:
            return optimize_exhaustive(dag)
        raise ValueError(f"unsupported algorithm: {algorithm}")

    def optimize_all(
        self,
        queries: Sequence[Query],
        algorithms: Iterable[Union[str, Algorithm]] = PAPER_ALGORITHMS,
        greedy_options: Optional[GreedyOptions] = None,
    ) -> Dict[str, OptimizationResult]:
        """Run several algorithms on the same DAG and return results by name.

        The DAG is built once and shared, mirroring the paper's observation
        that Volcano-RU's two query orders (and all algorithms generally) can
        reuse a single expanded DAG.
        """
        dag = self.build_dag(queries)
        results: Dict[str, OptimizationResult] = {}
        for algorithm in algorithms:
            algorithm = Algorithm.parse(algorithm)
            result = self.optimize(queries, algorithm, dag=dag, greedy_options=greedy_options)
            results[result.algorithm] = result
        return results


def optimize(
    queries: Sequence[Query],
    catalog: Catalog,
    algorithm: Union[str, Algorithm] = Algorithm.GREEDY,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    enable_subsumption: bool = True,
) -> OptimizationResult:
    """One-shot convenience wrapper around :class:`MQOptimizer`."""
    optimizer = MQOptimizer(catalog, cost_model, enable_subsumption)
    return optimizer.optimize(queries, algorithm)
