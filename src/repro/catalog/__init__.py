"""Catalog substrate: schemas, table statistics and benchmark catalogs.

The optimizer never looks at data; it consults the catalog for row counts,
column widths, distinct-value counts and min/max bounds, plus index metadata.
Two ready-made catalogs are provided: the TPC-D (TPC-H) schema at an arbitrary
scale factor (:func:`repro.catalog.tpcd.tpcd_catalog`) and the PSP1..PSP22
scale-up schema from Section 6.2 of the paper
(:func:`repro.catalog.psp.psp_catalog`).
"""

from repro.catalog.schema import Column, Index, Table
from repro.catalog.catalog import Catalog
from repro.catalog.tpcd import tpcd_catalog
from repro.catalog.psp import psp_catalog

__all__ = [
    "Column",
    "Index",
    "Table",
    "Catalog",
    "tpcd_catalog",
    "psp_catalog",
]
