"""The catalog: a named collection of tables with lookup helpers."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.catalog.schema import Column, Index, Table


class CatalogError(KeyError):
    """Raised when a table or column is not found in the catalog."""


class Catalog:
    """A collection of base tables, keyed by (lower-case) table name."""

    def __init__(self, tables: Iterable[Table] = ()) -> None:
        self._tables: Dict[str, Table] = {}
        for table in tables:
            self.add_table(table)

    # -- population ---------------------------------------------------------
    def add_table(self, table: Table) -> None:
        """Register *table*; replaces any previous table with the same name."""
        self._tables[table.name.lower()] = table

    # -- lookup ---------------------------------------------------------------
    def table(self, name: str) -> Table:
        """Return the table called *name* (case-insensitive)."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def column(self, table: str, column: str) -> Column:
        """Return column metadata, raising :class:`CatalogError` if missing."""
        tbl = self.table(table)
        if not tbl.has_column(column):
            raise CatalogError(f"table {table!r} has no column {column!r}")
        return tbl.column(column)

    def tables(self) -> Tuple[Table, ...]:
        return tuple(self._tables.values())

    def table_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._tables))

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has_table(name)

    # -- derived ---------------------------------------------------------------
    def index_on(self, table: str, column: str) -> Optional[Index]:
        """Return an index on ``table.column`` if one exists."""
        return self.table(table).index_on(column)

    def total_rows(self) -> int:
        """Total number of rows across all tables (used in reports/tests)."""
        return sum(t.row_count for t in self._tables.values())

    def renamed_copy(self, suffix: str) -> "Catalog":
        """Return a catalog in which every table also exists under
        ``<name><suffix>`` with identical statistics.

        This supports the Section 6.4 "no sharing" experiment, where the TPC-D
        queries are run over disjoint renamed copies of the relations.
        """
        clone = Catalog(self._tables.values())
        for table in list(self._tables.values()):
            renamed = Table(
                name=f"{table.name}{suffix}",
                columns=table.columns,
                row_count=table.row_count,
                indexes=tuple(
                    Index(f"{table.name}{suffix}", idx.column, idx.clustered)
                    for idx in table.indexes
                ),
            )
            clone.add_table(renamed)
        return clone
