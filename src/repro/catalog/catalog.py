"""The catalog: a named collection of tables with lookup helpers.

The catalog is also the **invalidation anchor** for every cache that outlives
a single DAG build (:mod:`repro.service.session`).  Three monotonically
increasing counters are maintained:

* :attr:`Catalog.statistics_epoch` — bumped on *every* mutation (schema or
  statistics).  A cache that recorded the epoch can tell in O(1) whether
  anything at all changed since it was filled.
* :attr:`Catalog.schema_epoch` — bumped only when the set of tables, their
  columns, or their indexes may have changed (:meth:`add_table`).  Schema
  changes invalidate everything downstream, because cached plan choices may
  depend on indexes and column sets that no longer exist.
* :meth:`Catalog.stats_version` — a per-relation counter bumped by
  statistics-only mutations (:meth:`update_statistics`).  Caches tag their
  entries with the relations they depend on and evict *only* entries touching
  a relation whose version moved (targeted invalidation).

The counters are complemented by per-relation statistics **content digests**
(:meth:`Catalog.stats_digests`): session caches compare digests, not
counters, so even a table object swapped in behind the catalog's back (no
epoch bump) is detected on the next build, and cache state can be shared
across processes (counters depend on one catalog's mutation history;
digests depend only on the statistics themselves).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.catalog.schema import Column, Index, Table

NumericBounds = Tuple[Optional[float], Optional[float]]


class CatalogError(KeyError):
    """Raised when a table or column is not found in the catalog."""


class Catalog:
    """A collection of base tables, keyed by (lower-case) table name."""

    def __init__(self, tables: Iterable[Table] = ()) -> None:
        self._tables: Dict[str, Table] = {}
        self._statistics_epoch: int = 0
        self._schema_epoch: int = 0
        self._stats_versions: Dict[str, int] = {}
        for table in tables:
            self.add_table(table)

    # -- population ---------------------------------------------------------
    def add_table(self, table: Table) -> None:
        """Register *table*; replaces any previous table with the same name.

        Adding (or replacing) a table is a **schema** change: it may alter
        columns and indexes, so both epochs advance and session caches must
        discard everything derived from this catalog.
        """
        name = table.name.lower()
        self._tables[name] = table
        self._statistics_epoch += 1
        self._schema_epoch += 1
        self._stats_versions[name] = self._stats_versions.get(name, 0) + 1

    def update_statistics(
        self,
        name: str,
        row_count: Optional[int] = None,
        distinct: Optional[Mapping[str, int]] = None,
        bounds: Optional[Mapping[str, NumericBounds]] = None,
    ) -> Table:
        """Replace statistics of table *name* in place and return the new table.

        Only row counts, distinct-value counts, and numeric (low, high)
        bounds can change here — the column set, widths, and indexes are
        preserved, so this is a **statistics-only** mutation: it bumps the
        global :attr:`statistics_epoch` and the table's
        :meth:`stats_version`, but not the :attr:`schema_epoch`.  Session
        caches react by evicting only the entries that depend on *name*
        (targeted invalidation) instead of starting cold.
        """
        table = self.table(name)
        distinct = distinct or {}
        bounds = bounds or {}
        for column in list(distinct) + list(bounds):
            if not table.has_column(column):
                raise CatalogError(f"table {name!r} has no column {column!r}")
        columns = []
        for column in table.columns:
            low, high = bounds.get(column.name, (column.low, column.high))
            columns.append(
                Column(
                    column.name,
                    column.width,
                    distinct.get(column.name, column.distinct),
                    low,
                    high,
                )
            )
        updated = Table(
            name=table.name,
            columns=tuple(columns),
            row_count=table.row_count if row_count is None else row_count,
            indexes=table.indexes,
        )
        key = table.name.lower()
        self._tables[key] = updated
        self._statistics_epoch += 1
        self._stats_versions[key] = self._stats_versions.get(key, 0) + 1
        return updated

    # -- versioning -----------------------------------------------------------
    @property
    def statistics_epoch(self) -> int:
        """Counter advanced by every mutation (schema or statistics)."""
        return self._statistics_epoch

    @property
    def schema_epoch(self) -> int:
        """Counter advanced only by schema-level mutations (:meth:`add_table`)."""
        return self._schema_epoch

    def stats_version(self, name: str) -> int:
        """Per-relation statistics version (0 if the table never existed)."""
        return self._stats_versions.get(name.lower(), 0)

    def stats_versions(self) -> Dict[str, int]:
        """Snapshot of every relation's statistics version."""
        return dict(self._stats_versions)

    def stats_digests(self) -> Dict[str, str]:
        """Per-relation statistics *content* digests (see ``Table.stats_digest``).

        Unlike :meth:`stats_versions`, these are derived from the statistics
        themselves, not from mutation counters — so they also move when a
        table object is swapped in behind the catalog's back without going
        through :meth:`update_statistics`, and they are stable across
        processes (version counters depend on a catalog's mutation history).
        The per-table digests are memoized, so taking this snapshot is a dict
        comprehension over cached strings.
        """
        return {name: table.stats_digest() for name, table in self._tables.items()}

    # -- lookup ---------------------------------------------------------------
    def table(self, name: str) -> Table:
        """Return the table called *name* (case-insensitive)."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def column(self, table: str, column: str) -> Column:
        """Return column metadata, raising :class:`CatalogError` if missing."""
        tbl = self.table(table)
        if not tbl.has_column(column):
            raise CatalogError(f"table {table!r} has no column {column!r}")
        return tbl.column(column)

    def tables(self) -> Tuple[Table, ...]:
        return tuple(self._tables.values())

    def table_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._tables))

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has_table(name)

    # -- derived ---------------------------------------------------------------
    def index_on(self, table: str, column: str) -> Optional[Index]:
        """Return an index on ``table.column`` if one exists."""
        return self.table(table).index_on(column)

    def total_rows(self) -> int:
        """Total number of rows across all tables (used in reports/tests)."""
        return sum(t.row_count for t in self._tables.values())

    def renamed_copy(self, suffix: str) -> "Catalog":
        """Return a catalog in which every table also exists under
        ``<name><suffix>`` with identical statistics.

        This supports the Section 6.4 "no sharing" experiment, where the TPC-D
        queries are run over disjoint renamed copies of the relations.
        """
        clone = Catalog(self._tables.values())
        for table in list(self._tables.values()):
            renamed = Table(
                name=f"{table.name}{suffix}",
                columns=table.columns,
                row_count=table.row_count,
                indexes=tuple(
                    Index(f"{table.name}{suffix}", idx.column, idx.clustered)
                    for idx in table.indexes
                ),
            )
            clone.add_table(renamed)
        return clone
