"""The PSP scale-up schema from Section 6.2 of the paper.

The scale-up analysis defines 22 relations ``PSP1 .. PSP22`` with an identical
schema ``(P, SP, NUM)`` — part id, sub-part id and number — whose sizes vary
from 20,000 to 40,000 tuples (assigned randomly) with 25 tuples per block and
no indices on the base relations.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, Table

#: Default number of PSP relations (PSP1 .. PSP22), as in the paper.
DEFAULT_RELATION_COUNT = 22

#: The paper states 25 tuples per 4 KB block, i.e. roughly 160 bytes/tuple.
_TUPLE_WIDTH = 160
_COLUMN_WIDTHS = {"p": 54, "sp": 54, "num": 52}


def psp_catalog(
    relation_count: int = DEFAULT_RELATION_COUNT,
    min_rows: int = 20_000,
    max_rows: int = 40_000,
    seed: int = 2000,
) -> Catalog:
    """Build the PSP catalog with deterministic pseudo-random table sizes.

    The row count of each ``PSPi`` is drawn uniformly from
    ``[min_rows, max_rows]`` using *seed*, so the same catalog is produced on
    every run (the paper assigns sizes "randomly" without specifying them).
    """
    if relation_count < 1:
        raise ValueError("relation_count must be at least 1")
    rng = random.Random(seed)
    catalog = Catalog()
    for i in range(1, relation_count + 1):
        rows = rng.randint(min_rows, max_rows)
        # P and SP are identifier columns (part id / sub-part id), so their
        # distinct counts equal the table size and chain joins stay roughly
        # linear in the base-table size rather than exploding.
        columns = (
            Column("p", _COLUMN_WIDTHS["p"], distinct=rows, low=0, high=rows),
            Column("sp", _COLUMN_WIDTHS["sp"], distinct=rows, low=0, high=rows),
            Column("num", _COLUMN_WIDTHS["num"], distinct=1000, low=0, high=1000),
        )
        catalog.add_table(Table(f"psp{i}", columns, rows, indexes=()))
    return catalog


def psp_table_names(relation_count: int = DEFAULT_RELATION_COUNT) -> Tuple[str, ...]:
    """Names of the PSP relations, in order."""
    return tuple(f"psp{i}" for i in range(1, relation_count + 1))
