"""Table and column metadata, including the statistics used for costing.

The statistics model is the classic System-R one: per-table row count and
per-column width, distinct-value count, and numeric min/max bounds.  That is
all the paper's cost model needs ("standard techniques were used for
estimating costs, using statistics about relations").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

NumericBound = Union[int, float]


@dataclass(frozen=True)
class Column:
    """A column with its statistics.

    Parameters
    ----------
    name:
        Column name (lower case by convention).
    width:
        Average width in bytes; contributes to tuple width for block counts.
    distinct:
        Estimated number of distinct values.  ``None`` means "unknown", which
        the estimator treats as one distinct value per row.
    low, high:
        Numeric bounds used for range-selectivity estimation (``None`` for
        non-numeric or unknown domains).
    """

    name: str
    width: int = 8
    distinct: Optional[int] = None
    low: Optional[NumericBound] = None
    high: Optional[NumericBound] = None

    def with_distinct(self, distinct: int) -> "Column":
        """Return a copy with a different distinct-value count."""
        return Column(self.name, self.width, distinct, self.low, self.high)


@dataclass(frozen=True)
class Index:
    """An index on one column of a table.

    ``clustered`` indices imply the table is stored in index order, so range
    scans over the indexed column touch only the matching fraction of blocks
    and the table is delivered sorted on that column.
    """

    table: str
    column: str
    clustered: bool = False

    @property
    def name(self) -> str:
        kind = "cidx" if self.clustered else "idx"
        return f"{kind}_{self.table}_{self.column}"


@dataclass
class Table:
    """A base table: schema, cardinality and indices."""

    name: str
    columns: Tuple[Column, ...]
    row_count: int
    indexes: Tuple[Index, ...] = ()

    def __post_init__(self) -> None:
        self._by_name: Dict[str, Column] = {c.name: c for c in self.columns}
        self._stats_digest: Optional[str] = None
        if len(self._by_name) != len(self.columns):
            raise ValueError(f"duplicate column names in table {self.name!r}")

    # -- schema ------------------------------------------------------------
    def column(self, name: str) -> Column:
        """Return the column named *name* (raises ``KeyError`` if absent)."""
        return self._by_name[name]

    def has_column(self, name: str) -> bool:
        """Return ``True`` if the table has a column named *name*."""
        return name in self._by_name

    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def tuple_width(self) -> int:
        """Average tuple width in bytes."""
        return sum(c.width for c in self.columns)

    # -- statistics ----------------------------------------------------------
    def stats_digest(self) -> str:
        """Content digest of everything the optimizer reads from this table.

        Covers the row count, every column's statistics (width, distinct,
        bounds — ``repr``-level, so int/float and sign-of-zero distinctions
        survive), and the index set (index choices feed plan costs too).
        Independent of ``PYTHONHASHSEED`` and of the process that computes
        it: :meth:`repro.service.session.SessionCache.sync` compares these
        digests on every build, which is what catches statistics mutated
        *behind the catalog's back* (no epoch bump) as well as ordinary
        updates.  Memoized per instance — catalog mutations replace the
        :class:`Table` object rather than mutating it, so the memo can never
        go stale.
        """
        digest = self._stats_digest
        if digest is None:
            payload = repr(
                (
                    self.name,
                    self.row_count,
                    tuple(
                        (c.name, c.width, c.distinct, c.low, c.high) for c in self.columns
                    ),
                    tuple((i.table, i.column, i.clustered) for i in self.indexes),
                )
            )
            digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            self._stats_digest = digest
        return digest

    def distinct(self, column: str) -> int:
        """Distinct-value count for *column* (defaults to the row count)."""
        col = self.column(column)
        if col.distinct is None:
            return max(1, self.row_count)
        return max(1, min(col.distinct, self.row_count)) if self.row_count else max(1, col.distinct)

    # -- indexes -------------------------------------------------------------
    def index_on(self, column: str) -> Optional[Index]:
        """Return an index on *column*, preferring a clustered one."""
        best: Optional[Index] = None
        for index in self.indexes:
            if index.column != column:
                continue
            if index.clustered:
                return index
            best = best or index
        return best

    def has_index(self, column: str) -> bool:
        return self.index_on(column) is not None

    def clustered_index(self) -> Optional[Index]:
        """Return the clustered index of the table, if any."""
        for index in self.indexes:
            if index.clustered:
                return index
        return None


def make_table(
    name: str,
    row_count: int,
    columns: Sequence[Tuple[str, int, Optional[int]]],
    primary_key: Optional[str] = None,
    numeric_bounds: Optional[Dict[str, Tuple[NumericBound, NumericBound]]] = None,
    extra_indexes: Sequence[str] = (),
) -> Table:
    """Helper to build a :class:`Table` from compact column specs.

    *columns* is a sequence of ``(name, width, distinct)`` triples; *distinct*
    may be ``None``.  ``primary_key`` gets a clustered index, every column in
    *extra_indexes* gets a secondary index.
    """
    bounds = numeric_bounds or {}
    cols = []
    for col_name, width, distinct in columns:
        low, high = bounds.get(col_name, (None, None))
        cols.append(Column(col_name, width, distinct, low, high))
    indexes = []
    if primary_key is not None:
        indexes.append(Index(name, primary_key, clustered=True))
    for column in extra_indexes:
        indexes.append(Index(name, column, clustered=False))
    return Table(name, tuple(cols), row_count, tuple(indexes))
