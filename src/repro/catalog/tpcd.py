"""The TPC-D (a.k.a. TPC-H) schema and statistics at an arbitrary scale factor.

The paper's experiments use the TPC-D database at scale 1 (1 GB) and scale 100
(100 GB).  The optimizer only needs catalog statistics, which scale linearly
with the scale factor exactly as the official ``dbgen`` populations do, so
this module constructs them analytically.

Dates are modelled as integer "day numbers" with day 0 = 1992-01-01 and day
2405 = 1998-08-02 (the range ``dbgen`` populates), which keeps predicate
evaluation and selectivity estimation purely numeric.
"""

from __future__ import annotations


from repro.catalog.catalog import Catalog
from repro.catalog.schema import make_table

#: Day-number bounds of the TPC-D date domain (1992-01-01 .. 1998-08-02).
DATE_LOW = 0
DATE_HIGH = 2405


def date_day(year: int, month: int = 1, day: int = 1) -> int:
    """Approximate day number of a date within the TPC-D domain.

    Months are treated as 30.4 days; precision is irrelevant for costing and
    for the synthetic data generator, which uses the same mapping.
    """
    return int((year - 1992) * 365.25 + (month - 1) * 30.4 + (day - 1))


def tpcd_catalog(scale: float = 1.0) -> Catalog:
    """Build the TPC-D catalog at the given scale factor.

    Every base table carries a clustered index on its primary key, matching
    the experimental setup of Section 6.1 ("a clustered index on the primary
    keys for all the base relations").
    """
    if scale <= 0:
        raise ValueError("scale factor must be positive")

    def scaled(base: int) -> int:
        return max(1, int(round(base * scale)))

    supplier_rows = scaled(10_000)
    part_rows = scaled(200_000)
    partsupp_rows = scaled(800_000)
    customer_rows = scaled(150_000)
    orders_rows = scaled(1_500_000)
    lineitem_rows = scaled(6_000_000)

    catalog = Catalog()

    catalog.add_table(
        make_table(
            "region",
            5,
            [
                ("r_regionkey", 4, 5),
                ("r_name", 16, 5),
                ("r_comment", 80, 5),
            ],
            primary_key="r_regionkey",
        )
    )

    catalog.add_table(
        make_table(
            "nation",
            25,
            [
                ("n_nationkey", 4, 25),
                ("n_name", 16, 25),
                ("n_regionkey", 4, 5),
                ("n_comment", 80, 25),
            ],
            primary_key="n_nationkey",
        )
    )

    catalog.add_table(
        make_table(
            "supplier",
            supplier_rows,
            [
                ("s_suppkey", 4, supplier_rows),
                ("s_name", 24, supplier_rows),
                ("s_address", 32, supplier_rows),
                ("s_nationkey", 4, 25),
                ("s_phone", 16, supplier_rows),
                ("s_acctbal", 8, supplier_rows),
                ("s_comment", 64, supplier_rows),
            ],
            primary_key="s_suppkey",
            numeric_bounds={"s_acctbal": (-999.99, 9999.99)},
        )
    )

    catalog.add_table(
        make_table(
            "customer",
            customer_rows,
            [
                ("c_custkey", 4, customer_rows),
                ("c_name", 24, customer_rows),
                ("c_address", 32, customer_rows),
                ("c_nationkey", 4, 25),
                ("c_phone", 16, customer_rows),
                ("c_acctbal", 8, customer_rows),
                ("c_mktsegment", 12, 5),
                ("c_comment", 72, customer_rows),
            ],
            primary_key="c_custkey",
            numeric_bounds={"c_acctbal": (-999.99, 9999.99)},
        )
    )

    catalog.add_table(
        make_table(
            "part",
            part_rows,
            [
                ("p_partkey", 4, part_rows),
                ("p_name", 36, part_rows),
                ("p_mfgr", 16, 5),
                ("p_brand", 12, 25),
                ("p_type", 20, 150),
                ("p_size", 4, 50),
                ("p_container", 12, 40),
                ("p_retailprice", 8, part_rows),
                ("p_comment", 16, part_rows),
            ],
            primary_key="p_partkey",
            numeric_bounds={"p_size": (1, 50), "p_retailprice": (900.0, 2100.0)},
        )
    )

    catalog.add_table(
        make_table(
            "partsupp",
            partsupp_rows,
            [
                ("ps_partkey", 4, part_rows),
                ("ps_suppkey", 4, supplier_rows),
                ("ps_availqty", 4, 10_000),
                ("ps_supplycost", 8, 100_000),
                ("ps_comment", 100, partsupp_rows),
            ],
            primary_key="ps_partkey",
            numeric_bounds={
                "ps_availqty": (1, 10_000),
                "ps_supplycost": (1.0, 1000.0),
            },
        )
    )

    catalog.add_table(
        make_table(
            "orders",
            orders_rows,
            [
                ("o_orderkey", 4, orders_rows),
                ("o_custkey", 4, customer_rows),
                ("o_orderstatus", 2, 3),
                ("o_totalprice", 8, orders_rows),
                ("o_orderdate", 4, 2_400),
                ("o_orderpriority", 12, 5),
                ("o_clerk", 16, scaled(1_000)),
                ("o_shippriority", 4, 1),
                ("o_comment", 48, orders_rows),
            ],
            primary_key="o_orderkey",
            numeric_bounds={
                "o_orderdate": (DATE_LOW, DATE_HIGH),
                "o_totalprice": (850.0, 560_000.0),
            },
        )
    )

    catalog.add_table(
        make_table(
            "lineitem",
            lineitem_rows,
            [
                ("l_orderkey", 4, orders_rows),
                ("l_partkey", 4, part_rows),
                ("l_suppkey", 4, supplier_rows),
                ("l_linenumber", 4, 7),
                ("l_quantity", 8, 50),
                ("l_extendedprice", 8, 1_000_000),
                ("l_discount", 8, 11),
                ("l_tax", 8, 9),
                ("l_returnflag", 2, 3),
                ("l_linestatus", 2, 2),
                ("l_shipdate", 4, 2_500),
                ("l_commitdate", 4, 2_450),
                ("l_receiptdate", 4, 2_500),
                ("l_shipinstruct", 20, 4),
                ("l_shipmode", 12, 7),
                ("l_comment", 28, lineitem_rows),
            ],
            primary_key="l_orderkey",
            numeric_bounds={
                "l_quantity": (1, 50),
                "l_discount": (0.0, 0.10),
                "l_shipdate": (DATE_LOW, DATE_HIGH + 120),
                "l_commitdate": (DATE_LOW, DATE_HIGH + 90),
                "l_receiptdate": (DATE_LOW, DATE_HIGH + 150),
                "l_extendedprice": (900.0, 105_000.0),
            },
        )
    )

    return catalog
