"""Costing substrate: the block-based cost model and cardinality estimation."""

from repro.cost.model import Cost, CostModel
from repro.cost.estimation import ColumnStats, Estimator, LogicalProperties

__all__ = ["Cost", "CostModel", "ColumnStats", "Estimator", "LogicalProperties"]
