"""Cost functions for the physical algorithms of the paper's optimizer.

Section 6 lists the implementation algorithms of the testbed optimizer:
*sort-based aggregation, merge join, nested loops join, indexed join, indexed
select and relation scan*.  This module prices each of them with the block
model of :class:`repro.cost.model.CostModel`, given the estimated logical
properties of the inputs, and provides ``choose_*`` helpers that return the
cheapest applicable algorithm for an operation node — that choice is how
physical plan selection enters the AND-OR DAG costing.

Inputs are assumed to be pipelined (iterator model); whenever an algorithm
needs to revisit its input (the inner of a nested-loops join, the runs of an
external sort) the cost of buffering/spilling is charged to the algorithm
itself, which keeps the paper's additive cost formula
``cost(o) = exec(o) + Σ cost(e_i)`` valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.algebra.columns import ColumnRef
from repro.algebra.predicates import Comparison, Predicate
from repro.catalog.catalog import Catalog
from repro.cost.estimation import LogicalProperties
from repro.cost.model import Cost, CostModel


@dataclass(frozen=True)
class AlgorithmChoice:
    """The algorithm selected for an operation node and its execution cost."""

    name: str
    cost: Cost
    #: Sort order (column refs) delivered by the algorithm, if any.
    delivered_order: Tuple[ColumnRef, ...] = ()

    @property
    def total(self) -> float:
        return self.cost.total


# ---------------------------------------------------------------------------
# Scans and selections
# ---------------------------------------------------------------------------

def table_scan_cost(
    model: CostModel, table_rows: float, tuple_width: float, output_rows: float
) -> Cost:
    """Full sequential scan of a base table, applying any filter on the fly."""
    blocks = model.blocks(table_rows, tuple_width)
    return model.sequential_read(blocks) + model.cpu(0, table_rows + output_rows)


def clustered_index_scan_cost(
    model: CostModel, table_rows: float, tuple_width: float, matching_rows: float
) -> Cost:
    """Range/equality scan through a clustered index.

    Only the fraction of blocks containing matching rows is read (plus the
    index descent, charged as one probe).
    """
    matching_blocks = model.blocks(matching_rows, tuple_width)
    descent = model.random_reads(1, model.index_probe_ios)
    return descent + model.sequential_read(matching_blocks) + model.cpu(0, matching_rows)


def secondary_index_scan_cost(
    model: CostModel, table_rows: float, tuple_width: float, matching_rows: float
) -> Cost:
    """Lookup through a non-clustered index: one random read per matching row."""
    return model.random_reads(max(1.0, matching_rows)) + model.cpu(0, matching_rows)


def filter_cost(model: CostModel, input_rows: float, output_rows: float) -> Cost:
    """A pipelined selection over an intermediate result (CPU only)."""
    return model.cpu(0, input_rows + output_rows)


def project_cost(model: CostModel, input_rows: float) -> Cost:
    """A pipelined projection (CPU only)."""
    return model.cpu(0, input_rows)


def cached_read_cost(
    model: CostModel,
    cached_rows: float,
    cached_blocks: float,
    output_rows: float,
    residual: bool,
) -> Cost:
    """Serving a node from the cross-batch result cache.

    The cached intermediate is read back sequentially from its stored
    blocks; a *covering* hit additionally pays a pipelined compensating
    selection over the cached rows (mirroring :func:`filter_cost`).  This is
    the reuse-cost model for the ``CachedReadOp`` operations injected by
    :func:`repro.dag.subsumption.inject_cached_results` — exactly how the
    paper prices reading a materialized result, which keeps injected
    derivations comparable with every other operation in the DAG's additive
    cost recurrence.
    """
    cost = model.sequential_read(cached_blocks)
    if residual:
        cost = cost + model.cpu(0, cached_rows + output_rows)
    return cost


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------

def block_nested_loops_join_cost(
    model: CostModel,
    outer: LogicalProperties,
    inner: LogicalProperties,
    output_rows: float,
) -> Cost:
    """Block nested-loops join with the inner input buffered.

    The (pipelined) inner is materialized to a temporary once, then re-read
    for every memory-full chunk of the outer; if the inner fits in memory no
    temporary is needed.  The CPU cost reflects the quadratic number of tuple
    comparisons nested loops performs, which is what makes merge or index
    joins preferable for large inputs (the paper's operator set contains no
    hash join).
    """
    outer_blocks = model.blocks(outer.rows, outer.tuple_width)
    inner_blocks = model.blocks(inner.rows, inner.tuple_width)
    per_tuple = model.cpu_time_per_tuple
    compare_cpu = Cost(
        0.0,
        outer.rows * inner.rows * per_tuple + output_rows * per_tuple,
    )
    if inner_blocks <= model.memory_blocks - 2:
        return compare_cpu
    return model.nested_loops_spill_cost(outer_blocks, inner_blocks) + compare_cpu


def merge_join_cost(
    model: CostModel,
    left: LogicalProperties,
    right: LogicalProperties,
    output_rows: float,
    left_sorted: bool = False,
    right_sorted: bool = False,
) -> Cost:
    """Sort-merge join; inputs that are not already sorted are sorted first.

    The sort costs are accumulated without a zero-cost seed: every component
    of an ``external_sort`` cost is a sum/product of non-negative terms, so
    it is ``+0.0`` or positive, and adding ``+0.0`` is bit-exact — the
    historical ``Cost() + ...`` fold produced identical values.
    """
    cost: Optional[Cost] = None
    if not left_sorted:
        cost = model.external_sort(model.blocks(left.rows, left.tuple_width), left.rows)
    if not right_sorted:
        right_sort = model.external_sort(model.blocks(right.rows, right.tuple_width), right.rows)
        cost = right_sort if cost is None else cost + right_sort
    scan = model.cpu(0, left.rows + right.rows + output_rows)
    return scan if cost is None else cost + scan


def index_nested_loops_join_cost(
    model: CostModel,
    outer: LogicalProperties,
    inner_table_rows: float,
    inner_tuple_width: float,
    matches_per_probe: float,
    output_rows: float,
    clustered: bool,
) -> Cost:
    """Index nested-loops join: one index probe into the inner per outer row."""
    probe = model.index_probe_cost(matches_per_probe, inner_tuple_width)
    if not clustered:
        # Non-clustered index: every matching row may live in its own block.
        probe = probe + model.random_reads(max(0.0, matches_per_probe - 1.0))
    return probe.scaled(max(1.0, outer.rows)) + model.cpu(0, output_rows)


# ---------------------------------------------------------------------------
# Aggregation and sorting
# ---------------------------------------------------------------------------

def sort_aggregate_cost(
    model: CostModel, child: LogicalProperties, output_rows: float, child_sorted: bool = False
) -> Cost:
    """Sort-based group-by aggregation."""
    cost = Cost()
    if not child_sorted:
        cost = cost + model.external_sort(model.blocks(child.rows, child.tuple_width), child.rows)
    return cost + model.cpu(0, child.rows + output_rows)


def sort_cost(model: CostModel, child: LogicalProperties) -> Cost:
    """An explicit sort enforcer."""
    return model.external_sort(model.blocks(child.rows, child.tuple_width), child.rows)


# ---------------------------------------------------------------------------
# Algorithm choice helpers used by the DAG builder
# ---------------------------------------------------------------------------

def _equi_join_columns(predicates: Sequence[Predicate]) -> Sequence[Tuple[ColumnRef, ColumnRef]]:
    """Extract ``left.col = right.col`` pairs from the join predicates."""
    if not predicates:
        return ()
    pairs = []
    for predicate in predicates:
        for conjunct in predicate.conjuncts():
            if isinstance(conjunct, Comparison) and conjunct.op == "=" and conjunct.is_column_column():
                pairs.append((conjunct.left, conjunct.right))
    return pairs


def choose_scan(
    model: CostModel,
    catalog: Catalog,
    table_name: str,
    alias: str,
    predicate: Optional[Predicate],
    base: LogicalProperties,
    output: LogicalProperties,
) -> AlgorithmChoice:
    """Pick the cheapest access path for scanning ``table_name`` with a filter."""
    table = catalog.table(table_name)
    # Scalar best-tracking with a strict ``<`` in the historical candidate
    # order — ties resolve to the earliest candidate exactly as the previous
    # ``min``-over-a-list did (see ``choose_join``).
    best_cost = table_scan_cost(model, base.rows, base.tuple_width, output.rows)
    best_name = "table_scan"
    best_total = best_cost.io + best_cost.cpu
    best_order = _clustered_order(catalog, table_name, alias)
    if predicate is not None:
        for conjunct in predicate.conjuncts():
            if not isinstance(conjunct, Comparison):
                continue
            normalized = conjunct.normalized()
            if not normalized.is_column_constant():
                continue
            index = table.index_on(normalized.left.column)
            if index is None:
                continue
            if index.clustered:
                cost = clustered_index_scan_cost(model, base.rows, base.tuple_width, output.rows)
                order: Tuple[ColumnRef, ...] = (ColumnRef(alias, index.column),)
            else:
                cost = secondary_index_scan_cost(model, base.rows, base.tuple_width, output.rows)
                order = ()
            total = cost.io + cost.cpu
            if total < best_total:
                best_cost, best_total = cost, total
                best_name = f"index_scan({index.column})"
                best_order = order
    return AlgorithmChoice(best_name, best_cost, best_order)


def _clustered_order(catalog: Catalog, table_name: str, alias: str) -> Tuple[ColumnRef, ...]:
    index = catalog.table(table_name).clustered_index()
    if index is None:
        return ()
    return (ColumnRef(alias, index.column),)


def choose_join(
    model: CostModel,
    catalog: Catalog,
    left: LogicalProperties,
    right: LogicalProperties,
    predicates: Sequence[Predicate],
    output_rows: float,
    left_order: Tuple[ColumnRef, ...] = (),
    right_order: Tuple[ColumnRef, ...] = (),
    right_base_table: Optional[str] = None,
    right_alias: Optional[str] = None,
) -> AlgorithmChoice:
    """Pick the cheapest join algorithm for one operation node.

    *right_base_table* is set when the inner input is a plain (optionally
    filtered) base-table scan, which enables index nested-loops joins through
    an existing index on the join column.
    """
    # Tracked as scalars instead of a list fed to ``min`` — one
    # ``AlgorithmChoice`` is built for the winner only.  Candidates are
    # considered in the historical order with a strict ``<``, so ties keep
    # resolving to the earliest candidate exactly as ``min`` did.
    best_cost = block_nested_loops_join_cost(model, left, right, output_rows)
    best_name = "block_nested_loops_join"
    best_total = best_cost.io + best_cost.cpu
    best_order: Tuple[ColumnRef, ...] = ()
    equi_columns = _equi_join_columns(predicates)
    if equi_columns:
        left_cols = {c for pair in equi_columns for c in pair}
        left_sorted = bool(left_order) and left_order[0] in left_cols
        right_sorted = bool(right_order) and right_order[0] in left_cols
        join_col = equi_columns[0]
        merge = merge_join_cost(model, left, right, output_rows, left_sorted, right_sorted)
        merge_total = merge.io + merge.cpu
        if merge_total < best_total:
            best_cost, best_name, best_total = merge, "merge_join", merge_total
            best_order = (join_col[0],)
        if right_base_table is not None and right_alias is not None:
            table = catalog.table(right_base_table)
            for left_col, right_col in equi_columns:
                for candidate in (left_col, right_col):
                    if candidate.relation != right_alias:
                        continue
                    index = table.index_on(candidate.column)
                    if index is None:
                        continue
                    matches = right.rows / max(1.0, right.distinct(candidate))
                    inl = index_nested_loops_join_cost(
                        model,
                        left,
                        right.rows,
                        right.tuple_width,
                        matches,
                        output_rows,
                        index.clustered,
                    )
                    inl_total = inl.io + inl.cpu
                    if inl_total < best_total:
                        best_cost, best_total = inl, inl_total
                        best_name = f"index_nested_loops_join({candidate.column})"
                        best_order = ()
    return AlgorithmChoice(best_name, best_cost, best_order)


def choose_aggregate(
    model: CostModel,
    child: LogicalProperties,
    group_by: Sequence[ColumnRef],
    output_rows: float,
    child_order: Tuple[ColumnRef, ...] = (),
) -> AlgorithmChoice:
    """Pick the aggregation strategy (sort-based, per the paper's operator set)."""
    sorted_on_group = bool(group_by) and bool(child_order) and child_order[0] in set(group_by)
    cost = sort_aggregate_cost(model, child, output_rows, child_sorted=sorted_on_group or not group_by)
    order = tuple(group_by[:1]) if group_by else ()
    return AlgorithmChoice("sort_aggregate", cost, order)
