"""System-R style cardinality and selectivity estimation.

The estimator derives :class:`LogicalProperties` (row count, tuple width and
per-column statistics) for every equivalence node of the DAG, starting from
catalog statistics at the leaves.  The rules are the classic ones:

* ``column = constant``      → 1 / distinct(column)
* ``column op constant``     → fraction of the (low, high) range, else 1/3
* ``column != constant``     → 1 - 1/distinct(column)
* ``column = column`` (join) → 1 / max(distinct(left), distinct(right))
* disjunctions               → 1 - Π (1 - s_i), conjunctions → Π s_i
* group-by                   → min(Π distinct(group columns), rows / 2)

These estimates feed the cost model of :mod:`repro.cost.model`; the paper uses
"standard techniques ... using statistics about relations" without further
detail, so faithfulness here means using the textbook formulas consistently
for all algorithms being compared.

Two engineering properties of this layer matter to everything above it:

* **Immutability + value-level caching.**  :class:`LogicalProperties` and
  :class:`ColumnStats` are frozen; ``tuple_width`` is computed once per
  instance, ``bounded``/``with_rows`` are copy-on-write (returning ``self``
  on the no-change fast path and sharing column dictionaries otherwise).
  These caches are pure values, shared by every code path — including the
  memo-free reference builder — so they need no invalidation.
* **Order-sensitive floats.**  Row estimates are folds of float
  multiplications, which are not associative: the same result reached by a
  different fold order can differ in the last ulp.  Everything that persists
  an estimate across contexts therefore either fixes a canonical order
  (sorted predicate strings, see ``DagBuilder._join_properties``) or keys on
  the exact *content* of the input properties objects — IEEE-754 bit
  patterns plus column insertion order, :meth:`LogicalProperties.content_key`,
  used by the catalog-lifetime session caches of
  :mod:`repro.service.session` — never on tolerance-style float comparison.
  Statistics enter only through the catalog, whose statistics digests and
  schema epoch drive cache invalidation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.algebra.columns import ColumnRef
from repro.algebra.predicates import (
    Comparison,
    Conjunction,
    Disjunction,
    Predicate,
    TruePredicate,
)
from repro.algebra.expressions import AggregateFunction
from repro.catalog.catalog import Catalog

#: Default selectivity for predicates the estimator cannot analyse.
DEFAULT_SELECTIVITY = 1.0 / 3.0
#: Default selectivity of an equality against an unknown domain.
DEFAULT_EQUALITY_SELECTIVITY = 0.1
#: Floor for estimated row counts: never below one row.
MIN_ROWS = 1.0

#: IEEE-754 little-endian double packer: the bit pattern distinguishes
#: ``-0.0`` from ``0.0`` and every NaN payload, exactly like the ``repr``
#: based DAG fingerprints used by the differential oracles.
_pack_double = struct.Struct("<d").pack

#: Content key of one column's statistics: ``(ref, distinct bits, width,
#: low bits or None, high bits or None)``.
ColumnContentKey = Tuple[ColumnRef, bytes, int, Optional[bytes], Optional[bytes]]
#: Content key of a :class:`LogicalProperties` instance: ``(row bits,
#: per-column keys in insertion order)``.
PropsContentKey = Tuple[bytes, Tuple[ColumnContentKey, ...]]


@dataclass(frozen=True)
class ColumnStats:
    """Statistics of one column of an intermediate result."""

    distinct: float
    width: int = 8
    low: Optional[float] = None
    high: Optional[float] = None

    def bounded(self, rows: float) -> "ColumnStats":
        """Cap the distinct count by the row count of the owning result.

        Returns ``self`` (not an equal copy) when the cap changes nothing,
        which is what lets :meth:`LogicalProperties.with_rows` skip rebuilding
        its column dictionary on the no-change fast path.
        """
        if 1.0 <= self.distinct <= rows:
            return self
        return ColumnStats(max(1.0, min(self.distinct, rows)), self.width, self.low, self.high)


@dataclass(frozen=True)
class LogicalProperties:
    """Estimated logical properties of an (intermediate) result."""

    rows: float
    columns: Dict[ColumnRef, ColumnStats] = field(default_factory=dict)

    @property
    def tuple_width(self) -> int:
        """Estimated width of one tuple in bytes (computed once, then cached).

        Every cost formula reads the width, so the sum over column stats used
        to be recomputed tens of thousands of times per DAG build; the cached
        value lives in the instance ``__dict__`` and is invisible to the
        dataclass ``__eq__``/``__repr__``.
        """
        width = self.__dict__.get("_tuple_width")
        if width is None:
            if not self.columns:
                width = 8
            else:
                width = max(1, sum(stat.width for stat in self.columns.values()))
            object.__setattr__(self, "_tuple_width", width)  # repro-lint: ok(C002) idempotent memo of a pure derived value on a frozen instance
        return width

    def content_key(self) -> PropsContentKey:
        """Canonical value identity of this instance (content addressing).

        The key captures everything any derived computation can read from
        the instance: the row estimate and each column's statistics as
        IEEE-754 **bit patterns** (so ``-0.0``/``0.0`` and NaNs stay
        distinct, matching the ``repr``-level strictness of the DAG
        fingerprints), plus the column dictionary in **insertion order**
        (width sums and selectivity folds iterate it, and float folds are
        order-sensitive).  Two instances with equal content keys are
        therefore interchangeable inputs to every pure fold — they yield
        bit-identical results — which is what lets the session caches of
        :mod:`repro.service.session` key on content instead of object
        identity.  Computed once per instance and memoized in ``__dict__``
        like :attr:`tuple_width`.
        """
        key: Optional[PropsContentKey] = self.__dict__.get("_content_key")
        if key is None:
            pack = _pack_double
            key = (
                pack(self.rows),
                tuple(
                    (
                        ref,
                        pack(stat.distinct),
                        stat.width,
                        None if stat.low is None else pack(stat.low),
                        None if stat.high is None else pack(stat.high),
                    )
                    for ref, stat in self.columns.items()
                ),
            )
            object.__setattr__(self, "_content_key", key)  # repro-lint: ok(C002) idempotent memo of a pure derived value on a frozen instance
        return key

    def column(self, ref: ColumnRef) -> Optional[ColumnStats]:
        return self.columns.get(ref)

    def distinct(self, ref: ColumnRef) -> float:
        """Distinct values of *ref*, defaulting to the row count if unknown."""
        stat = self.columns.get(ref)
        if stat is None:
            return max(1.0, self.rows)
        return max(1.0, min(stat.distinct, max(self.rows, 1.0)))

    def with_rows(self, rows: float) -> "LogicalProperties":
        """A copy with the row count replaced and distinct counts re-bounded.

        Copy-on-write: the column dictionary is only rebuilt when some stat is
        actually re-bounded (``bounded`` returns ``self`` otherwise), and the
        instance itself is returned when the row count is unchanged too.
        Sharing the dictionary is safe — nothing in the code base mutates the
        ``columns`` of an existing instance.
        """
        rows = max(MIN_ROWS, rows)
        changed = None
        for ref, stat in self.columns.items():
            bounded = stat.bounded(rows)
            if bounded is not stat:
                if changed is None:
                    changed = {}
                changed[ref] = bounded
        if changed is None:
            if rows == self.rows:
                return self
            return LogicalProperties(rows, self.columns)
        columns = dict(self.columns)
        columns.update(changed)
        return LogicalProperties(rows, columns)


class Estimator:
    """Derives logical properties bottom-up from catalog statistics."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    # -- leaves ---------------------------------------------------------------
    def base_properties(self, table_name: str, alias: Optional[str] = None) -> LogicalProperties:
        """Properties of a full scan of *table_name*, aliased as *alias*."""
        table = self._catalog.table(table_name)
        alias = alias or table_name
        columns: Dict[ColumnRef, ColumnStats] = {}
        for column in table.columns:
            distinct = column.distinct if column.distinct is not None else table.row_count
            columns[ColumnRef(alias, column.name)] = ColumnStats(
                max(1.0, float(distinct)),
                column.width,
                None if column.low is None else float(column.low),
                None if column.high is None else float(column.high),
            )
        return LogicalProperties(float(max(1, table.row_count)), columns)

    # -- selections -------------------------------------------------------------
    def comparison_selectivity(self, comparison: Comparison, props: LogicalProperties) -> float:
        """Selectivity of a single comparison against *props*."""
        comparison = comparison.normalized()
        if comparison.is_column_column():
            left = props.distinct(comparison.left)
            right = props.distinct(comparison.right)
            if comparison.op == "=":
                return 1.0 / max(left, right, 1.0)
            if comparison.op == "!=":
                return 1.0 - 1.0 / max(left, right, 1.0)
            return DEFAULT_SELECTIVITY
        if not comparison.is_column_constant():
            return DEFAULT_SELECTIVITY
        column = comparison.left
        value = comparison.right.value
        stat = props.column(column)
        if comparison.op == "=":
            if stat is None:
                return DEFAULT_EQUALITY_SELECTIVITY
            return 1.0 / max(1.0, stat.distinct)
        if comparison.op == "!=":
            if stat is None:
                return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
            return 1.0 - 1.0 / max(1.0, stat.distinct)
        if stat is None or stat.low is None or stat.high is None or not isinstance(value, (int, float)):
            return DEFAULT_SELECTIVITY
        low, high = stat.low, stat.high
        if high <= low:
            return DEFAULT_SELECTIVITY
        fraction = (float(value) - low) / (high - low)
        fraction = min(1.0, max(0.0, fraction))
        if comparison.op in ("<", "<="):
            selectivity = fraction
        else:  # ">", ">="
            selectivity = 1.0 - fraction
        return min(1.0, max(1.0 / max(props.rows, 1.0), selectivity))

    def predicate_selectivity(self, predicate: Optional[Predicate], props: LogicalProperties) -> float:
        """Selectivity of an arbitrary predicate (independence assumed)."""
        if predicate is None or isinstance(predicate, TruePredicate):
            return 1.0
        if isinstance(predicate, Comparison):
            return self.comparison_selectivity(predicate, props)
        if isinstance(predicate, Conjunction):
            selectivity = 1.0
            for child in predicate.children:
                selectivity *= self.predicate_selectivity(child, props)
            return selectivity
        if isinstance(predicate, Disjunction):
            inverse = 1.0
            for child in predicate.children:
                inverse *= 1.0 - self.predicate_selectivity(child, props)
            return 1.0 - inverse
        return DEFAULT_SELECTIVITY

    def apply_predicate(self, props: LogicalProperties, predicate: Optional[Predicate]) -> LogicalProperties:
        """Properties after filtering *props* with *predicate*."""
        selectivity = self.predicate_selectivity(predicate, props)
        return props.with_rows(props.rows * selectivity)

    # -- joins ---------------------------------------------------------------
    def join(
        self,
        left: LogicalProperties,
        right: LogicalProperties,
        predicates: Sequence[Predicate],
    ) -> LogicalProperties:
        """Properties of joining *left* and *right* on *predicates*."""
        columns = dict(left.columns)
        columns.update(right.columns)
        cross = LogicalProperties(max(MIN_ROWS, left.rows * right.rows), columns)
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= self.predicate_selectivity(predicate, cross)
        return cross.with_rows(cross.rows * selectivity)

    # -- aggregation -------------------------------------------------------------
    def aggregate(
        self,
        child: LogicalProperties,
        group_by: Sequence[ColumnRef],
        aggregates: Sequence[AggregateFunction],
        output_alias: str = "agg",
    ) -> LogicalProperties:
        """Properties of a group-by aggregation over *child*.

        Output columns are renamed to ``output_alias.<name>`` so that parent
        expressions can reference them without knowing the child structure.
        """
        if not group_by:
            groups = 1.0
        else:
            groups = 1.0
            for column in group_by:
                groups *= child.distinct(column)
            groups = min(groups, max(1.0, child.rows / 2.0))
        columns: Dict[ColumnRef, ColumnStats] = {}
        for column in group_by:
            stat = child.column(column) or ColumnStats(child.distinct(column))
            columns[ColumnRef(output_alias, column.column)] = ColumnStats(
                min(stat.distinct, groups), stat.width, stat.low, stat.high
            )
        for aggregate in aggregates:
            columns[ColumnRef(output_alias, aggregate.alias)] = ColumnStats(
                max(1.0, groups), 8, None, None
            )
        return LogicalProperties(max(MIN_ROWS, groups), columns)

    # -- projections -------------------------------------------------------------
    def project(self, child: LogicalProperties, columns: Sequence[ColumnRef]) -> LogicalProperties:
        """Properties after projecting *child* onto *columns*."""
        kept = {ref: stat for ref, stat in child.columns.items() if ref in set(columns)}
        if not kept:
            kept = dict(child.columns)
        return LogicalProperties(child.rows, kept)
