"""The cost model, with the constants used in the paper's performance study.

Section 6 of the paper fixes the model precisely:

* block size 4 KB, 6 MB of memory available to each operator;
* seek time 10 ms, transfer time 2 ms/block for reads and 4 ms/block for
  writes, CPU cost 0.2 ms per block of data processed;
* intermediate results are pipelined (iterator model) and written to disk only
  when materialized for sharing, in which case the materialization cost is the
  cost of writing the result sequentially.

All costs are expressed in **seconds of estimated elapsed time**, as in the
paper's figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, NamedTuple, NoReturn, Tuple


class Cost(NamedTuple):
    """A cost broken into I/O and CPU components (both in seconds).

    A ``NamedTuple`` rather than a (frozen) dataclass: tens of thousands of
    instances are created per DAG build on the costing hot path, and tuple
    construction is several times cheaper than frozen-dataclass
    ``object.__setattr__`` initialization.  ``io``/``cpu``/``total``/``+``/
    ``scaled``/``float()`` behave as before; the one semantic widening is
    that a ``Cost`` now compares equal to a plain ``(io, cpu)`` tuple.
    Tuple *repetition* (``cost * n``), which would silently produce a
    4-tuple instead of a scaled cost, is blocked — use :meth:`scaled`.
    """

    io: float = 0.0
    cpu: float = 0.0

    def __mul__(self, factor: object) -> NoReturn:
        raise TypeError("Cost does not support *; use Cost.scaled(factor)")

    __rmul__ = __mul__

    @property
    def total(self) -> float:
        return self.io + self.cpu

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.io + other.io, self.cpu + other.cpu)

    def scaled(self, factor: float) -> "Cost":
        return Cost(self.io * factor, self.cpu * factor)

    def __float__(self) -> float:
        return self.total


@dataclass(frozen=True)
class CostModel:
    """Cost primitives shared by the optimizer and the simulated executor.

    Instances are immutable; use :meth:`with_memory` to derive variants (the
    Section 6.4 memory-size study uses 6 MB, 32 MB, and 128 MB).
    """

    block_size: int = 4096
    memory_bytes: int = 6 * 1024 * 1024
    seek_time: float = 0.010
    read_time_per_block: float = 0.002
    write_time_per_block: float = 0.004
    cpu_time_per_block: float = 0.0002
    #: CPU cost charged per output tuple of an operator, modelling per-tuple
    #: evaluation overhead on top of the per-block charge.
    cpu_time_per_tuple: float = 0.0000002
    #: Random-I/O cost of one index probe (traversal + one leaf/data block).
    index_probe_ios: int = 2

    if TYPE_CHECKING:
        # Type-only declaration of the memo table and cached derived value
        # installed by __post_init__; guarded so the dataclass machinery does
        # not pick them up as fields.
        _memo: Dict[Tuple[Any, ...], Any]
        _memory_blocks: int

    def __post_init__(self) -> None:
        # Per-instance memo tables for the hottest pure primitives (``blocks``,
        # ``external_sort``, ``index_probe_cost``).  A DAG build prices every
        # join a node participates in, so the same (rows, width) pairs recur
        # hundreds of times; the tables are keyed on the full argument tuple
        # and the results are immutable, so hits are exact.  They live outside
        # the dataclass fields (``__eq__``/``__hash__``/``repr`` unaffected)
        # and are cleared when they grow past a bound so long-running services
        # cannot leak memory through unbounded distinct estimates.
        object.__setattr__(self, "_memo", {})
        # ``memory_blocks`` is probed several times per join costing; the
        # instance is frozen, so the derived value is fixed at construction.
        object.__setattr__(
            self, "_memory_blocks", max(3, self.memory_bytes // self.block_size)
        )

    # The bound is enforced on the miss path of each memoized primitive (the
    # hit path is a bare dict probe — these run thousands of times per build).
    _MEMO_LIMIT = 1 << 16

    # -- derived ---------------------------------------------------------------
    @property
    def memory_blocks(self) -> int:
        """Number of buffer blocks available to one operator."""
        return self._memory_blocks

    def with_memory(self, memory_bytes: int) -> "CostModel":
        """Return a copy of the model with a different per-operator memory."""
        return replace(self, memory_bytes=memory_bytes)

    # -- primitives -------------------------------------------------------------
    def blocks(self, rows: float, tuple_width: float) -> int:
        """Number of blocks occupied by *rows* tuples of *tuple_width* bytes."""
        key = ("blocks", rows, tuple_width)
        memo = self._memo
        cached = memo.get(key)
        if cached is None:
            if rows <= 0:
                cached = 1
            else:
                per_block = max(1, int(self.block_size // max(1.0, tuple_width)))
                cached = max(1, int(math.ceil(rows / per_block)))
            if len(memo) > self._MEMO_LIMIT:
                memo.clear()
            memo[key] = cached
        return cached

    def cpu(self, blocks: float, rows: float = 0.0) -> Cost:
        """CPU cost of processing *blocks* blocks (plus optional per-tuple cost)."""
        return Cost(0.0, blocks * self.cpu_time_per_block + rows * self.cpu_time_per_tuple)

    def sequential_read(self, blocks: float) -> Cost:
        """Cost of sequentially reading *blocks* blocks (one initial seek)."""
        return Cost(self.seek_time + blocks * self.read_time_per_block, blocks * self.cpu_time_per_block)

    def sequential_write(self, blocks: float) -> Cost:
        """Cost of sequentially writing *blocks* blocks (one initial seek)."""
        return Cost(self.seek_time + blocks * self.write_time_per_block, blocks * self.cpu_time_per_block)

    def random_reads(self, count: float, blocks_each: float = 1.0) -> Cost:
        """Cost of *count* random accesses reading *blocks_each* blocks each."""
        io = count * (self.seek_time + blocks_each * self.read_time_per_block)
        return Cost(io, count * blocks_each * self.cpu_time_per_block)

    # -- composite primitives ------------------------------------------------
    def external_sort(self, blocks: float, rows: float) -> Cost:
        """Cost of an external merge sort of *blocks* blocks.

        A dataset that fits in memory is sorted at CPU cost only; otherwise
        the classic ``2 * blocks * passes`` I/O formula is used.
        """
        key = ("sort", blocks, rows)
        memo = self._memo
        cached = memo.get(key)
        if cached is None:
            cached = self._external_sort(blocks, rows)
            if len(memo) > self._MEMO_LIMIT:
                memo.clear()
            memo[key] = cached
        return cached

    def _external_sort(self, blocks: float, rows: float) -> Cost:
        if blocks <= self.memory_blocks:
            return self.cpu(blocks, rows)
        fan_in = max(2, self.memory_blocks - 1)
        runs = math.ceil(blocks / self.memory_blocks)
        passes = max(1, math.ceil(math.log(max(runs, 2), fan_in)))
        io_blocks = 2.0 * blocks * passes
        io = 2 * passes * self.seek_time + io_blocks * (
            (self.read_time_per_block + self.write_time_per_block) / 2.0
        )
        return Cost(io, io_blocks * self.cpu_time_per_block + rows * self.cpu_time_per_tuple)

    def nested_loops_spill_cost(self, outer_blocks: int, inner_blocks: int) -> Cost:
        """Spill + rescan I/O of a block nested-loops join with a buffered inner.

        The inner is written to a temporary once and re-read for every
        memory-full chunk of the outer.  Memoized: block counts quantize row
        estimates, so the same ``(outer_blocks, inner_blocks)`` pairs recur
        across the thousands of join costings of one DAG build.
        """
        key = ("bnl", outer_blocks, inner_blocks)
        memo = self._memo
        cached = memo.get(key)
        if cached is None:
            chunks = math.ceil(outer_blocks / max(1, self.memory_blocks - 2))
            cached = self.sequential_write(inner_blocks) + self.sequential_read(
                inner_blocks
            ).scaled(chunks)
            if len(memo) > self._MEMO_LIMIT:
                memo.clear()
            memo[key] = cached
        return cached

    def materialization_cost(self, rows: float, tuple_width: float) -> Cost:
        """Cost of writing a result to disk for sharing (sequential write)."""
        return self.sequential_write(self.blocks(rows, tuple_width))

    def reuse_cost(self, rows: float, tuple_width: float) -> Cost:
        """Cost of reading back a materialized result (sequential read)."""
        return self.sequential_read(self.blocks(rows, tuple_width))

    def index_build_cost(self, rows: float, tuple_width: float) -> Cost:
        """Cost of building a temporary index on a materialized result.

        Modelled as a sort of the key column plus writing the index blocks
        (keys + row ids, assumed 16 bytes per entry).
        """
        data_blocks = self.blocks(rows, tuple_width)
        index_blocks = self.blocks(rows, 16)
        sort = self.external_sort(index_blocks, rows)
        return sort + self.sequential_write(index_blocks) + self.cpu(data_blocks)

    def index_probe_cost(self, matching_rows: float, tuple_width: float) -> Cost:
        """Cost of one index lookup retrieving *matching_rows* rows."""
        key = ("probe", matching_rows, tuple_width)
        memo = self._memo
        cached = memo.get(key)
        if cached is None:
            matching_blocks = self.blocks(matching_rows, tuple_width) if matching_rows > 0 else 0
            blocks_read = self.index_probe_ios + max(0, matching_blocks - 1)
            cached = Cost(
                self.seek_time + blocks_read * self.read_time_per_block,
                blocks_read * self.cpu_time_per_block + matching_rows * self.cpu_time_per_tuple,
            )
            if len(memo) > self._MEMO_LIMIT:
                memo.clear()
            memo[key] = cached
        return cached


#: The default cost model instance used throughout the library.
DEFAULT_COST_MODEL = CostModel()
