"""The AND-OR DAG (Query DAG) substrate.

An AND-OR DAG is a directed acyclic graph whose nodes are divided into
*equivalence* (OR) nodes — sets of logical expressions producing the same
result — and *operation* (AND) nodes — algebraic operations whose inputs are
equivalence nodes.  The combined DAG of a batch of queries, with common
sub-expressions unified and subsumption derivations added, is the search space
of every multi-query optimization algorithm in this library.
"""

from repro.dag.nodes import (
    AggregateOp,
    Dag,
    EquivalenceNode,
    JoinOp,
    NestedApplyOp,
    NoOp,
    OperationNode,
    Operator,
    ProjectOp,
    ScanOp,
    SelectOp,
    TableOp,
)
from repro.dag.builder import DagBuilder, Query
from repro.dag.sharability import degree_of_sharing, sharable_nodes, sharing_degrees

__all__ = [
    "Dag",
    "EquivalenceNode",
    "OperationNode",
    "Operator",
    "TableOp",
    "ScanOp",
    "SelectOp",
    "ProjectOp",
    "JoinOp",
    "AggregateOp",
    "NestedApplyOp",
    "NoOp",
    "DagBuilder",
    "Query",
    "degree_of_sharing",
    "sharable_nodes",
    "sharing_degrees",
]
