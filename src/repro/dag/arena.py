"""Struct-of-arrays arena storage for the AND-OR DAG.

The object-graph DAG — ``EquivalenceNode``/``OperationNode`` instances wired
by Python references — was the right representation to *explain* the paper,
but by PR 7 it had become the cold-build floor: per-node object construction,
attribute wiring, and ``Dag.add_operation``'s linear duplicate-signature scan
dominated CQ5 builds while the optimize phase ran on :class:`CostEngine`'s
flat arrays.  This module moves the storage itself to the same dense
id-indexed layout for the whole lifecycle:

* :class:`DagArena` owns flat parallel columns — one list per field, indexed
  by dense equivalence id (``eq_*``) or operation id (``op_*``) — plus the
  interned dedup tables (``by_key`` for equivalence unification,
  ``op_signatures`` for duplicate derivations).  ``add_operation`` is a dict
  probe on ``(owner, operator, child_ids)`` instead of an object scan.
* :class:`EquivalenceNode` / :class:`OperationNode` are thin *views*: two
  slots (arena reference + id), every historical attribute a property that
  reads the corresponding column.  Views are lazily materialized and
  canonical — ``arena.eq_view(i)`` returns the same object for the same id
  every time — so identity comparisons (``node is dag.root``,
  ``engine.nodes[node.id] is node``) behave exactly as they did with owned
  objects.  Code that never asks for a view never pays for one: the builder,
  subsumption expansion, and :class:`repro.optimizer.engine.CostEngine` all
  read the columns directly.
* Pickling an arena serializes only the primary columns; the derived tables
  (adjacency, signature interns, cost-kernel entries, views) are rebuilt in
  :meth:`DagArena.__setstate__`.  That is what makes
  ``OptimizerSession.snapshot_state`` fan-out cheap: a snapshot is a handful
  of flat lists, not a pointer graph with per-object ``__reduce__`` records.

The per-operation ``op_entry``/``op_spec`` columns are built here (lazily, by
:meth:`DagArena.sync_op_tables` once the DAG is frozen) in exactly the shapes
:class:`CostEngine` consumes, so engine construction degrades to per-node
grouping of existing tuples.

Determinism: ids are allocated in append order by construction calls that
are themselves deterministic (the builder sorts every hash-ordered source
before touching the arena), columns are lists, and the dedup dicts are only
ever *probed* — no iteration order leaks into ids, costs, or fingerprints.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Tuple,
)

if TYPE_CHECKING:
    from repro.cost.estimation import LogicalProperties
    from repro.dag.nodes import Operator

#: One flat cost-kernel entry: ``(local_cost, ((child_id, multiplier), ...))``.
OpEntry = Tuple[float, Tuple[Tuple[int, float], ...]]

#: Interned duplicate-derivation key: ``(owner_eq_id, operator, child_ids)``.
OpSignature = Tuple[int, "Operator", Tuple[int, ...]]


class DagError(RuntimeError):
    """Raised on structural errors while building or validating the DAG."""


def _op_spec(local_cost: float, children: Tuple[Tuple[int, float], ...]) -> Tuple[Any, ...]:
    """Arity-specialized kernel entry (see ``CostEngine.op_specs``).

    ``(c1, m1, c2, m2, local)`` for the dominant two-child shape,
    ``(c1, m1, local)`` for one child, ``(children, local)`` otherwise —
    distinguished by ``len``.  Must stay bit-compatible with the engine's
    historical construction: the left-associated accumulation the kernels
    perform over these tuples is contractual.
    """
    if len(children) == 2:
        (c1, m1), (c2, m2) = children
        return (c1, m1, c2, m2, local_cost)
    if len(children) == 1:
        ((c1, m1),) = children
        return (c1, m1, local_cost)
    return (children, local_cost)


class DagArena:
    """Dense struct-of-arrays storage for one AND-OR DAG.

    Every ``eq_*`` column is indexed by equivalence-node id, every ``op_*``
    column by operation-node id; ids are dense ``0..n-1`` in creation order.
    The arena is owned by :class:`repro.dag.nodes.Dag`; almost all callers go
    through the ``Dag`` façade, while hot paths (builder, subsumption,
    engine) read and append columns directly.
    """

    __slots__ = (
        # -- equivalence columns ------------------------------------------
        "eq_key",
        "eq_label",
        "eq_props",
        "eq_mat_cost",
        "eq_reuse_cost",
        "eq_topo",
        "eq_is_base",
        "eq_base_table",
        "eq_scan_alias",
        "eq_created_by_subsumption",
        "eq_op_ids",
        "eq_parent_ops",
        # -- operation columns --------------------------------------------
        "op_operator",
        "op_children",
        "op_multipliers",
        "op_owner",
        "op_local_cost",
        "op_is_subsumption",
        "op_entry",
        "op_spec",
        # -- interned dedup tables ----------------------------------------
        "by_key",
        "op_signatures",
        # -- lazy canonical views -----------------------------------------
        "_eq_views",
        "_op_views",
    )

    def __init__(self) -> None:
        self.eq_key: List[Hashable] = []
        self.eq_label: List[str] = []
        self.eq_props: List["LogicalProperties"] = []
        self.eq_mat_cost: List[float] = []
        self.eq_reuse_cost: List[float] = []
        self.eq_topo: List[int] = []
        self.eq_is_base: List[bool] = []
        self.eq_base_table: List[Optional[str]] = []
        self.eq_scan_alias: List[Optional[str]] = []
        self.eq_created_by_subsumption: List[bool] = []
        #: Per equivalence node: its operation ids, in insertion order.
        self.eq_op_ids: List[List[int]] = []
        #: Per equivalence node: parent operation ids, one per child-slot
        #: occurrence (an operation using a child twice appears twice) —
        #: mirrors the historical ``EquivalenceNode.parents`` list.
        self.eq_parent_ops: List[List[int]] = []

        self.op_operator: List["Operator"] = []
        self.op_children: List[Tuple[int, ...]] = []
        self.op_multipliers: List[Tuple[float, ...]] = []
        self.op_owner: List[int] = []
        self.op_local_cost: List[float] = []
        self.op_is_subsumption: List[bool] = []
        #: Per operation: the flat cost-kernel entry (``CostEngine.op_table``
        #: rows are per-node groupings of these).
        self.op_entry: List[OpEntry] = []
        #: Per operation: the arity-specialized entry (``CostEngine.op_specs``).
        self.op_spec: List[Tuple[Any, ...]] = []

        # Interned lookup tables; rebuilt from the primary columns on
        # unpickle (see __setstate__, their declared invalidation registry).
        self.by_key: Dict[Hashable, int] = {}
        self.op_signatures: Dict[OpSignature, int] = {}

        self._eq_views: List[Optional["EquivalenceNode"]] = []
        self._op_views: List[Optional["OperationNode"]] = []

    # -- sizes --------------------------------------------------------------
    @property
    def num_equivalences(self) -> int:
        return len(self.eq_key)

    @property
    def num_operations(self) -> int:
        return len(self.op_owner)

    # -- construction --------------------------------------------------------
    def add_equivalence(
        self,
        key: Hashable,
        properties: "LogicalProperties",
        label: str = "",
        is_base: bool = False,
        base_table: Optional[str] = None,
        scan_alias: Optional[str] = None,
    ) -> int:
        """Append a new equivalence node and return its dense id.

        Key unification is the *caller's* job (``Dag.equivalence`` probes
        ``by_key`` first); this method always appends.
        """
        eq_id = len(self.eq_key)
        self.eq_key.append(key)
        self.eq_label.append(label or str(key))
        self.eq_props.append(properties)
        self.eq_mat_cost.append(0.0)
        self.eq_reuse_cost.append(0.0)
        self.eq_topo.append(-1)
        self.eq_is_base.append(is_base)
        self.eq_base_table.append(base_table)
        self.eq_scan_alias.append(scan_alias)
        self.eq_created_by_subsumption.append(False)
        self.eq_op_ids.append([])
        self.eq_parent_ops.append([])
        self.by_key[key] = eq_id
        self._eq_views.append(None)
        return eq_id

    def add_operation(
        self,
        eq_id: int,
        operator: "Operator",
        child_ids: Tuple[int, ...],
        local_cost: float,
        multipliers: Optional[Tuple[float, ...]] = None,
        is_subsumption: bool = False,
    ) -> int:
        """Append (or dedup) an operation under *eq_id*; return its dense id.

        Duplicate derivations — same owner, operator, and children — are
        detected with one interned-signature dict probe, replacing the
        historical linear scan of the owner's operations.  The probe's
        semantics are those of the scan: operator payloads are frozen
        dataclasses comparing by value, so an equal-valued operator from a
        different query hits the same entry, while identity-hashed operators
        (the test generator's) never collide.
        """
        signature = (eq_id, operator, child_ids)
        existing = self.op_signatures.get(signature)
        if existing is not None:
            return existing
        op_id = self.append_operation(
            eq_id, operator, child_ids, local_cost, multipliers, is_subsumption
        )
        self.op_signatures[signature] = op_id
        return op_id

    def append_operation(
        self,
        eq_id: int,
        operator: "Operator",
        child_ids: Tuple[int, ...],
        local_cost: float,
        multipliers: Optional[Tuple[float, ...]] = None,
        is_subsumption: bool = False,
    ) -> int:
        """:meth:`add_operation` without the duplicate-signature probe.

        For callers that already guarantee uniqueness of
        ``(eq_id, operator, child_ids)`` through their own memo — the
        builder's join paths hold a ``(owner, left, right)`` triple memo, and
        for join operations the triple *is* the signature (the operator is a
        deterministic function of it).  Skipping the probe avoids re-hashing
        deep operator payloads; the signature is deliberately not registered
        either, which is safe because no later ``add_operation`` call can
        present it (the memo swallows repeats first).
        """
        if not multipliers:
            multipliers = (1.0,) * len(child_ids)
        cost = float(local_cost)
        op_id = len(self.op_owner)
        self.op_operator.append(operator)
        self.op_children.append(child_ids)
        self.op_multipliers.append(multipliers)
        self.op_owner.append(eq_id)
        self.op_local_cost.append(cost)
        self.op_is_subsumption.append(is_subsumption)
        self.eq_op_ids[eq_id].append(op_id)
        eq_parent_ops = self.eq_parent_ops
        for child_id in child_ids:
            eq_parent_ops[child_id].append(op_id)
        self._op_views.append(None)
        return op_id

    def sync_op_tables(self) -> None:
        """Extend the derived cost-kernel columns to cover appended operations.

        ``op_entry``/``op_spec`` are pure per-operation functions of the
        primary columns, consumed only once the DAG is frozen (at
        :class:`repro.optimizer.engine.CostEngine` construction).  Building
        them lazily here instead of inside :meth:`append_operation` keeps
        that tuple work out of the construction hot loop; operations are
        append-only, so extending from the current length is always exact.
        """
        entries = self.op_entry
        specs = self.op_spec
        start = len(entries)
        total = len(self.op_owner)
        if start == total:
            return
        costs = self.op_local_cost
        children = self.op_children
        multipliers = self.op_multipliers
        for op_id in range(start, total):
            cost = costs[op_id]
            entry: OpEntry = (cost, tuple(zip(children[op_id], multipliers[op_id])))
            entries.append(entry)
            specs.append(_op_spec(cost, entry[1]))

    # -- canonical views -----------------------------------------------------
    def eq_view(self, eq_id: int) -> "EquivalenceNode":
        """The canonical :class:`EquivalenceNode` view for *eq_id*.

        Lazily materialized and cached: repeated calls return the *same*
        object, so identity comparisons over views are stable.
        """
        view = self._eq_views[eq_id]
        if view is None:
            view = EquivalenceNode(self, eq_id)
            self._eq_views[eq_id] = view
        return view

    def op_view(self, op_id: int) -> "OperationNode":
        """The canonical :class:`OperationNode` view for *op_id*."""
        view = self._op_views[op_id]
        if view is None:
            view = OperationNode(self, op_id)
            self._op_views[op_id] = view
        return view

    # -- structure maintenance ------------------------------------------------
    def assign_topological_numbers(self, root_id: int) -> None:
        """Number equivalence nodes so every descendant precedes its ancestors.

        Exact array twin of the historical object-graph DFS: iterative
        post-order from the root with the same child push order (operations
        in insertion order, children left to right), cycle detection on the
        DFS path, and unreachable nodes numbered after the reachable ones —
        but *only* those still unnumbered, matching the old
        ``topo_number < 0`` guard — so numbering output is byte-identical.
        """
        num_nodes = len(self.eq_key)
        eq_topo = self.eq_topo
        eq_op_ids = self.eq_op_ids
        op_children = self.op_children
        visited = bytearray(num_nodes)
        on_path = bytearray(num_nodes)
        counter = 0
        # Iterative post-order DFS to avoid recursion limits on deep DAGs.
        stack: List[Tuple[int, bool]] = [(root_id, False)]
        while stack:
            node_id, processed = stack.pop()
            if processed:
                on_path[node_id] = 0
                if not visited[node_id]:
                    visited[node_id] = 1
                    eq_topo[node_id] = counter
                    counter += 1
                continue
            if visited[node_id]:
                continue
            if on_path[node_id]:
                raise DagError(
                    f"cycle detected at equivalence node {self.eq_view(node_id)!r}"
                )
            on_path[node_id] = 1
            stack.append((node_id, True))
            for op_id in eq_op_ids[node_id]:
                for child_id in op_children[op_id]:
                    if not visited[child_id]:
                        stack.append((child_id, False))
        # Nodes unreachable from the root (none in practice) get numbers after
        # the reachable ones so that sorting is still total.
        for node_id in range(num_nodes):
            if eq_topo[node_id] < 0:
                eq_topo[node_id] = counter
                counter += 1

    # -- pickling --------------------------------------------------------------
    def __getstate__(self) -> Tuple[Any, ...]:
        """Primary columns only; every derived table is rebuilt on restore.

        This is the arena-native snapshot format: a tuple of flat lists of
        ids, floats, flags, keys, and operator payloads.  Adjacency
        (``eq_op_ids``/``eq_parent_ops``), the interned dedup dicts, the
        cost-kernel entries, and the lazy view caches are all functions of
        these columns and are deliberately excluded.
        """
        return (
            self.eq_key,
            self.eq_label,
            self.eq_props,
            self.eq_mat_cost,
            self.eq_reuse_cost,
            self.eq_topo,
            self.eq_is_base,
            self.eq_base_table,
            self.eq_scan_alias,
            self.eq_created_by_subsumption,
            self.op_operator,
            self.op_children,
            self.op_multipliers,
            self.op_owner,
            self.op_local_cost,
            self.op_is_subsumption,
        )

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        """Restore the primary columns and rebuild every derived table.

        Doubles as the arena's invalidation registry (rule M001): the
        interned dedup tables ``by_key`` and ``op_signatures`` are
        reconstructed here from the primary columns, which documents exactly
        what they cache and when they are valid.
        """
        (
            self.eq_key,
            self.eq_label,
            self.eq_props,
            self.eq_mat_cost,
            self.eq_reuse_cost,
            self.eq_topo,
            self.eq_is_base,
            self.eq_base_table,
            self.eq_scan_alias,
            self.eq_created_by_subsumption,
            self.op_operator,
            self.op_children,
            self.op_multipliers,
            self.op_owner,
            self.op_local_cost,
            self.op_is_subsumption,
        ) = state
        num_eq = len(self.eq_key)
        num_ops = len(self.op_owner)
        self.by_key = {key: eq_id for eq_id, key in enumerate(self.eq_key)}
        self.eq_op_ids = [[] for _ in range(num_eq)]
        self.eq_parent_ops = [[] for _ in range(num_eq)]
        self.op_entry = []
        self.op_spec = []
        self.op_signatures = {}
        for op_id in range(num_ops):
            owner = self.op_owner[op_id]
            child_ids = self.op_children[op_id]
            self.eq_op_ids[owner].append(op_id)
            for child_id in child_ids:
                self.eq_parent_ops[child_id].append(op_id)
            self.op_signatures[(owner, self.op_operator[op_id], child_ids)] = op_id
        self._eq_views = [None] * num_eq
        self._op_views = [None] * num_ops


def _restore_eq_view(arena: DagArena, eq_id: int) -> "EquivalenceNode":
    """Unpickle hook: route restored views through the canonical cache."""
    return arena.eq_view(eq_id)


def _restore_op_view(arena: DagArena, op_id: int) -> "OperationNode":
    """Unpickle hook: route restored views through the canonical cache."""
    return arena.op_view(op_id)


# ---------------------------------------------------------------------------
# Node views
# ---------------------------------------------------------------------------

class OperationNode:
    """An AND node: one way of computing its owning equivalence node.

    A two-slot view over one :class:`DagArena` operation id; every historical
    attribute is a property reading the arena column.  Obtain instances via
    :meth:`DagArena.op_view` (or any ``Dag`` accessor) — views are canonical,
    one object per id.
    """

    __slots__ = ("_arena", "id")

    def __init__(self, arena: DagArena, op_id: int) -> None:
        self._arena = arena
        self.id = op_id

    @property
    def operator(self) -> "Operator":
        return self._arena.op_operator[self.id]

    @property
    def children(self) -> Tuple["EquivalenceNode", ...]:
        arena = self._arena
        eq_view = arena.eq_view
        return tuple(eq_view(child_id) for child_id in arena.op_children[self.id])

    @property
    def child_multipliers(self) -> Tuple[float, ...]:
        return self._arena.op_multipliers[self.id]

    @property
    def equivalence(self) -> "EquivalenceNode":
        arena = self._arena
        return arena.eq_view(arena.op_owner[self.id])

    @property
    def local_cost(self) -> float:
        return self._arena.op_local_cost[self.id]

    @property
    def is_subsumption(self) -> bool:
        return self._arena.op_is_subsumption[self.id]

    @property
    def signature(self) -> Tuple[object, ...]:
        """The historical dedup signature ``(operator, child_ids)``."""
        arena = self._arena
        return (arena.op_operator[self.id], arena.op_children[self.id])

    def __reduce__(self) -> Tuple[Any, Tuple[DagArena, int]]:
        return (_restore_op_view, (self._arena, self.id))

    def __repr__(self) -> str:
        arena = self._arena
        kids = ",".join(str(child_id) for child_id in arena.op_children[self.id])
        return f"<Op {self.id} {arena.op_operator[self.id].describe()} children=[{kids}]>"


class EquivalenceNode:
    """An OR node: the set of alternative operations producing one result.

    A two-slot view over one :class:`DagArena` equivalence id; see
    :class:`OperationNode`.  The four post-construction annotations the
    builder and subsumption pass write (``mat_cost``, ``reuse_cost``,
    ``topo_number``, ``created_by_subsumption``) are settable properties;
    everything else is read-only.
    """

    __slots__ = ("_arena", "id")

    def __init__(self, arena: DagArena, eq_id: int) -> None:
        self._arena = arena
        self.id = eq_id

    @property
    def key(self) -> Hashable:
        return self._arena.eq_key[self.id]

    @property
    def label(self) -> str:
        return self._arena.eq_label[self.id]

    @property
    def properties(self) -> "LogicalProperties":
        return self._arena.eq_props[self.id]

    @property
    def operations(self) -> List[OperationNode]:
        arena = self._arena
        op_view = arena.op_view
        return [op_view(op_id) for op_id in arena.eq_op_ids[self.id]]

    @property
    def parents(self) -> List[OperationNode]:
        arena = self._arena
        op_view = arena.op_view
        return [op_view(op_id) for op_id in arena.eq_parent_ops[self.id]]

    @property
    def mat_cost(self) -> float:
        return self._arena.eq_mat_cost[self.id]

    @mat_cost.setter
    def mat_cost(self, value: float) -> None:
        self._arena.eq_mat_cost[self.id] = value

    @property
    def reuse_cost(self) -> float:
        return self._arena.eq_reuse_cost[self.id]

    @reuse_cost.setter
    def reuse_cost(self, value: float) -> None:
        self._arena.eq_reuse_cost[self.id] = value

    @property
    def topo_number(self) -> int:
        return self._arena.eq_topo[self.id]

    @topo_number.setter
    def topo_number(self, value: int) -> None:
        self._arena.eq_topo[self.id] = value

    @property
    def is_base(self) -> bool:
        return self._arena.eq_is_base[self.id]

    @property
    def base_table(self) -> Optional[str]:
        """Base table name if this node is the stored table or a plain scan of
        it (used by index-nested-loops applicability tests)."""
        return self._arena.eq_base_table[self.id]

    @property
    def scan_alias(self) -> Optional[str]:
        return self._arena.eq_scan_alias[self.id]

    @property
    def created_by_subsumption(self) -> bool:
        return self._arena.eq_created_by_subsumption[self.id]

    @created_by_subsumption.setter
    def created_by_subsumption(self, value: bool) -> None:
        self._arena.eq_created_by_subsumption[self.id] = value

    @property
    def rows(self) -> float:
        return self._arena.eq_props[self.id].rows

    @property
    def tuple_width(self) -> int:
        return self._arena.eq_props[self.id].tuple_width

    def child_equivalences(self) -> Iterator["EquivalenceNode"]:
        """All equivalence nodes reachable through one operation level."""
        arena = self._arena
        eq_view = arena.eq_view
        op_children = arena.op_children
        for op_id in arena.eq_op_ids[self.id]:
            for child_id in op_children[op_id]:
                yield eq_view(child_id)

    def parent_equivalences(self) -> Iterator["EquivalenceNode"]:
        arena = self._arena
        eq_view = arena.eq_view
        op_owner = arena.op_owner
        for op_id in arena.eq_parent_ops[self.id]:
            yield eq_view(op_owner[op_id])

    def __reduce__(self) -> Tuple[Any, Tuple[DagArena, int]]:
        return (_restore_eq_view, (self._arena, self.id))

    def __repr__(self) -> str:
        arena = self._arena
        return (
            f"<Eq {self.id} {arena.eq_label[self.id]} "
            f"rows={arena.eq_props[self.id].rows:.0f}>"
        )
