"""Construction of the multi-query AND-OR DAG from logical expressions.

The builder performs the tasks described in Section 2 of the paper:

1. Each query expression is normalized into *query blocks* (maximal
   select/join regions with selections pushed to the leaves — the optimizer's
   "select push down" rule) and represented in the AND-OR DAG.
2. The join-order space of every block is expanded: one equivalence node per
   connected sub-set of the block's relations, with one join operation node
   per connected binary partition (both input orders).  This yields exactly
   the duplicate-free expanded DAG that transformation-based generation with
   join associativity/commutativity plus the [PGLK97] optimization produces.
3. Equivalent sub-expressions from different queries (or different parts of
   one query) are **unified** through canonical equivalence keys, so the DAG
   of a batch of queries shares every common sub-expression.
4. **Subsumption derivations** are added (see :mod:`repro.dag.subsumption`).
5. Every operation node is priced with the cheapest applicable physical
   algorithm, and every equivalence node receives materialization and reuse
   costs, so that the multi-query optimization algorithms can work purely on
   the DAG.

Correlated nested queries (:class:`repro.algebra.nested.CorrelatedSubqueryFilter`)
are represented with a ``nested_apply`` operation whose invariant input has a
*use multiplier* equal to the estimated number of invocations, plus an
index-augmented variant of the invariant result so that temporary index
selection falls out of the ordinary materialization choice (Section 5).

**Memoized, hash-consed construction.**  Batches with heavy overlap (the
Section 6.2 scale-up chains, the weak-join rebuilds of the subsumption pass)
repeatedly re-derive the same equivalence nodes and re-cost the same join
operations; Section 6.4 of the paper reports exactly this DAG-expansion work
as the dominant MQO overhead.  The builder therefore keeps per-build memo
tables keyed on equivalence-node identity: join operations are costed once
per ``(result, left, right)`` triple, delivered orders and applied-predicate
sets are cached per node, predicate sort keys are interned, and — the big
one — a join equivalence node whose partition enumeration is provably a pure
function of its key (the canonical-adjacency condition, now
:meth:`_BlockShape.canonical`) is skipped entirely when a later block
re-derives it.  Every memo caches a value that recomputation would reproduce
bit-for-bit, so the memoized builder and the reference builder
(``DagBuilder(..., memoize=False)``, which restores the pre-memo *control
flow*; the value-level caches in the estimation and cost layers are shared
by both paths) produce byte-identical DAGs; ``tests/test_differential.py``
enforces this on every seeded workload family and on randomized query
batches.

**Catalog-lifetime sessions.**  A builder can additionally be handed a
:class:`repro.service.session.SessionCache` (``session=...``), the cache
that outlives single builds: scan choices, derived properties, join-op cost
triples, whole partition-enumeration *recipes* for canonical join nodes,
block shapes, weak-join build plans and predicate implications are then
consulted before the per-build memos, making warm rebuilds of overlapping
batches several times cheaper.  Session entries are keyed on canonical
equivalence keys plus the *content* of the input properties objects
(:meth:`~repro.cost.estimation.LogicalProperties.content_key` — IEEE-754 bit
patterns and column order, so float folds over equal-content inputs are
bit-identical; leaf entries additionally embed the relation's statistics
digest) and are invalidated through the catalog's statistics digests and
schema epoch; see :mod:`repro.service.session`.  The reference builder never
uses a session: it remains the oracle that cold, warm, post-invalidation,
and cross-process session builds are fingerprint-compared against
(``tests/test_session_cache.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.algebra.columns import ColumnRef
from repro.algebra.expressions import (
    Aggregate,
    AggregateFunction,
    Expression,
    Join,
    Project,
    Relation,
    Select,
)
from repro.algebra.nested import CorrelatedSubqueryFilter
from repro.algebra.predicates import Comparison, Predicate, and_, conjuncts_of, implies
from repro.catalog.catalog import Catalog
from repro.cost import algorithms as alg
from repro.cost.estimation import Estimator, LogicalProperties
from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.dag.nodes import (
    AggregateOp,
    Dag,
    EquivalenceNode,
    JoinOp,
    NestedApplyOp,
    NoOp,
    Operator,
    ProjectOp,
    ScanOp,
    SelectOp,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.execution.result_cache import ResultCache
    from repro.service.session import SessionCache


@dataclass(frozen=True)
class Query:
    """A named query to be optimized as part of a batch."""

    name: str
    expression: Expression


@dataclass(frozen=True)
class IndexBuildOp(Operator):
    """Derive an index-augmented copy of the child result (temporary index).

    Materializing the equivalence node that carries this operation corresponds
    to materializing the child's result *with* a temporary index on
    ``column`` — the reuse cost of the node is a single index probe instead of
    a full read, which is what makes it attractive for correlated nested-query
    invocations.
    """

    column: ColumnRef
    name: str = "build_index"

    def describe(self) -> str:
        return f"build_index({self.column})"


@dataclass
class _Leaf:
    """One input of a query block before canonicalization."""

    alias: str
    table: Optional[str]
    sub_expression: Optional[Expression]
    predicates: List[Predicate] = field(default_factory=list)


class _BlockShape:
    """Connectivity and enumeration structure of one join block.

    Everything here is a pure function of ``(n, adjacency, predicate
    masks)`` — bit-level combinatorics with no catalog or statistics input —
    so instances are shared across blocks *and across builds* through the
    session cache (:attr:`repro.service.session.SessionCache.block_shapes`).
    Members are memoized lazily: without a session an instance lives for one
    :meth:`DagBuilder._expand_join_space` call and behaves exactly like the
    per-call memo dictionaries it replaced; with a session, repeated block
    shapes (the scale-up chains reuse one shape for all their blocks, and
    warm rebuilds reuse every shape) skip the connectivity sweeps and the
    partition enumeration outright.
    """

    __slots__ = (
        "n",
        "adjacency",
        "pred_masks",
        "subsets",
        "_connectivity",
        "_applicable",
        "_canonical",
        "_partitions",
    )

    def __init__(self, n: int, adjacency: Tuple[int, ...], pred_masks: Tuple[int, ...]) -> None:
        self.n = n
        self.adjacency = adjacency
        self.pred_masks = pred_masks
        self._connectivity: Dict[int, bool] = {}
        self._applicable: Dict[int, Tuple[int, ...]] = {}
        self._canonical: Dict[int, bool] = {}
        self._partitions: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        full_mask = (1 << n) - 1
        connected = self.connected
        subsets = [
            m for m in range(3, full_mask + 1) if bin(m).count("1") >= 2 and connected(m)
        ]
        subsets.sort(key=lambda m: bin(m).count("1"))
        #: All connected sub-sets of two or more leaves, smallest first.
        self.subsets = subsets

    def connected(self, mask: int) -> bool:
        """Whether *mask* is connected in the block's join graph (memoized:
        partition enumeration re-tests the same sub-masks for every superset
        they appear under)."""
        cached = self._connectivity.get(mask)
        if cached is not None:
            return cached
        adjacency = self.adjacency
        start = mask & -mask
        seen = start
        frontier = start
        while frontier:
            reachable = 0
            bits = frontier
            while bits:
                low = bits & -bits
                reachable |= adjacency[low.bit_length() - 1]
                bits ^= low
            new = reachable & mask & ~seen
            if not new:
                break
            seen |= new
            frontier = new
        result = seen == mask
        self._connectivity[mask] = result
        return result

    def applicable_indices(self, mask: int) -> Tuple[int, ...]:
        """Indices of the block predicates fully contained in *mask*."""
        cached = self._applicable.get(mask)
        if cached is None:
            cached = tuple(
                i
                for i, pmask in enumerate(self.pred_masks)
                if pmask and (pmask & mask) == pmask
            )
            self._applicable[mask] = cached
        return cached

    def canonical(self, mask: int) -> bool:
        """True iff the partition enumeration of *mask* is a pure function of
        its equivalence key: the block adjacency restricted to *mask* must
        equal the adjacency induced by the predicates applicable within
        *mask* (which are part of the key).  Artificial cross-product edges
        and edges contributed by predicates spanning aliases outside *mask*
        break the equality — those sub-sets must be re-enumerated per block.
        """
        cached = self._canonical.get(mask)
        if cached is None:
            app = [0] * self.n
            for pmask in self.pred_masks:
                if pmask and (pmask & mask) == pmask:
                    bits = pmask
                    while bits:
                        low = bits & -bits
                        app[low.bit_length() - 1] |= pmask & ~low
                        bits ^= low
            adjacency = self.adjacency
            cached = True
            bits = mask
            while bits:
                low = bits & -bits
                i = low.bit_length() - 1
                bits ^= low
                if adjacency[i] & mask & ~low != app[i]:
                    cached = False
                    break
            self._canonical[mask] = cached
        return cached

    def partitions(self, mask: int) -> Tuple[Tuple[int, int], ...]:
        """Ordered binary partitions (left, right) of *mask*, both sides
        connected, in the enumeration order of the original submask loop."""
        cached = self._partitions.get(mask)
        if cached is None:
            pairs = []
            connected = self.connected
            submask = (mask - 1) & mask
            while submask:
                other = mask ^ submask
                if other and connected(submask) and connected(other):
                    pairs.append((submask, other))
                submask = (submask - 1) & mask
            cached = tuple(pairs)
            self._partitions[mask] = cached
        return cached


def _leaf_count(node: EquivalenceNode) -> int:
    """Number of block leaves under a join equivalence node (1 otherwise)."""
    key = node.key
    if isinstance(key, tuple) and key and key[0] == "join":
        return len(key[1])
    return 1


def _referenced_column_names(expressions: Iterable[Expression]) -> FrozenSet[str]:
    """Collect the names of every column referenced anywhere in the batch.

    The names are collected globally (TPC-D column names carry their table
    prefix, so there is no ambiguity); they drive the early-projection pruning
    of estimated intermediate-result widths.
    """
    names: Set[str] = set()

    def visit_predicate(predicate: Predicate) -> None:
        for column in predicate.columns():
            names.add(column.column)

    def visit(expression: Expression) -> None:
        if isinstance(expression, Select):
            visit_predicate(expression.predicate)
        elif isinstance(expression, Join):
            visit_predicate(expression.predicate)
        elif isinstance(expression, Project):
            for column in expression.columns:
                names.add(column.column)
        elif isinstance(expression, Aggregate):
            for column in expression.group_by:
                names.add(column.column)
            for aggregate in expression.aggregates:
                names.add(aggregate.alias)
                if aggregate.column is not None:
                    names.add(aggregate.column.column)
        elif isinstance(expression, CorrelatedSubqueryFilter):
            for predicate in expression.correlation:
                visit_predicate(predicate)
            names.add(expression.outer_column.column)
            names.add(expression.aggregate.alias)
            if expression.aggregate.column is not None:
                names.add(expression.aggregate.column.column)
        for child in expression.children():
            visit(child)

    for expression in expressions:
        visit(expression)
    return frozenset(names)


#: One recorded join operation of a canonical partition-enumeration recipe:
#: ``(left key id, left props id, right key id, right props id, operator,
#: total cost)``.  See :meth:`DagBuilder._replay_recipe`.
RecipeEntry = Tuple[int, int, int, int, JoinOp, float]


class DagBuilder:
    """Builds the combined AND-OR DAG for a batch of queries."""

    def __init__(
        self,
        catalog: Catalog,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        enable_subsumption: bool = True,
        max_block_relations: int = 14,
        prune_unreferenced_columns: bool = True,
        memoize: bool = True,
        session: Optional["SessionCache"] = None,
        result_cache: Optional["ResultCache"] = None,
    ) -> None:
        self.catalog = catalog
        self.cost_model = cost_model
        self.estimator = Estimator(catalog)
        self.enable_subsumption = enable_subsumption
        self.max_block_relations = max_block_relations
        #: Early projection: drop columns never referenced by the batch from
        #: the estimated properties, so intermediate-result widths (and hence
        #: materialization/reuse costs) reflect what a real optimizer carrying
        #: pushed-down projections would see.
        self.prune_unreferenced_columns = prune_unreferenced_columns
        self._referenced_columns: Optional[FrozenSet[str]] = None
        self.dag = Dag()
        #: ``memoize=False`` is the reference builder: the exact pre-memo code
        #: path, kept as the oracle for the builder differential suite.  All
        #: memo tables below cache values that are pure functions of
        #: equivalence-node identity within one build, so hits return exactly
        #: what recomputation would.
        self.memoize = memoize
        #: ``(result.id, left.id, right.id)`` triples whose join operation has
        #: already been chosen and added (the triple determines the connecting
        #: predicates and hence the ``choose_join`` outcome).
        self._join_op_memo: Optional[Set[Tuple[int, int, int]]] = set() if memoize else None  # repro-lint: ok(M001) keyed on this dag's node ids; dies with the builder, nothing to invalidate
        #: Ids of join equivalence nodes whose partition enumeration is a pure
        #: function of their key and has been performed once already.
        self._expanded_joins: Optional[Set[int]] = set() if memoize else None  # repro-lint: ok(M001) keyed on this dag's node ids; dies with the builder, nothing to invalidate
        #: ``(weakened leaf selections, join predicates)`` -> weak join node
        #: id, for the subsumption pass.
        self._weak_join_memo: Optional[Dict[Tuple[object, ...], Optional[int]]] = {} if memoize else None  # repro-lint: ok(M001) keyed on this dag's nodes; dies with the builder, nothing to invalidate
        #: Per-build :class:`_BlockShape` sharing for sessionless memoized
        #: builds (the scale-up chains reuse one shape across all their
        #: blocks); with a session the catalog-lifetime ``block_shapes``
        #: cache takes precedence.  Shapes are pure functions of their key.
        # repro-lint: ok(M001) pure function of the shape key; dies with the builder
        self._shape_memo: Optional[Dict[Tuple[int, Tuple[int, ...], Tuple[int, ...]], _BlockShape]] = (
            {} if memoize else None
        )
        # repro-lint: ok(M001) per-node pure derivation memo; dies with the builder
        self._applicable_memo: Optional[Dict[int, FrozenSet[Predicate]]] = (
            {} if memoize else None
        )
        # repro-lint: ok(M001) per-node pure derivation memo; dies with the builder
        self._delivered_order_memo: Optional[Dict[int, Tuple[ColumnRef, ...]]] = (
            {} if memoize else None
        )
        #: Interned ``str(predicate)`` sort keys (used by every deterministic
        #: ``sorted(..., key=str)`` in the builder and the subsumption pass;
        #: pure caching, so it is active in the reference builder too).
        self._pred_str: Dict[Predicate, str] = {}  # repro-lint: ok(M001) pure str(predicate) interning; value is a function of the key alone
        #: Catalog-lifetime fragment cache (:mod:`repro.service.session`),
        #: consulted *before* the per-build memos above so warm rebuilds of
        #: overlapping batches skip scan/join costing, property derivation,
        #: and — via join recipes — whole partition enumerations.  ``None``
        #: keeps the builder per-build only; the reference builder never uses
        #: a session (it is the oracle the session path is checked against).
        if session is not None:
            if not memoize:
                raise ValueError("the reference builder (memoize=False) cannot use a session cache")
            if session.catalog is not catalog:
                raise ValueError("session cache is bound to a different catalog")
            if session.cost_model is not cost_model:
                raise ValueError("session cache is bound to a different cost model")
        self._session = session
        #: Cross-batch executed-result store (:mod:`repro.execution.result_cache`).
        #: When attached, :meth:`build` injects cached intermediates as
        #: reuse-cost base derivations after the subsumption pass; ``None``
        #: (the default, and the only cache-off code path) builds exactly as
        #: before.  Bound to the same session so invalidation is unified.
        if result_cache is not None:
            if session is None:
                raise ValueError("a result cache requires a session cache")
            if result_cache.session is not session:
                raise ValueError("result cache is bound to a different session cache")
        self._result_cache = result_cache
        # Per-build session annotations, (re)initialized in :meth:`build`:
        # equivalence-node id -> interned canonical-key id / properties id /
        # relation-dependency id, interned-key id -> node id, and the
        # per-table prune-tag cache.  See :meth:`_register_id`.
        self._node_kid: Dict[int, int] = {}
        self._node_pid: Dict[int, int] = {}
        self._node_deps: Dict[int, int] = {}
        self._kid_node: Dict[int, int] = {}
        self._table_tag_cache: Dict[str, Tuple[Optional[FrozenSet[str]], int, int]] = {}
        self._build_deps_id = 0 if session is None else session.empty_deps_id

    def _pred_key(self, predicate: Predicate) -> str:
        """Cached ``str(predicate)`` for deterministic predicate sorting."""
        key = self._pred_str.get(predicate)
        if key is None:
            key = str(predicate)
            self._pred_str[predicate] = key
        return key

    # ------------------------------------------------------------------
    # Session-cache plumbing (no-ops unless a SessionCache is attached)
    # ------------------------------------------------------------------
    def _register_id(self, eq_id: int, deps_id: int, kid: Optional[int] = None) -> None:
        """Annotate equivalence node *eq_id* with its session ids (key,
        properties, deps).

        Every equivalence node except the pseudo-root passes through here
        exactly once, at creation; the annotations are what lets the join
        caches key on stable canonical ids instead of per-build node ids.
        """
        session = self._session
        if eq_id in self._node_kid:
            return
        arena = self.dag.arena
        if kid is None:
            kid = session.key_id(arena.eq_key[eq_id])
        self._node_kid[eq_id] = kid
        self._node_pid[eq_id] = session.props_id(arena.eq_props[eq_id])
        self._node_deps[eq_id] = deps_id
        self._kid_node.setdefault(kid, eq_id)
        self._build_deps_id = session.union_deps(self._build_deps_id, deps_id)

    def _register_node(
        self, node: EquivalenceNode, deps_id: int, kid: Optional[int] = None
    ) -> None:
        """:meth:`_register_id` for the façade-level construction paths."""
        self._register_id(node.id, deps_id, kid)

    def _leaf_tag_deps(self, table: str) -> Tuple[Optional[FrozenSet[str]], int, int]:
        """Prune tag, deps id, and statistics-digest id of leaves over *table*.

        The tag — the batch-referenced subset of the table's column names —
        is what scan output properties depend on besides the scan key (early
        projection, :meth:`_prune_columns`), so it is part of the scan-cache
        key.  ``None`` marks a pruning-disabled build, keeping it keyed
        apart from a pruning build in which the table merely has no
        referenced columns.  The deps set is the invalidation anchor:
        ``{table}``.  The digest id pins the statistics *content* the leaf
        entry was computed from, so a leaf key can never alias a
        pre-mutation snapshot even if eviction were skipped.
        """
        cached = self._table_tag_cache.get(table)
        if cached is None:
            referenced = self._referenced_columns
            if referenced is None:
                tag: Optional[FrozenSet[str]] = None
            else:
                names = self.catalog.table(table).column_names()
                tag = frozenset(name for name in names if name in referenced)
            deps_id = self._session.deps_id(frozenset((table.lower(),)))
            digest_id = self._session.table_digest_id(table)
            cached = (tag, deps_id, digest_id)
            self._table_tag_cache[table] = cached
        return cached

    def _derived_cached(
        self,
        cache_key: Tuple[object, ...],
        deps_id: int,
        compute: Callable[[], Tuple[LogicalProperties, float]],
    ) -> Tuple[LogicalProperties, float]:
        """Session-cached ``(properties, operation cost)`` of a derived node.

        *compute* is called on a miss and must return the pair; it is the
        single definition of the computation, shared with the sessionless
        path by the callers.
        """
        session = self._session
        entry = session.derived.get(cache_key)
        if entry is not None:
            session.stats.hits += 1
            return entry[0], entry[1]
        session.stats.misses += 1
        props, total = compute()
        session.derived[cache_key] = (props, total, deps_id)
        return props, total

    def session_deps(self) -> FrozenSet[str]:
        """Base relations read by the last build (plan-cache invalidation)."""
        if self._session is None:
            return frozenset()
        return self._session.deps_of(self._build_deps_id)

    def _implies_cached(
        self, stronger: FrozenSet[Predicate], weaker: FrozenSet[Predicate]
    ) -> bool:
        """Session-cached predicate implication (used by the subsumption pass).

        Implication is pure predicate logic — catalog-independent — so the
        cache entries are never invalidated.
        """
        session = self._session
        if session is None:
            return implies(and_(*stronger), and_(*weaker))  # repro-lint: ok(D001) boolean implication is conjunct-order independent
        key = (stronger, weaker)
        cached = session.implications.get(key)
        if cached is None:
            cached = implies(and_(*stronger), and_(*weaker))  # repro-lint: ok(D001) boolean implication is conjunct-order independent
            session.implications[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def build(self, queries: Sequence[Query]) -> Dag:
        """Build and return the combined DAG of *queries*."""
        if not queries:
            raise ValueError("cannot build a DAG for an empty batch of queries")
        if self.prune_unreferenced_columns:
            self._referenced_columns = _referenced_column_names(q.expression for q in queries)
        if self._session is not None:
            # One validation point per build: evict fragments invalidated by
            # catalog changes now, then trust every cache hit below.
            self._session.sync()
            self._session.stats.builds += 1
            self._node_kid = {}
            self._node_pid = {}
            self._node_deps = {}
            self._kid_node = {}
            self._table_tag_cache = {}
            self._build_deps_id = self._session.empty_deps_id
        roots: List[EquivalenceNode] = []
        for query in queries:
            roots.append(self.build_expression(query.expression))
        if self.enable_subsumption:
            # Imported here to avoid a circular import at module load time.
            from repro.dag.subsumption import apply_subsumption

            apply_subsumption(self)
        if self._result_cache is not None:
            from repro.dag.subsumption import inject_cached_results

            inject_cached_results(self)
        pseudo_props = LogicalProperties(1.0, {})
        pseudo_root = self.dag.equivalence(("pseudo-root",), pseudo_props, "pseudo-root")
        self.dag.add_operation(pseudo_root, NoOp(), roots, 0.0)
        self.dag.set_root(pseudo_root, roots)
        self.dag.query_names = [q.name for q in queries]
        self._assign_materialization_costs()
        self.dag.assign_topological_numbers()
        return self.dag

    # ------------------------------------------------------------------
    # Expression dispatch
    # ------------------------------------------------------------------
    def build_expression(self, expression: Expression) -> EquivalenceNode:
        """Build (or reuse) the equivalence node for *expression*."""
        if isinstance(expression, Aggregate):
            child = self.build_expression(expression.child)
            return self._build_aggregate(expression, child)
        if isinstance(expression, Project):
            child = self.build_expression(expression.child)
            return self._build_project(expression, child)
        if isinstance(expression, CorrelatedSubqueryFilter):
            return self._build_correlated(expression)
        if isinstance(expression, (Relation, Select, Join)):
            return self._build_block(expression)
        raise TypeError(f"unsupported expression type: {type(expression).__name__}")

    # ------------------------------------------------------------------
    # Leaves and simple operators
    # ------------------------------------------------------------------
    def scan_equivalence(
        self, table: str, alias: str, predicates: Sequence[Predicate]
    ) -> EquivalenceNode:
        """Equivalence node for scanning *table* with pushed-down *predicates*."""
        stored = self.stored_table(table, alias)
        key = ("scan", table, alias, frozenset(predicates))
        existing = self.dag.find(key)
        if existing is not None:
            return existing
        session = self._session
        if session is not None:
            tag, deps_id, digest_id = self._leaf_tag_deps(table)
            kid = session.key_id(key)
            # The predicate *order* is part of the cache key: ``and_`` folds
            # conjuncts (and the estimator folds selectivities) in call
            # order, and the entry must return exactly what this call would
            # compute.
            cache_key = (kid, tuple(predicates), tag, digest_id)
            entry = session.scans.get(cache_key)
            if entry is not None:
                session.stats.hits += 1
                output, label, operator, total = entry[0], entry[1], entry[2], entry[3]
                node = self.dag.equivalence(
                    key, output, label, base_table=table, scan_alias=alias
                )
                self._register_node(node, deps_id, kid)
                self.dag.add_operation(node, operator, [stored], total)
                return node
            session.stats.misses += 1
        predicate = and_(*predicates) if predicates else None
        output = self._prune_columns(self.estimator.apply_predicate(stored.properties, predicate))
        label = f"scan({alias})" if predicate is None else f"σ[{predicate}]({alias})"
        node = self.dag.equivalence(
            key, output, label, base_table=table, scan_alias=alias
        )
        choice = alg.choose_scan(
            self.cost_model, self.catalog, table, alias, predicate, stored.properties, output
        )
        operator = ScanOp(table, alias, predicate, algorithm=choice.name)
        if session is not None:
            session.scans[cache_key] = (output, label, operator, choice.total, deps_id)
            self._register_node(node, deps_id, kid)
        self.dag.add_operation(node, operator, [stored], choice.total)
        return node

    def stored_table(self, table: str, alias: str) -> EquivalenceNode:
        """The cost-zero leaf equivalence node representing the stored table."""
        key = ("table", table, alias)
        existing = self.dag.find(key)
        if existing is not None:
            return existing
        session = self._session
        if session is None:
            props = self.estimator.base_properties(table, alias)
        else:
            _, deps_id, digest_id = self._leaf_tag_deps(table)
            entry = session.base_props.get((table, alias, digest_id))
            if entry is not None:
                session.stats.hits += 1
                props = entry[0]
            else:
                session.stats.misses += 1
                props = self.estimator.base_properties(table, alias)
                session.base_props[(table, alias, digest_id)] = (props, deps_id)
        node = self.dag.equivalence(
            key, props, f"table({alias})", is_base=True, base_table=table, scan_alias=alias
        )
        if session is not None:
            self._register_node(node, deps_id)
        return node

    def _prune_columns(self, props: LogicalProperties) -> LogicalProperties:
        """Keep only columns referenced somewhere in the batch (early projection).

        Scans still read the full-width base table (their cost uses the stored
        table's true width); only the *carried* width of results is reduced,
        which is what pushed-down projections achieve in a real optimizer.
        """
        if self._referenced_columns is None:
            return props
        kept = {
            ref: stat
            for ref, stat in props.columns.items()
            if ref.column in self._referenced_columns
        }
        if not kept:
            kept = dict(props.columns)
        return LogicalProperties(props.rows, kept)

    def select_equivalence(
        self,
        child: EquivalenceNode,
        predicates: Sequence[Predicate],
        is_subsumption: bool = False,
    ) -> EquivalenceNode:
        """Equivalence node for a selection over an arbitrary child node."""
        predicate = and_(*predicates)
        key = ("select", child.key, frozenset(predicates))
        existing = self.dag.find(key)
        if existing is not None:
            return existing
        def compute() -> Tuple[LogicalProperties, float]:
            output = self.estimator.apply_predicate(child.properties, predicate)
            return output, alg.filter_cost(self.cost_model, child.rows, output.rows).total

        session = self._session
        if session is not None:
            deps_id = self._node_deps[child.id]
            output, total = self._derived_cached(
                ("select", self._node_pid[child.id], tuple(predicates)), deps_id, compute
            )
        else:
            output, total = compute()
        node = self.dag.equivalence(key, output, f"σ[{predicate}]({child.label})")
        if session is not None:
            self._register_node(node, deps_id)
        self.dag.add_operation(
            node, SelectOp(predicate), [child], total, is_subsumption=is_subsumption
        )
        return node

    def _build_project(self, expression: Project, child: EquivalenceNode) -> EquivalenceNode:
        key = ("project", child.key, expression.columns)
        existing = self.dag.find(key)
        if existing is not None:
            return existing
        def compute() -> Tuple[LogicalProperties, float]:
            output = self.estimator.project(child.properties, expression.columns)
            return output, alg.project_cost(self.cost_model, child.rows).total

        session = self._session
        if session is not None:
            deps_id = self._node_deps[child.id]
            output, total = self._derived_cached(
                ("project", self._node_pid[child.id], expression.columns), deps_id, compute
            )
        else:
            output, total = compute()
        node = self.dag.equivalence(key, output, f"π({child.label})")
        if session is not None:
            self._register_node(node, deps_id)
        self.dag.add_operation(node, ProjectOp(expression.columns), [child], total)
        return node

    def _build_aggregate(self, expression: Aggregate, child: EquivalenceNode) -> EquivalenceNode:
        return self.aggregate_equivalence(
            child, expression.group_by, expression.aggregates, expression.name
        )

    def aggregate_equivalence(
        self,
        child: EquivalenceNode,
        group_by: Tuple[ColumnRef, ...],
        aggregates: Tuple[AggregateFunction, ...],
        output_alias: str,
        is_subsumption: bool = False,
    ) -> EquivalenceNode:
        """Equivalence node for a group-by aggregation over *child*."""
        key = ("agg", child.key, tuple(group_by), tuple(aggregates), output_alias)
        existing = self.dag.find(key)
        if existing is not None:
            return existing
        def compute() -> Tuple[LogicalProperties, float]:
            output = self.estimator.aggregate(child.properties, group_by, aggregates, output_alias)
            return output, alg.choose_aggregate(
                self.cost_model, child.properties, group_by, output.rows
            ).total

        session = self._session
        if session is not None:
            deps_id = self._node_deps[child.id]
            kid = session.key_id(key)
            # The key id covers group-by/aggregate tuples and the alias; the
            # child's properties identity covers everything upstream.
            output, total = self._derived_cached(
                ("agg", self._node_pid[child.id], kid), deps_id, compute
            )
        else:
            output, total = compute()
        group_desc = ", ".join(c.column for c in group_by) or "()"
        node = self.dag.equivalence(key, output, f"γ[{group_desc}]({child.label})")
        if session is not None:
            self._register_node(node, deps_id, kid)
        operator = AggregateOp(tuple(group_by), tuple(aggregates), output_alias)
        self.dag.add_operation(
            node, operator, [child], total, is_subsumption=is_subsumption
        )
        return node

    # ------------------------------------------------------------------
    # Correlated nested queries
    # ------------------------------------------------------------------
    def _build_correlated(self, expression: CorrelatedSubqueryFilter) -> EquivalenceNode:
        outer = self.build_expression(expression.outer)
        invariant = self.build_expression(expression.invariant)

        inner_columns = set(invariant.properties.columns)
        inner_corr_cols = []
        outer_corr_cols = []
        for predicate in expression.correlation:
            # ``columns()`` is a frozenset; sorted because the collected lists
            # feed the ``invocations``/``matches_per_probe`` float folds below.
            for column in sorted(predicate.columns()):
                if column in inner_columns:
                    inner_corr_cols.append(column)
                else:
                    outer_corr_cols.append(column)

        invocations = 1.0
        for column in outer_corr_cols:
            invocations *= outer.properties.distinct(column)
        invocations = max(1.0, min(invocations, outer.rows))

        matches_per_probe = invariant.rows
        for column in inner_corr_cols:
            matches_per_probe /= max(1.0, invariant.properties.distinct(column))
        matches_per_probe = max(1.0, matches_per_probe)

        # The index-augmented variant of the invariant result: its reuse cost
        # is a single probe, so materializing it makes correlated invocations
        # cheap.  Temporary index selection is thereby an ordinary
        # materialization decision (Section 5 of the paper).
        index_column = inner_corr_cols[0] if inner_corr_cols else None
        apply_children: List[EquivalenceNode] = [outer]
        multipliers: List[float] = [1.0]
        if index_column is not None:
            indexed = self._indexed_equivalence(invariant, index_column, matches_per_probe)
            apply_children.append(indexed)
        else:
            apply_children.append(invariant)
        multipliers.append(invocations)

        output_rows = max(1.0, min(outer.rows, invocations))
        output = LogicalProperties(output_rows, dict(outer.properties.columns))
        key = (
            "apply",
            outer.key,
            invariant.key,
            tuple(expression.correlation),
            expression.aggregate,
            expression.outer_column,
            expression.op,
        )
        existing = self.dag.find(key)
        if existing is not None:
            return existing
        node = self.dag.equivalence(key, output, f"apply({outer.label})")
        if self._session is not None:
            # Nested-apply costing is recomputed per build (the nested
            # workloads are small); registration keeps the node usable as a
            # join member and folds its relations into the build's deps.
            self._register_node(
                node,
                self._session.union_deps(
                    self._node_deps[outer.id], self._node_deps[invariant.id]
                ),
            )
        per_invocation_cpu = self.cost_model.cpu(0, matches_per_probe).total
        local_cost = invocations * per_invocation_cpu + self.cost_model.cpu(0, outer.rows).total
        operator = NestedApplyOp(
            tuple(expression.correlation),
            invocations,
            aggregate=expression.aggregate,
            outer_column=expression.outer_column,
            comparison=expression.op,
        )
        self.dag.add_operation(node, operator, apply_children, local_cost, multipliers)

        # Alternative derivation: plain correlated evaluation with the
        # correlation predicate pushed into the nested query (the baseline a
        # single-query optimizer would use).  The per-invocation cost touches
        # only the rows matching the correlation value, via base-table indices,
        # and nothing is shared across invocations.  The alternative exists
        # only for equality correlations: with inequality correlations (the
        # modified Q2 of Section 6.1) every invocation matches a large part of
        # the invariant and no cheap pushdown is possible, which is exactly
        # why the paper's Volcano estimate for that query explodes.
        equality_correlation = all(
            isinstance(p, Comparison) and p.op == "=" for p in expression.correlation
        )
        if equality_correlation and inner_corr_cols:
            pushdown_cost = self._correlated_pushdown_cost(invariant, matches_per_probe)
            pushdown_local = invocations * pushdown_cost + self.cost_model.cpu(0, outer.rows).total
            # The invariant stays a child (so executable plans can evaluate the
            # nested query) but with a zero use multiplier: its cost is already
            # folded into the per-invocation pushdown estimate.
            self.dag.add_operation(
                node,
                NestedApplyOp(
                    tuple(expression.correlation),
                    invocations,
                    name="correlated_apply",
                    aggregate=expression.aggregate,
                    outer_column=expression.outer_column,
                    comparison=expression.op,
                ),
                [outer, invariant],
                pushdown_local,
                child_multipliers=[1.0, 0.0],
            )
        return node

    def _correlated_pushdown_cost(
        self, invariant: EquivalenceNode, matches_per_probe: float
    ) -> float:
        """Estimated cost of one correlated invocation of the nested query.

        The correlation value restricts the invariant sub-expression to
        ``matches_per_probe`` rows, fetched through an index probe; each
        matching row then drives index lookups in the remaining relations of
        the nested query.
        """
        leaves = _leaf_count(invariant)
        probe = self.cost_model.index_probe_cost(matches_per_probe, invariant.tuple_width)
        per_row = self.cost_model.index_probe_cost(1.0, invariant.tuple_width)
        return probe.total + matches_per_probe * max(0, leaves - 1) * per_row.total

    def _indexed_equivalence(
        self, child: EquivalenceNode, column: ColumnRef, matches_per_probe: float
    ) -> EquivalenceNode:
        """An index-augmented copy of *child* (see :class:`IndexBuildOp`)."""
        key = ("indexed", child.key, column)
        existing = self.dag.find(key)
        if existing is not None:
            return existing
        node = self.dag.equivalence(key, child.properties, f"indexed[{column}]({child.label})")
        if self._session is not None:
            self._register_node(node, self._node_deps[child.id])
        build_cost = self.cost_model.index_build_cost(child.rows, child.tuple_width)
        self.dag.add_operation(node, IndexBuildOp(column), [child], build_cost.total)
        node.reuse_cost = self.cost_model.index_probe_cost(
            matches_per_probe, child.tuple_width
        ).total
        node.created_by_subsumption = False
        return node

    # ------------------------------------------------------------------
    # Join blocks
    # ------------------------------------------------------------------
    def _build_block(self, expression: Expression) -> EquivalenceNode:
        leaves: List[_Leaf] = []
        join_predicates: List[Predicate] = []
        self._extract(expression, leaves, join_predicates)
        if len(leaves) > self.max_block_relations:
            raise ValueError(
                f"query block has {len(leaves)} relations; the join-space expansion "
                f"is limited to {self.max_block_relations}"
            )

        mapping = self._canonical_aliases(leaves)
        leaf_ids: Dict[str, int] = {}
        for leaf in leaves:
            canonical = mapping[leaf.alias]
            predicates = [p.rename(mapping) for p in leaf.predicates]
            if leaf.table is not None:
                node = self.scan_equivalence(leaf.table, canonical, predicates)
            else:
                node = self.build_expression(leaf.sub_expression)
                if predicates:
                    node = self.select_equivalence(node, predicates)
            leaf_ids[canonical] = node.id

        renamed_joins = [p.rename(mapping) for p in join_predicates]
        aliases = [mapping[leaf.alias] for leaf in leaves]
        if len(aliases) == 1:
            return self.dag.arena.eq_view(leaf_ids[aliases[0]])
        return self.dag.arena.eq_view(
            self._expand_join_space(aliases, leaf_ids, renamed_joins)
        )

    def _extract(
        self, expression: Expression, leaves: List[_Leaf], join_predicates: List[Predicate]
    ) -> None:
        """Flatten a select/join region into block leaves and join predicates."""
        if isinstance(expression, Relation):
            leaves.append(_Leaf(expression.name, expression.table, None))
            return
        if isinstance(expression, Join):
            self._extract(expression.left, leaves, join_predicates)
            self._extract(expression.right, leaves, join_predicates)
            self._distribute(expression.predicate, leaves, join_predicates)
            return
        if isinstance(expression, Select):
            self._extract(expression.child, leaves, join_predicates)
            self._distribute(expression.predicate, leaves, join_predicates)
            return
        alias = getattr(expression, "name", None) or f"subquery{len(leaves)}"
        leaves.append(_Leaf(alias, None, expression))

    @staticmethod
    def _distribute(
        predicate: Predicate, leaves: List[_Leaf], join_predicates: List[Predicate]
    ) -> None:
        by_alias = {leaf.alias: leaf for leaf in leaves}
        for conjunct in conjuncts_of(predicate):
            relations = conjunct.relations()
            if len(relations) == 1:
                alias = next(iter(relations))
                if alias in by_alias:
                    by_alias[alias].predicates.append(conjunct)
                    continue
            join_predicates.append(conjunct)

    @staticmethod
    def _canonical_aliases(leaves: Sequence[_Leaf]) -> Dict[str, str]:
        """Canonicalize aliases so identical sub-expressions unify across queries.

        A base table referenced once in the block is addressed by its table
        name; further occurrences get a ``#k`` suffix.  Opaque (non-base)
        leaves keep their own alias.
        """
        counts: Dict[str, int] = {}
        for leaf in leaves:
            if leaf.table is not None:
                counts[leaf.table] = counts.get(leaf.table, 0) + 1
        seen: Dict[str, int] = {}
        mapping: Dict[str, str] = {}
        for leaf in leaves:
            if leaf.table is None:
                mapping[leaf.alias] = leaf.alias
                continue
            occurrence = seen.get(leaf.table, 0)
            seen[leaf.table] = occurrence + 1
            if counts[leaf.table] == 1:
                mapping[leaf.alias] = leaf.table
            else:
                mapping[leaf.alias] = leaf.table if occurrence == 0 else f"{leaf.table}#{occurrence + 1}"
        return mapping

    def _expand_join_space(
        self,
        aliases: Sequence[str],
        leaf_ids: Dict[str, int],
        join_predicates: Sequence[Predicate],
    ) -> int:
        """Create one equivalence node per connected sub-set of the block.

        Operates entirely in arena-id space (``leaf_ids`` maps canonical
        aliases to equivalence ids, the return value is the id of the
        full-block node): the expansion enumerates thousands of sub-sets and
        partitions per block, so no façade views are materialized here.

        Hash-consing: when a sub-set's equivalence node was already fully
        enumerated by an earlier block (36 overlapping chain queries and the
        weak-join rebuilds of the subsumption pass hit this constantly), its
        partition enumeration is skipped outright instead of re-costing every
        join only for ``add_operation`` to deduplicate it.  The skip is exact
        only when the enumeration is a pure function of the node's key, i.e.
        when the block adjacency restricted to the sub-set equals the
        adjacency induced by the sub-set's own applicable predicates — the
        artificial cross-product edges added below, and edges of predicates
        spanning aliases outside the sub-set, are block-dependent, so sub-sets
        relying on them are always re-enumerated (``add_operation`` keeps that
        correct, merely slower).
        """
        order = list(aliases)
        index_of = {alias: i for i, alias in enumerate(order)}
        n = len(order)
        alias_set = set(order)

        # Join graph (adjacency as bitmasks).  Predicates referencing aliases
        # outside the block (e.g. correlation columns) still connect the block
        # aliases they mention.
        adjacency = [0] * n
        pred_masks: List[Tuple[int, Predicate]] = []
        for predicate in join_predicates:
            members = [index_of[a] for a in predicate.relations() if a in alias_set]  # repro-lint: ok(D001) members feed commutative bitmask ORs only
            mask = 0
            for member in members:
                mask |= 1 << member
            pred_masks.append((mask, predicate))
            for a, b in itertools.combinations(members, 2):
                adjacency[a] |= 1 << b
                adjacency[b] |= 1 << a
        # Make the graph connected (cross products where unavoidable).
        component = self._components(n, adjacency)
        representatives = {}
        for i, comp in enumerate(component):
            representatives.setdefault(comp, i)
        reps = sorted(representatives.values())
        for a, b in zip(reps, reps[1:]):
            adjacency[a] |= 1 << b
            adjacency[b] |= 1 << a

        # Connectivity, applicability, canonicality and partition enumeration
        # all depend only on the adjacency and predicate bitmasks — one
        # shared (and, with a session, catalog-lifetime) _BlockShape serves
        # every block with the same shape.
        session = self._session
        shape_key = (n, tuple(adjacency), tuple(pmask for pmask, _ in pred_masks))
        shape: Optional[_BlockShape] = None
        if session is not None:
            shape = session.block_shapes.get(shape_key)
        elif self._shape_memo is not None:
            shape = self._shape_memo.get(shape_key)
        if shape is None:
            shape = _BlockShape(*shape_key)
            if session is not None:
                session.block_shapes[shape_key] = shape
            elif self._shape_memo is not None:
                self._shape_memo[shape_key] = shape

        arena = self.dag.arena
        eq_key = arena.eq_key
        by_key = arena.by_key
        nodes_by_mask: Dict[int, int] = {}
        for i, alias in enumerate(order):
            nodes_by_mask[1 << i] = leaf_ids[alias]
        full_mask = (1 << n) - 1

        # The canonical identity of every sub-set — equivalence key,
        # applicable predicates, interned key id — is a pure function of the
        # ordered leaf keys and block predicates, so it too survives across
        # builds (filled lazily the first time each block shape + leaf
        # combination is expanded).
        mask_identity: Optional[Dict[int, Tuple[Hashable, FrozenSet[Predicate], int]]] = None
        if session is not None:
            block_sig = (
                shape_key,
                tuple(self._node_kid[leaf_ids[a]] for a in order),
                tuple(p for _, p in pred_masks),
            )
            mask_identity = session.block_keys.get(block_sig)
            if mask_identity is None:
                mask_identity = {}
                session.block_keys[block_sig] = mask_identity

        expanded = self._expanded_joins
        # Per-block memo of the raw (pre-selectivity) property fold, keyed by
        # member bitmask — see :meth:`_raw_join_fold`.
        fold_memo: Dict[int, LogicalProperties] = {}
        for mask in shape.subsets:
            kid = deps_id = None
            identity = mask_identity.get(mask) if mask_identity is not None else None
            if identity is None:
                predicates = frozenset(pred_masks[i][1] for i in shape.applicable_indices(mask))
                member_keys = frozenset(
                    eq_key[nodes_by_mask[1 << i]] for i in range(n) if mask & (1 << i)
                )
                key = ("join", member_keys, predicates)
                if mask_identity is not None:
                    kid = session.key_id(key)
                    mask_identity[mask] = (key, predicates, kid)
            else:
                key, predicates, kid = identity
            canonical = shape.canonical(mask) if expanded is not None else False
            node_id = by_key.get(key)
            fresh = node_id is None
            if fresh:
                if session is not None:
                    members = [nodes_by_mask[1 << i] for i in range(n) if mask & (1 << i)]
                    deps_id = self._node_deps[members[0]]
                    for member in members[1:]:
                        deps_id = session.union_deps(deps_id, self._node_deps[member])
                    # Properties are keyed on the ordered member properties —
                    # the row estimate is a float fold over the members in
                    # block-alias order, so two blocks listing the same
                    # sub-set in different orders cache separately.
                    prop_key = (kid, tuple(self._node_pid[m] for m in members))
                    entry = session.join_props.get(prop_key)
                    if entry is not None:
                        session.stats.hits += 1
                        props = entry[0]
                    else:
                        session.stats.misses += 1
                        props = self._join_properties(mask, nodes_by_mask, predicates, fold_memo)
                        session.join_props[prop_key] = (props, deps_id)
                else:
                    props = self._join_properties(mask, nodes_by_mask, predicates, fold_memo)
                labels = "⋈".join(order[i] for i in range(n) if mask & (1 << i))
                node_id = arena.add_equivalence(key, props, labels)
                if session is not None:
                    self._register_id(node_id, deps_id, kid)
            elif expanded is not None and node_id in expanded and canonical:
                # The node's full, key-determined operation set is already in
                # place (it was marked only after a canonical enumeration);
                # this block's enumeration would re-derive exactly that set.
                nodes_by_mask[mask] = node_id
                continue
            nodes_by_mask[mask] = node_id
            record: Optional[List[RecipeEntry]] = None
            if session is not None and canonical:
                recipe_key = (kid, self._node_pid[node_id])
                recipe = session.join_recipes.get(recipe_key)
                if recipe is not None:
                    if self._replay_recipe(node_id, recipe[0]):
                        session.stats.hits += 1
                        expanded.add(node_id)
                        continue
                    # Quarantine-and-rebuild: a recipe that fails validation
                    # (stale after a targeted invalidation, or structurally
                    # damaged by a fault) is dropped so it cannot fail again;
                    # the live enumeration below rebuilds the canonical set.
                    if dict.__contains__(session.join_recipes, recipe_key):
                        dict.__delitem__(session.join_recipes, recipe_key)
                    session.stats.recipe_quarantines += 1
                if fresh:
                    # Record only on fresh nodes: their per-build join-op memo
                    # is necessarily empty, so every partition below really
                    # computes (or cache-fetches) its outcome and the recipe
                    # is the complete canonical operation set.
                    record = []
            # Enumerate ordered binary partitions (left, right).
            for submask, other in shape.partitions(mask):
                self._add_join_operation(
                    node_id, nodes_by_mask[submask], nodes_by_mask[other], predicates, record
                )
            if record is not None:
                session.join_recipes[(kid, self._node_pid[node_id])] = (tuple(record), deps_id)
            if expanded is not None and canonical:
                expanded.add(node_id)
        return nodes_by_mask[full_mask]

    def _replay_recipe(self, node_id: int, entries: Tuple[RecipeEntry, ...]) -> bool:
        """Replay a cached canonical partition enumeration onto *node_id*.

        Validates first, replays second: every referenced child must exist in
        this build and carry the *same properties object* as at record time
        (otherwise a live enumeration would not reproduce the recorded costs
        bit-for-bit — e.g. right after a targeted invalidation recomputed a
        leaf).  Returns ``False`` without side effects when validation fails —
        including on *structurally* malformed entries (wrong shape or types),
        which a damaged cache value can produce; the caller quarantines the
        recipe and rebuilds from the live enumeration.
        """
        kid_node = self._kid_node
        node_pid = self._node_pid
        resolved = []
        try:
            for lkid, lpid, rkid, rpid, operator, total in entries:
                if not isinstance(operator, JoinOp) or not isinstance(total, float):
                    return False
                left = kid_node.get(lkid)
                right = kid_node.get(rkid)
                if left is None or right is None:
                    return False
                if node_pid[left] != lpid or node_pid[right] != rpid:
                    return False
                resolved.append((left, right, operator, total))
        except (TypeError, ValueError):
            return False
        memo = self._join_op_memo
        append_operation = self.dag.arena.append_operation
        for left, right, operator, total in resolved:
            triple = (node_id, left, right)
            if triple in memo:
                continue
            memo.add(triple)
            append_operation(node_id, operator, (left, right), total)
        return True

    @staticmethod
    def _components(n: int, adjacency: List[int]) -> List[int]:
        component = [-1] * n
        current = 0
        for start in range(n):
            if component[start] >= 0:
                continue
            stack = [start]
            component[start] = current
            while stack:
                node = stack.pop()
                bits = adjacency[node]
                while bits:
                    low = bits & -bits
                    neighbour = low.bit_length() - 1
                    bits ^= low
                    if component[neighbour] < 0:
                        component[neighbour] = current
                        stack.append(neighbour)
            current += 1
        return component

    def _raw_join_fold(
        self,
        mask: int,
        nodes_by_mask: Dict[int, int],
        fold_memo: Dict[int, LogicalProperties],
    ) -> LogicalProperties:
        """The pre-selectivity property fold over *mask*'s members.

        The historical fold is left-associated over the members in block-alias
        order, so ``fold(mask) = join(fold(mask without its highest member),
        props[highest member])`` — which lets one per-block memo share every
        fold prefix across the (heavily overlapping) sub-sets of the block
        while producing bit-identical estimates.  Prefix masks need not be
        connected sub-sets themselves; the recursion bottoms out at the
        single-alias leaves, which are always present in ``nodes_by_mask``.
        """
        cached = fold_memo.get(mask)
        if cached is not None:
            return cached
        if mask & (mask - 1) == 0:
            props = self.dag.arena.eq_props[nodes_by_mask[mask]]
        else:
            top = 1 << (mask.bit_length() - 1)
            props = self.estimator.join(
                self._raw_join_fold(mask ^ top, nodes_by_mask, fold_memo),
                self.dag.arena.eq_props[nodes_by_mask[top]],
                [],
            )
        fold_memo[mask] = props
        return props

    def _join_properties(
        self,
        mask: int,
        nodes_by_mask: Dict[int, int],
        predicates: FrozenSet[Predicate],
        fold_memo: Dict[int, LogicalProperties],
    ) -> LogicalProperties:
        """Estimate properties of a join sub-set directly from its leaves,
        so the estimate does not depend on which partition created the node."""
        props = self._raw_join_fold(mask, nodes_by_mask, fold_memo)
        if not predicates:
            return props.with_rows(props.rows * 1.0)
        selectivity = 1.0
        # Sorted: ``predicates`` is a frozenset, and float multiplication is
        # not associative — iterating in hash order made the row estimate
        # (and thus near-tie plan choices on the correlated Q2 workloads)
        # vary with PYTHONHASHSEED from run to run.
        for predicate in sorted(predicates, key=self._pred_key):
            selectivity *= self.estimator.predicate_selectivity(predicate, props)
        return props.with_rows(props.rows * selectivity)

    def _add_join_operation(
        self,
        node_id: int,
        left_id: int,
        right_id: int,
        all_predicates: FrozenSet[Predicate],
        record: Optional[List[RecipeEntry]] = None,
    ) -> None:
        # ``all_predicates`` is always the result node's key predicate set, so
        # the triple determines the connecting predicates and the
        # ``choose_join`` outcome — repeats (the same partition re-derived by
        # an overlapping query) can skip the costing entirely.
        arena = self.dag.arena
        memo = self._join_op_memo
        if memo is not None:
            triple = (node_id, left_id, right_id)
            if triple in memo:
                return
            memo.add(triple)
            # The triple memo subsumes the arena's duplicate-signature probe
            # for join operations (the operator is a function of the triple),
            # so the memoized path appends unchecked; the reference builder
            # keeps the probing path below.
            add_operation = arena.append_operation
        else:
            add_operation = arena.add_operation
        session = self._session
        if session is not None:
            node_kid = self._node_kid
            node_pid = self._node_pid
            # Key and properties identities of all three nodes: the key
            # triple determines the connecting predicates, the properties
            # determine the ``choose_join`` costs.
            cache_key = (
                node_kid[node_id],
                node_kid[left_id],
                node_kid[right_id],
                node_pid[node_id],
                node_pid[left_id],
                node_pid[right_id],
            )
            entry = session.join_ops.get(cache_key)
            if entry is not None:
                session.stats.hits += 1
                operator, total = entry[0], entry[1]
                if record is not None:
                    record.append(
                        (node_kid[left_id], node_pid[left_id],
                         node_kid[right_id], node_pid[right_id],
                         operator, total)
                    )
                add_operation(node_id, operator, (left_id, right_id), total)
                return
            session.stats.misses += 1
        left_preds = self._applicable_to(left_id)
        right_preds = self._applicable_to(right_id)
        remaining: FrozenSet[Predicate] = all_predicates
        if left_preds:
            remaining = remaining - left_preds
        if right_preds:
            remaining = remaining - right_preds
        # Sorting matters only past one element (the common case is 0 or 1).
        if len(remaining) > 1:
            connecting = tuple(sorted(remaining, key=self._pred_key))
        else:
            connecting = tuple(remaining)  # repro-lint: ok(D001) 0 or 1 element; no order to leak
        choice = alg.choose_join(
            self.cost_model,
            self.catalog,
            arena.eq_props[left_id],
            arena.eq_props[right_id],
            connecting,
            arena.eq_props[node_id].rows,
            left_order=self._delivered_order(left_id),
            right_order=self._delivered_order(right_id),
            right_base_table=arena.eq_base_table[right_id],
            right_alias=arena.eq_scan_alias[right_id],
        )
        operator = JoinOp(connecting, algorithm=choice.name)
        if session is not None:
            session.join_ops[cache_key] = (
                operator, choice.total, self._node_deps[node_id]
            )
            if record is not None:
                record.append(
                    (node_kid[left_id], node_pid[left_id],
                     node_kid[right_id], node_pid[right_id],
                     operator, choice.total)
                )
        add_operation(node_id, operator, (left_id, right_id), choice.total)

    def _applicable_to(self, eq_id: int) -> FrozenSet[Predicate]:
        """Predicates already applied inside *eq_id* (join sub-set or leaf)."""
        memo = self._applicable_memo
        if memo is not None:
            cached = memo.get(eq_id)
            if cached is not None:
                return cached
        key = self.dag.arena.eq_key[eq_id]
        if isinstance(key, tuple) and key and key[0] == "join":
            applied = key[2]
        else:
            applied = frozenset()
        if memo is not None:
            memo[eq_id] = applied
        return applied

    def _delivered_order(self, eq_id: int) -> Tuple[ColumnRef, ...]:
        """Sort order delivered by a scan of a clustered base table.

        Base-table scans inherit the clustered-index order, which is what
        makes merge joins on primary-key join columns cheap without explicit
        sorts.  Intermediate joins conservatively deliver no order.
        """
        memo = self._delivered_order_memo
        if memo is not None:
            cached = memo.get(eq_id)
            if cached is not None:
                return cached
        arena = self.dag.arena
        base_table = arena.eq_base_table[eq_id]
        scan_alias = arena.eq_scan_alias[eq_id]
        if base_table is None or scan_alias is None:
            order: Tuple[ColumnRef, ...] = ()
        else:
            index = self.catalog.table(base_table).clustered_index()
            order = () if index is None else (ColumnRef(scan_alias, index.column),)
        if memo is not None:
            memo[eq_id] = order
        return order

    # ------------------------------------------------------------------
    # Materialization costs
    # ------------------------------------------------------------------
    def _assign_materialization_costs(self) -> None:
        arena = self.dag.arena
        eq_props = arena.eq_props
        eq_mat_cost = arena.eq_mat_cost
        eq_reuse_cost = arena.eq_reuse_cost
        cost_model = self.cost_model
        for eq_id, is_base in enumerate(arena.eq_is_base):
            if is_base:
                continue
            props = eq_props[eq_id]
            rows = props.rows
            width = props.tuple_width
            eq_mat_cost[eq_id] = cost_model.materialization_cost(rows, width).total
            if eq_reuse_cost[eq_id] == 0.0:
                eq_reuse_cost[eq_id] = cost_model.reuse_cost(rows, width).total
