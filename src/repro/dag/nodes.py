"""Nodes and container for the AND-OR DAG.

The container (:class:`Dag`) is shared by every optimization algorithm in
:mod:`repro.optimizer`.  Equivalence nodes carry the estimated logical
properties of their result plus the materialization and reuse costs that the
multi-query algorithms trade off; operation nodes carry the local execution
cost of the operation (the chosen physical algorithm's cost) so that the
paper's additive cost recurrence

    cost(o) = exec(o) + Σ_i multiplier_i * C(e_i)
    cost(e) = min { cost(o) | o ∈ children(e) }        (0 for base tables)

can be evaluated by all algorithms without re-deriving physical details.

Per-child *use multipliers* generalize the recurrence for the nested-query
extension of Section 5: an input that is probed once per invocation of a
correlated sub-query has a multiplier equal to the estimated number of
invocations, which is exactly how the paper multiplies materialization
benefits for invariant sub-expressions.

**Storage.**  Since PR 8 the nodes themselves live in a struct-of-arrays
:class:`~repro.dag.arena.DagArena` owned by the :class:`Dag`:
:class:`EquivalenceNode` and :class:`OperationNode` (defined in
:mod:`repro.dag.arena`, re-exported here) are canonical two-slot *views*
over dense arena ids, so the public object API is unchanged while the
builder, subsumption pass, and cost engine operate on flat id-indexed
columns.  ``Dag.add_operation`` deduplicates repeated derivations with one
interned-signature dict probe instead of the historical per-node scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:
    from repro.optimizer.engine import CostEngine

from repro.algebra.columns import ColumnRef
from repro.algebra.expressions import AggregateFunction
from repro.algebra.predicates import Predicate
from repro.cost.estimation import LogicalProperties
from repro.dag.arena import DagArena, DagError, EquivalenceNode, OperationNode

__all__ = [
    "Operator",
    "TableOp",
    "ScanOp",
    "SelectOp",
    "ProjectOp",
    "JoinOp",
    "AggregateOp",
    "NestedApplyOp",
    "CachedReadOp",
    "NoOp",
    "OperationNode",
    "EquivalenceNode",
    "DagArena",
    "DagError",
    "Dag",
]


# ---------------------------------------------------------------------------
# Operator payloads
# ---------------------------------------------------------------------------

class Operator:
    """Base class of the logical operator carried by an operation node."""

    name: str = "operator"

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class TableOp(Operator):
    """The stored base table itself (leaf equivalence nodes carry no ops; this
    operator appears only in executable plans, never in the DAG)."""

    table: str
    name: str = "table"

    def describe(self) -> str:
        return f"table({self.table})"


@dataclass(frozen=True)
class ScanOp(Operator):
    """Scan of a base table with an optional pushed-down filter."""

    table: str
    alias: str
    predicate: Optional[Predicate] = None
    algorithm: str = "table_scan"
    name: str = "scan"

    def describe(self) -> str:
        if self.predicate is None:
            return f"scan({self.table})"
        return f"scan({self.table}, σ[{self.predicate}])"


@dataclass(frozen=True)
class SelectOp(Operator):
    """Selection over an intermediate result (including subsumption selects)."""

    predicate: Predicate
    name: str = "select"

    def describe(self) -> str:
        return f"σ[{self.predicate}]"


@dataclass(frozen=True)
class ProjectOp(Operator):
    """Projection onto a set of columns."""

    columns: Tuple[ColumnRef, ...]
    name: str = "project"

    def describe(self) -> str:
        return "π[" + ", ".join(str(c) for c in self.columns) + "]"


@dataclass(frozen=True)
class JoinOp(Operator):
    """Inner join of the two child equivalence nodes."""

    predicates: Tuple[Predicate, ...]
    algorithm: str = "block_nested_loops_join"
    name: str = "join"

    def describe(self) -> str:
        preds = " AND ".join(str(p) for p in self.predicates) or "TRUE"
        return f"⋈[{preds}]/{self.algorithm}"


@dataclass(frozen=True)
class AggregateOp(Operator):
    """Group-by aggregation of the child equivalence node."""

    group_by: Tuple[ColumnRef, ...]
    aggregates: Tuple[AggregateFunction, ...]
    output_alias: str = "agg"
    name: str = "aggregate"

    def describe(self) -> str:
        group = ", ".join(str(c) for c in self.group_by) or "()"
        return f"γ[{group}]"


@dataclass(frozen=True)
class NestedApplyOp(Operator):
    """Correlated invocation of a nested sub-query.

    The operator joins the outer input (first child) with the result of the
    correlated sub-query; the invariant part of the sub-query is the second
    child, which is probed once per distinct outer binding (its use
    multiplier).  This is the DAG form of the nested-query extension in
    Section 5 of the paper.  ``aggregate``, ``outer_column`` and ``comparison``
    describe the scalar-subquery filter semantics for the executor.
    """

    correlation: Tuple[Predicate, ...]
    invocations: float
    name: str = "nested_apply"
    aggregate: Optional[AggregateFunction] = None
    outer_column: Optional[ColumnRef] = None
    comparison: str = "="

    def describe(self) -> str:
        return f"apply[{self.invocations:.0f} invocations]"


@dataclass(frozen=True)
class CachedReadOp(Operator):
    """Read a previously executed intermediate from the cross-batch result
    cache (:mod:`repro.execution.result_cache`).

    Injected at build time over scan equivalence nodes whose predicates are
    matched exactly — or *covered* — by a cached entry; ``residual`` is the
    compensating selection of a covering hit (``None`` for an exact hit).
    ``digest`` content-addresses the cached entry; ``rows`` pins the served
    data in the operator itself, so a plan, once built, executes the same
    bytes even if the store entry is evicted or corrupted afterwards.  The
    pinned rows are excluded from equality/hashing/repr — the digest plus
    residual already identify the content.
    """

    digest: str
    table: str
    alias: str
    blocks: int
    row_count: int
    residual: Optional[Predicate] = None
    rows: Tuple[Dict[ColumnRef, object], ...] = field(
        default=(), compare=False, repr=False
    )
    name: str = "cached-read"

    def describe(self) -> str:
        if self.residual is None:
            return f"cached[{self.digest[:12]}]"
        return f"σ[{self.residual}](cached[{self.digest[:12]}])"


@dataclass(frozen=True)
class NoOp(Operator):
    """The pseudo operation at the root of the combined multi-query DAG."""

    name: str = "no-op"

    def describe(self) -> str:
        return "no-op"


# ---------------------------------------------------------------------------
# DAG container
# ---------------------------------------------------------------------------

class Dag:
    """The AND-OR DAG of a batch of queries.

    The DAG is rooted at a pseudo equivalence node (``root``) whose single
    no-op operation has the root equivalence node of every query as an input
    (Section 2.1 of the paper).

    All node storage lives in ``self.arena`` (see :class:`DagArena`); the
    methods below are the object-level façade.  Hot construction paths (the
    builder's join-space expansion, the subsumption pass) bypass the façade
    and call :meth:`add_operation_id` / the arena directly with dense ids.
    """

    if TYPE_CHECKING:
        # Type-only declaration of the dense cost-engine snapshot installed
        # lazily by :func:`repro.optimizer.engine.get_engine`.
        _cost_engine: Tuple[Tuple[int, int], "CostEngine"]

    def __init__(self) -> None:
        self.arena = DagArena()
        self.root: Optional[EquivalenceNode] = None
        self.query_roots: List[EquivalenceNode] = []
        self.query_names: List[str] = []

    # -- construction -----------------------------------------------------------
    def equivalence(
        self,
        key: Hashable,
        properties: LogicalProperties,
        label: str = "",
        is_base: bool = False,
        base_table: Optional[str] = None,
        scan_alias: Optional[str] = None,
    ) -> EquivalenceNode:
        """Return the equivalence node for *key*, creating it if necessary.

        Key-based lookup is the unification mechanism: two queries (or two
        parts of one query) that produce the same canonical key share a single
        equivalence node.
        """
        arena = self.arena
        existing = arena.by_key.get(key)
        if existing is not None:
            return arena.eq_view(existing)
        return arena.eq_view(
            arena.add_equivalence(
                key,
                properties,
                label,
                is_base=is_base,
                base_table=base_table,
                scan_alias=scan_alias,
            )
        )

    def find(self, key: Hashable) -> Optional[EquivalenceNode]:
        """Return the equivalence node for *key* if it exists."""
        eq_id = self.arena.by_key.get(key)
        return None if eq_id is None else self.arena.eq_view(eq_id)

    def find_id(self, key: Hashable) -> Optional[int]:
        """Return the equivalence node *id* for *key* if it exists."""
        return self.arena.by_key.get(key)

    def add_operation(
        self,
        equivalence: EquivalenceNode,
        operator: Operator,
        children: Sequence[EquivalenceNode],
        local_cost: float,
        child_multipliers: Optional[Sequence[float]] = None,
        is_subsumption: bool = False,
    ) -> OperationNode:
        """Add an operation node under *equivalence*, deduplicating repeats.

        Duplicate derivations (same operator, same children) can arise when
        different queries contribute the same sub-expression; they are
        detected against the arena's interned signature table and returned
        instead of re-added, mirroring the hashing-based duplicate detection
        of the Volcano DAG generator.
        """
        op_id = self.arena.add_operation(
            equivalence.id,
            operator,
            tuple(child.id for child in children),
            local_cost,
            tuple(child_multipliers) if child_multipliers is not None else None,
            is_subsumption,
        )
        return self.arena.op_view(op_id)

    def add_operation_id(
        self,
        eq_id: int,
        operator: Operator,
        child_ids: Tuple[int, ...],
        local_cost: float,
        child_multipliers: Optional[Tuple[float, ...]] = None,
        is_subsumption: bool = False,
    ) -> int:
        """:meth:`add_operation` in id space (the hot-path form)."""
        return self.arena.add_operation(
            eq_id, operator, child_ids, local_cost, child_multipliers, is_subsumption
        )

    def set_root(self, root: EquivalenceNode, query_roots: Sequence[EquivalenceNode]) -> None:
        self.root = root
        self.query_roots = list(query_roots)

    # -- access ---------------------------------------------------------------
    def equivalence_nodes(self) -> Tuple[EquivalenceNode, ...]:
        arena = self.arena
        return tuple(arena.eq_view(eq_id) for eq_id in range(arena.num_equivalences))

    def node_by_id(self, node_id: int) -> EquivalenceNode:
        """The equivalence node with the given id (ids are dense ``0..n-1``)."""
        if 0 <= node_id < self.arena.num_equivalences:
            return self.arena.eq_view(node_id)
        raise DagError(f"unknown equivalence node id {node_id}")

    def operation_nodes(self) -> Tuple[OperationNode, ...]:
        arena = self.arena
        return tuple(arena.op_view(op_id) for op_id in range(arena.num_operations))

    def __len__(self) -> int:
        return self.arena.num_equivalences

    @property
    def num_equivalence_nodes(self) -> int:
        return self.arena.num_equivalences

    @property
    def num_operation_nodes(self) -> int:
        return self.arena.num_operations

    # -- structure maintenance ------------------------------------------------
    def assign_topological_numbers(self) -> None:
        """Number equivalence nodes so every descendant precedes its ancestors.

        The greedy algorithm's incremental cost update (Figure 5 of the paper)
        propagates cost changes in this order using a heap keyed on the
        topological number.
        """
        if self.root is None:
            raise DagError("cannot topologically number a DAG without a root")
        self.arena.assign_topological_numbers(self.root.id)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`DagError` on violation."""
        if self.root is None:
            raise DagError("DAG has no root")
        self.assign_topological_numbers()
        arena = self.arena
        eq_topo = arena.eq_topo
        for op_id in range(arena.num_operations):
            owner_topo = eq_topo[arena.op_owner[op_id]]
            child_ids = arena.op_children[op_id]
            for child_id in child_ids:
                if eq_topo[child_id] >= owner_topo:
                    raise DagError(
                        "topological order violated between "
                        f"{arena.eq_view(arena.op_owner[op_id])!r} and child "
                        f"{arena.eq_view(child_id)!r}"
                    )
            if len(arena.op_multipliers[op_id]) != len(child_ids):
                raise DagError(
                    f"multiplier arity mismatch on {arena.op_view(op_id)!r}"
                )
        for eq_id in range(arena.num_equivalences):
            if not arena.eq_op_ids[eq_id] and not arena.eq_is_base[eq_id]:
                raise DagError(
                    f"non-base equivalence node {arena.eq_view(eq_id)!r} has no operations"
                )

    # -- pickling --------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Drop the lazily attached cost-engine snapshot; it is a derived
        structure rebuilt on demand by :func:`repro.optimizer.engine.get_engine`."""
        state = self.__dict__.copy()
        state.pop("_cost_engine", None)
        return state
