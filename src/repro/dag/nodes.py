"""Nodes and container for the AND-OR DAG.

The container (:class:`Dag`) is shared by every optimization algorithm in
:mod:`repro.optimizer`.  Equivalence nodes carry the estimated logical
properties of their result plus the materialization and reuse costs that the
multi-query algorithms trade off; operation nodes carry the local execution
cost of the operation (the chosen physical algorithm's cost) so that the
paper's additive cost recurrence

    cost(o) = exec(o) + Σ_i multiplier_i * C(e_i)
    cost(e) = min { cost(o) | o ∈ children(e) }        (0 for base tables)

can be evaluated by all algorithms without re-deriving physical details.

Per-child *use multipliers* generalize the recurrence for the nested-query
extension of Section 5: an input that is probed once per invocation of a
correlated sub-query has a multiplier equal to the estimated number of
invocations, which is exactly how the paper multiplies materialization
benefits for invariant sub-expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, Iterator, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:
    from repro.optimizer.engine import CostEngine

from repro.algebra.columns import ColumnRef
from repro.algebra.expressions import AggregateFunction
from repro.algebra.predicates import Predicate
from repro.cost.estimation import LogicalProperties


# ---------------------------------------------------------------------------
# Operator payloads
# ---------------------------------------------------------------------------

class Operator:
    """Base class of the logical operator carried by an operation node."""

    name: str = "operator"

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class TableOp(Operator):
    """The stored base table itself (leaf equivalence nodes carry no ops; this
    operator appears only in executable plans, never in the DAG)."""

    table: str
    name: str = "table"

    def describe(self) -> str:
        return f"table({self.table})"


@dataclass(frozen=True)
class ScanOp(Operator):
    """Scan of a base table with an optional pushed-down filter."""

    table: str
    alias: str
    predicate: Optional[Predicate] = None
    algorithm: str = "table_scan"
    name: str = "scan"

    def describe(self) -> str:
        if self.predicate is None:
            return f"scan({self.table})"
        return f"scan({self.table}, σ[{self.predicate}])"


@dataclass(frozen=True)
class SelectOp(Operator):
    """Selection over an intermediate result (including subsumption selects)."""

    predicate: Predicate
    name: str = "select"

    def describe(self) -> str:
        return f"σ[{self.predicate}]"


@dataclass(frozen=True)
class ProjectOp(Operator):
    """Projection onto a set of columns."""

    columns: Tuple[ColumnRef, ...]
    name: str = "project"

    def describe(self) -> str:
        return "π[" + ", ".join(str(c) for c in self.columns) + "]"


@dataclass(frozen=True)
class JoinOp(Operator):
    """Inner join of the two child equivalence nodes."""

    predicates: Tuple[Predicate, ...]
    algorithm: str = "block_nested_loops_join"
    name: str = "join"

    def describe(self) -> str:
        preds = " AND ".join(str(p) for p in self.predicates) or "TRUE"
        return f"⋈[{preds}]/{self.algorithm}"


@dataclass(frozen=True)
class AggregateOp(Operator):
    """Group-by aggregation of the child equivalence node."""

    group_by: Tuple[ColumnRef, ...]
    aggregates: Tuple[AggregateFunction, ...]
    output_alias: str = "agg"
    name: str = "aggregate"

    def describe(self) -> str:
        group = ", ".join(str(c) for c in self.group_by) or "()"
        return f"γ[{group}]"


@dataclass(frozen=True)
class NestedApplyOp(Operator):
    """Correlated invocation of a nested sub-query.

    The operator joins the outer input (first child) with the result of the
    correlated sub-query; the invariant part of the sub-query is the second
    child, which is probed once per distinct outer binding (its use
    multiplier).  This is the DAG form of the nested-query extension in
    Section 5 of the paper.  ``aggregate``, ``outer_column`` and ``comparison``
    describe the scalar-subquery filter semantics for the executor.
    """

    correlation: Tuple[Predicate, ...]
    invocations: float
    name: str = "nested_apply"
    aggregate: Optional[AggregateFunction] = None
    outer_column: Optional[ColumnRef] = None
    comparison: str = "="

    def describe(self) -> str:
        return f"apply[{self.invocations:.0f} invocations]"


@dataclass(frozen=True)
class NoOp(Operator):
    """The pseudo operation at the root of the combined multi-query DAG."""

    name: str = "no-op"

    def describe(self) -> str:
        return "no-op"


# ---------------------------------------------------------------------------
# DAG nodes
# ---------------------------------------------------------------------------

class OperationNode:
    """An AND node: one way of computing its owning equivalence node."""

    __slots__ = (
        "id",
        "operator",
        "children",
        "child_multipliers",
        "equivalence",
        "local_cost",
        "is_subsumption",
        "signature",
    )

    def __init__(
        self,
        node_id: int,
        operator: Operator,
        children: Tuple["EquivalenceNode", ...],
        equivalence: "EquivalenceNode",
        local_cost: float,
        child_multipliers: Optional[Tuple[float, ...]] = None,
        is_subsumption: bool = False,
        signature: Optional[Tuple[object, ...]] = None,
    ) -> None:
        self.id = node_id
        self.operator = operator
        self.children = children
        self.child_multipliers = child_multipliers or (1.0,) * len(children)
        self.equivalence = equivalence
        self.local_cost = float(local_cost)
        self.is_subsumption = is_subsumption
        # ``Dag.add_operation`` already computed the signature for its
        # duplicate check; accept it instead of rebuilding the child-id tuple.
        self.signature = signature or (operator, tuple(c.id for c in children))

    def __repr__(self) -> str:
        kids = ",".join(str(c.id) for c in self.children)
        return f"<Op {self.id} {self.operator.describe()} children=[{kids}]>"


class EquivalenceNode:
    """An OR node: the set of alternative operations producing one result."""

    __slots__ = (
        "id",
        "key",
        "label",
        "operations",
        "parents",
        "properties",
        "mat_cost",
        "reuse_cost",
        "topo_number",
        "is_base",
        "base_table",
        "scan_alias",
        "created_by_subsumption",
    )

    def __init__(
        self,
        node_id: int,
        key: Hashable,
        properties: LogicalProperties,
        label: str = "",
        is_base: bool = False,
        base_table: Optional[str] = None,
        scan_alias: Optional[str] = None,
    ) -> None:
        self.id = node_id
        self.key = key
        self.label = label or str(key)
        self.operations: List[OperationNode] = []
        self.parents: List[OperationNode] = []
        self.properties = properties
        self.mat_cost = 0.0
        self.reuse_cost = 0.0
        self.topo_number = -1
        self.is_base = is_base
        #: Base table name if this node is the stored table or a plain scan of
        #: it (used by index-nested-loops applicability tests).
        self.base_table = base_table
        self.scan_alias = scan_alias
        self.created_by_subsumption = False

    @property
    def rows(self) -> float:
        return self.properties.rows

    @property
    def tuple_width(self) -> int:
        return self.properties.tuple_width

    def child_equivalences(self) -> Iterator["EquivalenceNode"]:
        """All equivalence nodes reachable through one operation level."""
        for operation in self.operations:
            yield from operation.children

    def parent_equivalences(self) -> Iterator["EquivalenceNode"]:
        for parent in self.parents:
            yield parent.equivalence

    def __repr__(self) -> str:
        return f"<Eq {self.id} {self.label} rows={self.rows:.0f}>"


class DagError(RuntimeError):
    """Raised on structural errors while building or validating the DAG."""


class Dag:
    """The AND-OR DAG of a batch of queries.

    The DAG is rooted at a pseudo equivalence node (``root``) whose single
    no-op operation has the root equivalence node of every query as an input
    (Section 2.1 of the paper).
    """

    if TYPE_CHECKING:
        # Type-only declaration of the dense cost-engine snapshot installed
        # lazily by :func:`repro.optimizer.engine.cost_engine_for`.
        _cost_engine: Tuple[Tuple[int, int], "CostEngine"]

    def __init__(self) -> None:
        self._equivalences: List[EquivalenceNode] = []
        self._operations: List[OperationNode] = []
        self._by_key: Dict[Hashable, EquivalenceNode] = {}
        self.root: Optional[EquivalenceNode] = None
        self.query_roots: List[EquivalenceNode] = []
        self.query_names: List[str] = []

    # -- construction -----------------------------------------------------------
    def equivalence(
        self,
        key: Hashable,
        properties: LogicalProperties,
        label: str = "",
        is_base: bool = False,
        base_table: Optional[str] = None,
        scan_alias: Optional[str] = None,
    ) -> EquivalenceNode:
        """Return the equivalence node for *key*, creating it if necessary.

        Key-based lookup is the unification mechanism: two queries (or two
        parts of one query) that produce the same canonical key share a single
        equivalence node.
        """
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        node = EquivalenceNode(
            len(self._equivalences),
            key,
            properties,
            label,
            is_base=is_base,
            base_table=base_table,
            scan_alias=scan_alias,
        )
        self._equivalences.append(node)
        self._by_key[key] = node
        return node

    def find(self, key: Hashable) -> Optional[EquivalenceNode]:
        """Return the equivalence node for *key* if it exists."""
        return self._by_key.get(key)

    def add_operation(
        self,
        equivalence: EquivalenceNode,
        operator: Operator,
        children: Sequence[EquivalenceNode],
        local_cost: float,
        child_multipliers: Optional[Sequence[float]] = None,
        is_subsumption: bool = False,
    ) -> OperationNode:
        """Add an operation node under *equivalence*, deduplicating repeats.

        Duplicate derivations (same operator, same children) can arise when
        different queries contribute the same sub-expression; they are
        detected by signature and returned instead of re-added, mirroring the
        hashing-based duplicate detection of the Volcano DAG generator.
        """
        signature = (operator, tuple(c.id for c in children))
        for existing in equivalence.operations:
            if existing.signature == signature:
                return existing
        multipliers = tuple(child_multipliers) if child_multipliers is not None else None
        operation = OperationNode(
            len(self._operations),
            operator,
            tuple(children),
            equivalence,
            local_cost,
            multipliers,
            is_subsumption,
            signature,
        )
        self._operations.append(operation)
        equivalence.operations.append(operation)
        for child in children:
            child.parents.append(operation)
        return operation

    def set_root(self, root: EquivalenceNode, query_roots: Sequence[EquivalenceNode]) -> None:
        self.root = root
        self.query_roots = list(query_roots)

    # -- access ---------------------------------------------------------------
    def equivalence_nodes(self) -> Tuple[EquivalenceNode, ...]:
        return tuple(self._equivalences)

    def node_by_id(self, node_id: int) -> EquivalenceNode:
        """The equivalence node with the given id (ids are dense ``0..n-1``)."""
        if 0 <= node_id < len(self._equivalences):
            return self._equivalences[node_id]
        raise DagError(f"unknown equivalence node id {node_id}")

    def operation_nodes(self) -> Tuple[OperationNode, ...]:
        return tuple(self._operations)

    def __len__(self) -> int:
        return len(self._equivalences)

    @property
    def num_equivalence_nodes(self) -> int:
        return len(self._equivalences)

    @property
    def num_operation_nodes(self) -> int:
        return len(self._operations)

    # -- structure maintenance ------------------------------------------------
    def assign_topological_numbers(self) -> None:
        """Number equivalence nodes so every descendant precedes its ancestors.

        The greedy algorithm's incremental cost update (Figure 5 of the paper)
        propagates cost changes in this order using a heap keyed on the
        topological number.
        """
        if self.root is None:
            raise DagError("cannot topologically number a DAG without a root")
        visited: Dict[int, int] = {}
        counter = 0
        # Iterative post-order DFS to avoid recursion limits on deep DAGs.
        stack: List[Tuple[EquivalenceNode, bool]] = [(self.root, False)]
        on_path: Set[int] = set()
        while stack:
            node, processed = stack.pop()
            if processed:
                on_path.discard(node.id)
                if node.id not in visited:
                    visited[node.id] = counter
                    node.topo_number = counter
                    counter += 1
                continue
            if node.id in visited:
                continue
            if node.id in on_path:
                raise DagError(f"cycle detected at equivalence node {node!r}")
            on_path.add(node.id)
            stack.append((node, True))
            for operation in node.operations:
                for child in operation.children:
                    if child.id not in visited:
                        stack.append((child, False))
        # Nodes unreachable from the root (none in practice) get numbers after
        # the reachable ones so that sorting is still total.
        for node in self._equivalences:
            if node.topo_number < 0:
                node.topo_number = counter
                counter += 1

    def validate(self) -> None:
        """Check structural invariants; raises :class:`DagError` on violation."""
        if self.root is None:
            raise DagError("DAG has no root")
        self.assign_topological_numbers()
        for operation in self._operations:
            for child in operation.children:
                if child.topo_number >= operation.equivalence.topo_number:
                    raise DagError(
                        "topological order violated between "
                        f"{operation.equivalence!r} and child {child!r}"
                    )
            if len(operation.child_multipliers) != len(operation.children):
                raise DagError(f"multiplier arity mismatch on {operation!r}")
        for node in self._equivalences:
            if not node.operations and not node.is_base:
                raise DagError(f"non-base equivalence node {node!r} has no operations")
