"""Sharability detection (Section 4.1 of the paper).

The *degree of sharing* of an equivalence node in an evaluation plan is the
number of times it occurs in the plan tree (the tree obtained by replicating
shared nodes); its degree of sharing in the DAG is the maximum over all plans
represented by the DAG.  A node is **sharable** iff that degree exceeds one —
only sharable nodes can possibly be worth materializing, which is the first of
the three optimizations that make the greedy heuristic practical.

The computation follows the paper's recurrence.  ``E[x][z]`` is the degree of
sharing of ``z`` in the sub-DAG rooted at ``x``::

    E[x][x] = 1
    E[x][z] = sum over children y of x of E[y][z]      if x is an operation node
    E[x][z] = max over children y of x of E[y][z]      if x is an equivalence node

and the degree of sharing of ``z`` in the whole DAG is ``E[root][z]``.  As in
the paper, space is kept small by computing the column for one ``z`` at a
time.  Use multipliers (nested-query invocation counts) multiply the
contribution of the corresponding child, so an invariant sub-expression of a
correlated query is sharable by virtue of its repeated invocations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.dag.nodes import Dag, EquivalenceNode


def degree_of_sharing(dag: Dag, target: EquivalenceNode) -> float:
    """Degree of sharing of *target* in the whole DAG (``E[root][target]``)."""
    if dag.root is None:
        raise ValueError("DAG has no root")
    ancestors = _ancestor_ids(target)
    memo: Dict[int, float] = {}

    order = sorted(
        (node for node in dag.equivalence_nodes() if node.id in ancestors),
        key=lambda node: node.topo_number,
    )
    for node in order:
        if node is target:
            memo[node.id] = 1.0
            continue
        best = 0.0
        for operation in node.operations:
            total = 0.0
            for child, multiplier in zip(operation.children, operation.child_multipliers):
                if child.id == target.id:
                    total += multiplier
                elif child.id in memo:
                    total += multiplier * memo[child.id]
            best = max(best, total)
        memo[node.id] = best
    return memo.get(dag.root.id, 0.0)


def _ancestor_ids(target: EquivalenceNode) -> Set[int]:
    """Ids of *target* and every equivalence node above it."""
    seen: Set[int] = {target.id}
    frontier: List[EquivalenceNode] = [target]
    while frontier:
        node = frontier.pop()
        for parent_op in node.parents:
            parent = parent_op.equivalence
            if parent.id not in seen:
                seen.add(parent.id)
                frontier.append(parent)
    return seen


def sharable_nodes(dag: Dag, candidates: Iterable[EquivalenceNode] = None) -> List[EquivalenceNode]:
    """Return the equivalence nodes whose degree of sharing exceeds one.

    *candidates* defaults to every non-base equivalence node with at least two
    parent operations (a necessary condition for sharability, used as a cheap
    pre-filter exactly because ``E`` is typically sparse).
    """
    if candidates is None:
        candidates = [
            node
            for node in dag.equivalence_nodes()
            if not node.is_base and node is not dag.root and _may_be_shared(node)
        ]
    result = []
    for node in candidates:
        if degree_of_sharing(dag, node) > 1.0:
            result.append(node)
    return result


def _may_be_shared(node: EquivalenceNode) -> bool:
    if len(node.parents) >= 2:
        return True
    for parent in node.parents:
        multiplier = 0.0
        for child, factor in zip(parent.children, parent.child_multipliers):
            if child.id == node.id:
                multiplier += factor
        if multiplier > 1.0:
            return True
    return False


def sharing_degrees(dag: Dag) -> Dict[int, float]:
    """Degree of sharing for every candidate node, keyed by node id."""
    degrees: Dict[int, float] = {}
    for node in dag.equivalence_nodes():
        if node.is_base or node is dag.root:
            continue
        if not _may_be_shared(node):
            degrees[node.id] = 1.0 if node.parents else 0.0
            continue
        degrees[node.id] = degree_of_sharing(dag, node)
    return degrees
