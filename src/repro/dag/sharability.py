"""Sharability detection (Section 4.1 of the paper).

The *degree of sharing* of an equivalence node in an evaluation plan is the
number of times it occurs in the plan tree (the tree obtained by replicating
shared nodes); its degree of sharing in the DAG is the maximum over all plans
represented by the DAG.  A node is **sharable** iff that degree exceeds one —
only sharable nodes can possibly be worth materializing, which is the first of
the three optimizations that make the greedy heuristic practical.

The computation follows the paper's recurrence.  ``E[x][z]`` is the degree of
sharing of ``z`` in the sub-DAG rooted at ``x``::

    E[x][x] = 1
    E[x][z] = sum over children y of x of E[y][z]      if x is an operation node
    E[x][z] = max over children y of x of E[y][z]      if x is an equivalence node

and the degree of sharing of ``z`` in the whole DAG is ``E[root][z]``.  Use
multipliers (nested-query invocation counts) multiply the contribution of the
corresponding child, so an invariant sub-expression of a correlated query is
sharable by virtue of its repeated invocations.

Unlike the paper — which computes the column of ``E`` for one ``z`` at a time
to save space — :func:`sharing_degrees` computes ``E[·][z]`` for **all**
candidate targets in a single sweep over the DAG in topological order
(children before ancestors).  The sweep is vectorized over the candidate set:

* every candidate ``z`` is assigned a column index; each node carries a
  **support bitset** (a Python ``int``, bit ``i`` set iff candidate ``i``
  occurs in the node's sub-DAG) used to skip non-contributing children and
  operations in O(1);
* when NumPy is available the per-node vectors ``E[node][·]`` are dense
  ``float64`` rows over the candidate set — operation nodes accumulate
  ``multiplier × child_row`` with vector adds, equivalence nodes combine
  operations with an in-place elementwise maximum;
* without NumPy the sweep falls back to the sparse per-node ``{target:
  degree}`` dicts guided by the same bitsets.

The dense path is byte-identical to the sparse one: rows accumulate child
contributions in the same child order, and inserting the ``+ 0.0`` terms of
non-supporting children does not change IEEE results (degrees are
non-negative, so no ``-0.0`` corner exists).  The sparse per-node dicts used
to approach |candidates| entries near the root, which made the sweep ~25% of
greedy start-up cost on the scale-up workloads; the bitset/NumPy rows cut the
CQ5 sweep by ~2x (see ``benchmarks/bench_fig9_scaleup.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

try:  # NumPy is optional: the sparse fallback is exact, just slower.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the _np=None test path
    _np = None  # type: ignore[assignment]

from repro.dag.nodes import Dag, EquivalenceNode

#: Below this many candidates the dense rows cost more to allocate than the
#: sparse dicts they replace; the cutover point is not sensitive in practice.
_DENSE_MIN_TARGETS = 8


def _batched_degrees(dag: Dag, targets: Set[int]) -> Dict[int, float]:
    """``E[root][z]`` for every ``z`` in *targets*, in one topological sweep."""
    if dag.root is None:
        raise ValueError("DAG has no root")
    if not targets:
        return {}
    if _np is not None and len(targets) >= _DENSE_MIN_TARGETS:
        return _batched_degrees_dense(dag, targets)
    return _batched_degrees_sparse(dag, targets)


def _batched_degrees_dense(dag: Dag, targets: Set[int]) -> Dict[int, float]:
    """Dense sweep: one NumPy ``float64`` row per node over the candidate set,
    one support bitset per node to skip non-contributing sub-DAGs.

    Rows are shared copy-on-write: a pass-through node (one operation, one
    contributing child, use multiplier 1, not itself a target) aliases its
    child's row instead of copying it — on the chain-query DAGs most nodes
    are selects/projections/aggregates of exactly this shape, so only the
    genuine accumulation points (multi-child joins, multi-operation nodes,
    targets) touch a full-width vector.  Aliased rows are never mutated: any
    in-place accumulation, maximum, or target-bit write copies first.
    """
    from repro.optimizer.engine import get_engine

    engine = get_engine(dag)
    column: Dict[int, int] = {target: i for i, target in enumerate(sorted(targets))}
    num_nodes = engine.num_nodes
    rows: List[Optional["_np.ndarray"]] = [None] * num_nodes
    masks: List[int] = [0] * num_nodes
    maximum = _np.maximum
    op_table = engine.op_table
    for node_id in engine.topo_order:
        best = None
        best_owned = False
        best_mask = 0
        for _local_cost, children in op_table[node_id]:
            acc = None
            acc_owned = False
            acc_mask = 0
            for child_id, multiplier in children:
                child_mask = masks[child_id]
                if not child_mask:
                    continue
                child_row = rows[child_id]
                if acc is None:
                    if multiplier == 1.0:
                        acc = child_row  # borrow; copy only if mutated later
                    else:
                        acc = child_row * multiplier
                        acc_owned = True
                    acc_mask = child_mask
                else:
                    scaled = child_row if multiplier == 1.0 else multiplier * child_row
                    if acc_owned:
                        acc += scaled
                    else:
                        # One binary add allocates the owned copy directly —
                        # cheaper than an explicit copy followed by "+=".
                        acc = acc + scaled
                        acc_owned = True
                    acc_mask |= child_mask
            if acc is None:
                continue
            if best is None:
                best = acc
                best_owned = acc_owned
                best_mask = acc_mask
            else:
                if best_owned:
                    maximum(best, acc, out=best)
                else:
                    best = maximum(best, acc)
                    best_owned = True
                best_mask |= acc_mask
        target_column = column.get(node_id)
        if target_column is not None:
            if best is None:
                best = _np.zeros(len(column))
            elif not best_owned:
                best = best.copy()
            best[target_column] = 1.0
            best_mask |= 1 << target_column
        if best is not None:
            rows[node_id] = best
            masks[node_id] = best_mask
    root_row = rows[engine.root_id]
    if root_row is None:
        return {target: 0.0 for target in targets}
    return {target: float(root_row[column[target]]) for target in targets}


def _batched_degrees_sparse(dag: Dag, targets: Set[int]) -> Dict[int, float]:
    """Sparse fallback sweep (no NumPy, or a tiny candidate set).

    Every node carries the sparse vector ``{z: E[node][z]}`` restricted to the
    targets occurring in its sub-DAG; operation nodes sum child vectors scaled
    by the use multipliers, equivalence nodes take the elementwise maximum
    over their operations.  Vectors are shared copy-on-write exactly like the
    dense rows: pass-through nodes alias their child's dict, and any mutation
    (accumulation, maximum, target entry) copies first.
    """
    from repro.optimizer.engine import get_engine

    engine = get_engine(dag)
    vectors: List[Optional[Dict[int, float]]] = [None] * engine.num_nodes
    op_table = engine.op_table
    for node_id in engine.topo_order:
        best: Optional[Dict[int, float]] = None
        best_owned = False
        for _local_cost, children in op_table[node_id]:
            acc: Optional[Dict[int, float]] = None
            acc_owned = False
            for child_id, multiplier in children:
                child_vector = vectors[child_id]
                if not child_vector:
                    continue
                if acc is None:
                    if multiplier == 1.0:
                        acc = child_vector  # borrow; copy only if mutated later
                    else:
                        acc = {z: multiplier * v for z, v in child_vector.items()}
                        acc_owned = True
                else:
                    if not acc_owned:
                        acc = dict(acc)
                        acc_owned = True
                    if multiplier == 1.0:
                        for z, v in child_vector.items():
                            acc[z] = acc.get(z, 0.0) + v
                    else:
                        for z, v in child_vector.items():
                            acc[z] = acc.get(z, 0.0) + multiplier * v
            if not acc:
                continue
            if best is None:
                best = acc
                best_owned = acc_owned
            else:
                if not best_owned:
                    best = dict(best)
                    best_owned = True
                for z, v in acc.items():
                    if v > best.get(z, 0.0):
                        best[z] = v
        if node_id in targets:
            if best is None:
                best = {}
            elif not best_owned:
                best = dict(best)
            best[node_id] = 1.0
        if best is not None:
            vectors[node_id] = best
    root_vector = vectors[engine.root_id] or {}
    return {target: root_vector.get(target, 0.0) for target in targets}


def degree_of_sharing(dag: Dag, target: EquivalenceNode) -> float:
    """Degree of sharing of *target* in the whole DAG (``E[root][target]``)."""
    return _batched_degrees(dag, {target.id})[target.id]


def sharable_nodes(
    dag: Dag, candidates: Optional[Iterable[EquivalenceNode]] = None
) -> List[EquivalenceNode]:
    """Return the equivalence nodes whose degree of sharing exceeds one.

    *candidates* defaults to every non-base equivalence node with at least two
    parent operations (a necessary condition for sharability, used as a cheap
    pre-filter exactly because ``E`` is typically sparse).
    """
    if candidates is None:
        candidates = [
            node
            for node in dag.equivalence_nodes()
            if not node.is_base and node is not dag.root and _may_be_shared(node)
        ]
    else:
        candidates = list(candidates)
    degrees = _batched_degrees(dag, {node.id for node in candidates})
    return [node for node in candidates if degrees[node.id] > 1.0]


def _may_be_shared(node: EquivalenceNode) -> bool:
    if len(node.parents) >= 2:
        return True
    for parent in node.parents:
        multiplier = 0.0
        for child, factor in zip(parent.children, parent.child_multipliers):
            if child.id == node.id:
                multiplier += factor
        if multiplier > 1.0:
            return True
    return False


def sharing_degrees(
    dag: Dag, candidates: Optional[Iterable[EquivalenceNode]] = None
) -> Dict[int, float]:
    """Degree of sharing for every candidate node, keyed by node id.

    Without *candidates*, covers every non-base, non-root node, short-cutting
    nodes that fail the :func:`_may_be_shared` pre-filter to degree 1 (or 0 if
    parentless).  With an explicit candidate list the **exact** degree of every
    listed node is computed — no pre-filter short-cut — which is what the
    greedy monotonicity bound needs: even a single-parent node can have a
    large degree through the transitive sharing of its ancestors.
    """
    if candidates is not None:
        return _batched_degrees(dag, {node.id for node in candidates})
    degrees: Dict[int, float] = {}
    targets: Set[int] = set()
    for node in dag.equivalence_nodes():
        if node.is_base or node is dag.root:
            continue
        if not _may_be_shared(node):
            degrees[node.id] = 1.0 if node.parents else 0.0
            continue
        targets.add(node.id)
    degrees.update(_batched_degrees(dag, targets))
    return degrees
