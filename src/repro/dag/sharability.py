"""Sharability detection (Section 4.1 of the paper).

The *degree of sharing* of an equivalence node in an evaluation plan is the
number of times it occurs in the plan tree (the tree obtained by replicating
shared nodes); its degree of sharing in the DAG is the maximum over all plans
represented by the DAG.  A node is **sharable** iff that degree exceeds one —
only sharable nodes can possibly be worth materializing, which is the first of
the three optimizations that make the greedy heuristic practical.

The computation follows the paper's recurrence.  ``E[x][z]`` is the degree of
sharing of ``z`` in the sub-DAG rooted at ``x``::

    E[x][x] = 1
    E[x][z] = sum over children y of x of E[y][z]      if x is an operation node
    E[x][z] = max over children y of x of E[y][z]      if x is an equivalence node

and the degree of sharing of ``z`` in the whole DAG is ``E[root][z]``.  Use
multipliers (nested-query invocation counts) multiply the contribution of the
corresponding child, so an invariant sub-expression of a correlated query is
sharable by virtue of its repeated invocations.

Unlike the paper — which computes the column of ``E`` for one ``z`` at a time
to save space — :func:`sharing_degrees` computes ``E[·][z]`` for **all**
candidate targets in a single sweep over the DAG in topological order
(children before ancestors), carrying one sparse ``{target: degree}`` vector
per node.  The per-target variant re-sorted the target's ancestor set on every
call, which made candidate enumeration quadratic in the DAG size and dominated
the greedy optimizer's start-up cost on the scale-up workloads; the batched
sweep visits every operation edge once regardless of the number of targets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.dag.nodes import Dag, EquivalenceNode


def _batched_degrees(dag: Dag, targets: Set[int]) -> Dict[int, float]:
    """``E[root][z]`` for every ``z`` in *targets*, in one topological sweep.

    Every node carries the sparse vector ``{z: E[node][z]}`` restricted to the
    targets occurring in its sub-DAG; operation nodes sum child vectors scaled
    by the use multipliers, equivalence nodes take the elementwise maximum
    over their operations.
    """
    if dag.root is None:
        raise ValueError("DAG has no root")
    if not targets:
        return {}
    vectors: Dict[int, Dict[int, float]] = {}
    order = sorted(dag.equivalence_nodes(), key=lambda node: node.topo_number)
    for node in order:
        best: Optional[Dict[int, float]] = None
        for operation in node.operations:
            acc: Optional[Dict[int, float]] = None
            for child, multiplier in zip(operation.children, operation.child_multipliers):
                child_vector = vectors.get(child.id)
                if not child_vector:
                    continue
                if acc is None:
                    # First contributing child: a plain copy/scale (C speed).
                    if multiplier == 1.0:
                        acc = dict(child_vector)
                    else:
                        acc = {z: multiplier * v for z, v in child_vector.items()}
                elif multiplier == 1.0:
                    for z, v in child_vector.items():
                        acc[z] = acc.get(z, 0.0) + v
                else:
                    for z, v in child_vector.items():
                        acc[z] = acc.get(z, 0.0) + multiplier * v
            if not acc:
                continue
            if best is None:
                best = acc
            else:
                for z, v in acc.items():
                    if v > best.get(z, 0.0):
                        best[z] = v
        if best is None:
            best = {}
        if node.id in targets:
            best[node.id] = 1.0
        vectors[node.id] = best
    root_vector = vectors.get(dag.root.id, {})
    return {target: root_vector.get(target, 0.0) for target in targets}


def degree_of_sharing(dag: Dag, target: EquivalenceNode) -> float:
    """Degree of sharing of *target* in the whole DAG (``E[root][target]``)."""
    return _batched_degrees(dag, {target.id})[target.id]


def sharable_nodes(
    dag: Dag, candidates: Optional[Iterable[EquivalenceNode]] = None
) -> List[EquivalenceNode]:
    """Return the equivalence nodes whose degree of sharing exceeds one.

    *candidates* defaults to every non-base equivalence node with at least two
    parent operations (a necessary condition for sharability, used as a cheap
    pre-filter exactly because ``E`` is typically sparse).
    """
    if candidates is None:
        candidates = [
            node
            for node in dag.equivalence_nodes()
            if not node.is_base and node is not dag.root and _may_be_shared(node)
        ]
    else:
        candidates = list(candidates)
    degrees = _batched_degrees(dag, {node.id for node in candidates})
    return [node for node in candidates if degrees[node.id] > 1.0]


def _may_be_shared(node: EquivalenceNode) -> bool:
    if len(node.parents) >= 2:
        return True
    for parent in node.parents:
        multiplier = 0.0
        for child, factor in zip(parent.children, parent.child_multipliers):
            if child.id == node.id:
                multiplier += factor
        if multiplier > 1.0:
            return True
    return False


def sharing_degrees(
    dag: Dag, candidates: Optional[Iterable[EquivalenceNode]] = None
) -> Dict[int, float]:
    """Degree of sharing for every candidate node, keyed by node id.

    Without *candidates*, covers every non-base, non-root node, short-cutting
    nodes that fail the :func:`_may_be_shared` pre-filter to degree 1 (or 0 if
    parentless).  With an explicit candidate list the **exact** degree of every
    listed node is computed — no pre-filter short-cut — which is what the
    greedy monotonicity bound needs: even a single-parent node can have a
    large degree through the transitive sharing of its ancestors.
    """
    if candidates is not None:
        return _batched_degrees(dag, {node.id for node in candidates})
    degrees: Dict[int, float] = {}
    targets: Set[int] = set()
    for node in dag.equivalence_nodes():
        if node.is_base or node is dag.root:
            continue
        if not _may_be_shared(node):
            degrees[node.id] = 1.0 if node.parents else 0.0
            continue
        targets.add(node.id)
    degrees.update(_batched_degrees(dag, targets))
    return degrees
