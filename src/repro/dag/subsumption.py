"""Subsumption derivations (Section 2.1 of the paper).

After the individual queries have been represented in the DAG, this pass adds
derivations that let one sub-expression be computed from another:

* **Selection subsumption** — if predicate ``P1`` implies ``P2`` then
  ``σ_P1(E)`` can be derived as ``σ_P1(σ_P2(E))``; an extra (flagged)
  selection operation is added between the two equivalence nodes.
* **Disjunction nodes** — for equality selections on the same column
  (``σ_{A=5}(E)``, ``σ_{A=10}(E)``) a new node ``σ_{A=5 ∨ A=10}(E)`` is
  created and both originals are derived from it, representing shared access.
* **Aggregation subsumption** — ``γ_{dno;sum(sal)}(E)`` and
  ``γ_{age;sum(sal)}(E)`` are both derivable from ``γ_{dno,age;sum(sal)}(E)``
  by further group-bys.
* **Join-level subsumption** — when two queries join the same relations with
  the same join predicates but *different* single-table selections (the
  batched and scale-up workloads of Section 6 are full of this pattern), a
  shared "weaker" join node with the common selections is created and each
  original join is derived from it by a residual selection.  This is the DAG
  form of the alternative plans that a transformation-based generator obtains
  by *not* pushing the differing selections down.

Every operation node added here is flagged ``is_subsumption`` so that
Volcano-SH can apply its pre-pass/undo rule and reports can count them.

The pass reuses the builder's memo tables (see :mod:`repro.dag.builder`):
weak join nodes are memoized on their weakened selections, and the join-space
re-expansion they trigger hash-conses every sub-join it shares with the
original queries or with other weak-join ranges, which is what keeps this
pass cheap on the scale-up workloads (70+ heavily overlapping ranges).  When
the builder carries a catalog-lifetime session cache
(:mod:`repro.service.session`), the pass also reuses state across builds:
predicate-implication results and weak-join build plans are pure predicate
structure (never invalidated), while the scans and join expansions the weak
joins trigger resolve through the session's catalog-dependent fragment
caches.  The reference builder (``memoize=False``) runs the pass with none
of these tables and remains the byte-identity oracle.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.algebra.columns import ColumnRef
from repro.algebra.expressions import AggregateFunction
from repro.algebra.predicates import (
    Comparison,
    Predicate,
    and_,
    or_,
)
from repro.cost import algorithms as alg
from repro.dag.nodes import AggregateOp, CachedReadOp, ScanOp, SelectOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dag.builder import DagBuilder
    from repro.execution.result_cache import ResultCacheEntry


def apply_subsumption(builder: "DagBuilder") -> int:
    """Add all subsumption derivations to the builder's DAG.

    Returns the number of derivations (operation nodes) added.
    """
    added = 0
    added += _selection_subsumption(builder)
    added += _disjunction_subsumption(builder)
    added += _aggregate_subsumption(builder)
    added += _join_subsumption(builder)
    return added


# ---------------------------------------------------------------------------
# Selection subsumption on scans and selects
# ---------------------------------------------------------------------------

def _scan_groups(builder: "DagBuilder") -> Dict[Tuple[str, str], List[int]]:
    """Group scan equivalence node ids by (table, alias)."""
    groups: Dict[Tuple[str, str], List[int]] = defaultdict(list)
    for eq_id, key in enumerate(builder.dag.arena.eq_key):
        if isinstance(key, tuple) and key and key[0] == "scan":
            groups[(key[1], key[2])].append(eq_id)
    return groups


def _select_groups(builder: "DagBuilder") -> Dict[object, List[int]]:
    """Group select equivalence node ids by their child key."""
    groups: Dict[object, List[int]] = defaultdict(list)
    for eq_id, key in enumerate(builder.dag.arena.eq_key):
        if isinstance(key, tuple) and key and key[0] == "select":
            groups[key[1]].append(eq_id)
    return groups


def _key_predicates(key: object) -> FrozenSet[Predicate]:
    """The selection predicates applied by a scan/select equivalence key."""
    if isinstance(key, tuple) and key and key[0] in ("scan", "select"):
        return key[-1]
    return frozenset()


def _selection_subsumption(builder: "DagBuilder") -> int:
    added = 0
    arena = builder.dag.arena
    eq_key = arena.eq_key
    eq_props = arena.eq_props
    groups = list(_scan_groups(builder).values()) + list(_select_groups(builder).values())
    for members in groups:
        if len(members) < 2:
            continue
        for stronger in members:
            stronger_preds = _key_predicates(eq_key[stronger])
            if not stronger_preds:
                continue
            for weaker in members:
                if weaker == stronger:
                    continue
                weaker_preds = _key_predicates(eq_key[weaker])
                if stronger_preds == weaker_preds:
                    continue
                if not weaker_preds:
                    continue
                if builder._implies_cached(stronger_preds, weaker_preds):
                    # Sorted: the conjunct order is persisted in the SelectOp
                    # (and printed by plan explains), and iterating the
                    # frozenset directly made it vary with PYTHONHASHSEED.
                    predicate = and_(*sorted(stronger_preds, key=builder._pred_key))
                    cost = alg.filter_cost(
                        builder.cost_model, eq_props[weaker].rows, eq_props[stronger].rows
                    )
                    builder.dag.add_operation_id(
                        stronger,
                        SelectOp(predicate),
                        (weaker,),
                        cost.total,
                        is_subsumption=True,
                    )
                    added += 1
    return added


# ---------------------------------------------------------------------------
# Cross-batch result-cache injection (PR 10)
# ---------------------------------------------------------------------------

def inject_cached_results(builder: "DagBuilder") -> int:
    """Inject cached executed results as base derivations of scan nodes.

    For every scan equivalence node of the freshly built DAG, the builder's
    :class:`~repro.execution.result_cache.ResultCache` is consulted for
    entries over the same ``(table, alias)``:

    * an entry whose predicate set matches the node's **exactly** is
      injected as-is (no residual);
    * otherwise the cheapest entry whose predicates are **implied** by the
      node's (the same :meth:`DagBuilder._implies_cached` proof the
      selection-subsumption pass uses — a cached *weaker* result is a
      superset of the needed rows) is injected with a compensating residual
      selection over the full predicate set.

    Injection is restricted to scan-family keys deliberately: every
    derivation of a scan equivalence node produces rows in table-scan order
    with identical column sets (the executor never prunes columns), so
    serving the cached rows — filtered by the residual for covering hits —
    is byte-identical to any cold derivation of the node.  The injected
    operation is a :class:`~repro.dag.nodes.CachedReadOp` over a new base
    equivalence node keyed ``("cached-result", digest)``.

    **Admission and pricing.**  The reuse-cost model
    (:func:`repro.cost.algorithms.cached_read_cost`) gates admission: an
    entry is injected only when reading it back (plus the residual filter)
    is estimated no more expensive than the node's plain table scan.  The
    injected operation itself is priced *infinite*, which keeps it invisible
    to every cost table and argmin of the optimization search — join-order,
    materialization, and tie-break decisions are bit-identical to a
    cache-off build.  Adoption happens per node, after the search, in
    :func:`repro.execution.result_cache.adopt_cached_reads`; because it only
    ever swaps the derivation of a scan-family node, the executed rows are
    byte-identical to the cache-off plan's.  Candidate order and the
    injected predicate order are canonical (sorted by content), so injection
    is deterministic across ``PYTHONHASHSEED`` values and processes.

    Returns the number of operations injected.
    """
    cache = builder._result_cache
    if cache is None:
        return 0
    added = 0
    arena = builder.dag.arena
    eq_key = arena.eq_key
    eq_props = arena.eq_props
    for (table, alias), members in sorted(_scan_groups(builder).items()):
        candidates = cache.scan_candidates(table, alias)
        if not candidates:
            continue
        deps_id: Optional[int] = None
        for eq_id in members:
            scan_cost = _plain_scan_cost(builder, eq_id)
            if scan_cost is None:
                continue
            preds = _key_predicates(eq_key[eq_id])
            chosen: Optional["ResultCacheEntry"] = None
            residual: Optional[Predicate] = None
            for entry in candidates:
                if entry.predicates == preds:
                    chosen = entry
                    break
            if chosen is None and preds:
                # Covering: candidates come smallest-first, so the first
                # implied (strictly weaker) entry is the cheapest to read
                # and filter.
                for entry in candidates:
                    weaker = entry.predicates or frozenset()
                    if weaker == preds:
                        continue
                    if not weaker or builder._implies_cached(preds, weaker):
                        chosen = entry
                        residual = and_(*sorted(preds, key=builder._pred_key))
                        break
            if chosen is None:
                continue
            reuse_cost = alg.cached_read_cost(
                builder.cost_model,
                float(chosen.row_count),
                float(chosen.blocks),
                eq_props[eq_id].rows,
                residual is not None,
            )
            if reuse_cost.total > scan_cost:
                continue
            base_key = ("cached-result", chosen.digest)
            base_id = builder.dag.find_id(base_key)
            if base_id is None:
                base_node = builder.dag.equivalence(
                    base_key,
                    chosen.props,
                    f"cached[{chosen.digest[:12]}]",
                    is_base=True,
                )
                base_id = base_node.id
                if builder._session is not None:
                    if deps_id is None:
                        deps_id = builder._leaf_tag_deps(table)[1]
                    builder._register_id(base_id, deps_id)
            builder.dag.add_operation_id(
                eq_id,
                CachedReadOp(
                    digest=chosen.digest,
                    table=table,
                    alias=alias,
                    blocks=chosen.blocks,
                    row_count=chosen.row_count,
                    residual=residual,
                    rows=tuple(chosen.rows),
                ),
                (base_id,),
                float("inf"),
            )
            if residual is None:
                cache.exact_injections += 1
            else:
                cache.covering_injections += 1
            added += 1
    return added


def _plain_scan_cost(builder: "DagBuilder", eq_id: int) -> Optional[float]:
    """Local cost of the node's plain :class:`ScanOp` derivation, if any.

    The admission baseline for cached reads: reading a cached result must
    be estimated no more expensive than rescanning the stored table (the
    scan operation's child is the zero-cost base node, so its local cost is
    its total).
    """
    arena = builder.dag.arena
    for op_id in arena.eq_op_ids[eq_id]:
        if isinstance(arena.op_operator[op_id], ScanOp):
            return arena.op_local_cost[op_id]
    return None


# ---------------------------------------------------------------------------
# Disjunction nodes for equality selections
# ---------------------------------------------------------------------------

def _single_equality(predicates: FrozenSet[Predicate]) -> Optional[Comparison]:
    """Return the single ``column = constant`` comparison, if that is all."""
    if len(predicates) != 1:
        return None
    (predicate,) = predicates
    if isinstance(predicate, Comparison):
        normalized = predicate.normalized()
        if normalized.op == "=" and normalized.is_column_constant():
            return normalized
    return None


def _disjunction_subsumption(builder: "DagBuilder") -> int:
    added = 0
    arena = builder.dag.arena
    eq_key = arena.eq_key
    eq_props = arena.eq_props
    for (table, alias), members in _scan_groups(builder).items():
        by_column: Dict[ColumnRef, List[Tuple[int, Comparison]]] = defaultdict(list)
        for eq_id in members:
            comparison = _single_equality(_key_predicates(eq_key[eq_id]))
            if comparison is not None:
                by_column[comparison.left].append((eq_id, comparison))
        for column, entries in by_column.items():
            if len(entries) < 2:
                continue
            distinct = {comparison.right for _, comparison in entries}
            if len(distinct) < 2:
                continue
            disjunction = or_(*sorted((c for _, c in entries), key=builder._pred_key))
            shared_id = builder.scan_equivalence(table, alias, [disjunction]).id
            arena.eq_created_by_subsumption[shared_id] = True
            for eq_id, comparison in entries:
                if eq_id == shared_id:
                    continue
                cost = alg.filter_cost(
                    builder.cost_model, eq_props[shared_id].rows, eq_props[eq_id].rows
                )
                builder.dag.add_operation_id(
                    eq_id, SelectOp(comparison), (shared_id,), cost.total, is_subsumption=True
                )
                added += 1
    return added


# ---------------------------------------------------------------------------
# Aggregation subsumption
# ---------------------------------------------------------------------------

_DECOMPOSABLE = {"sum": "sum", "min": "min", "max": "max", "count": "sum"}


def _aggregate_subsumption(builder: "DagBuilder") -> int:
    added = 0
    arena = builder.dag.arena
    eq_key = arena.eq_key
    eq_props = arena.eq_props
    groups: Dict[object, List[int]] = defaultdict(list)
    for eq_id, key in enumerate(eq_key):
        if isinstance(key, tuple) and key and key[0] == "agg":
            child_key, group_by, aggregates = key[1], key[2], key[3]
            if not group_by:
                continue
            if any(a.func not in _DECOMPOSABLE for a in aggregates):
                continue
            signature = (child_key, frozenset((a.func, a.column) for a in aggregates))
            groups[signature].append(eq_id)
    for members in groups.values():
        group_sets = {frozenset(eq_key[m][2]) for m in members}
        if len(group_sets) < 2:
            continue
        combined_columns = tuple(sorted(frozenset().union(*group_sets)))
        template_key = eq_key[members[0]]
        child_id = _aggregate_child_id(builder, members[0])
        if child_id is None:
            continue
        aggregates = template_key[3]
        combined_alias = "shared_" + "_".join(sorted(c.column for c in combined_columns))
        combined = builder.aggregate_equivalence(
            arena.eq_view(child_id), combined_columns, aggregates, combined_alias
        )
        combined_id = combined.id
        arena.eq_created_by_subsumption[combined_id] = True
        for eq_id in members:
            node_key = eq_key[eq_id]
            if frozenset(node_key[2]) == frozenset(combined_columns):
                continue
            regroup = tuple(ColumnRef(combined_alias, c.column) for c in node_key[2])
            re_aggs = tuple(
                AggregateFunction(
                    _DECOMPOSABLE[a.func], ColumnRef(combined_alias, a.alias), a.alias
                )
                for a in node_key[3]
            )
            choice = alg.choose_aggregate(
                builder.cost_model, eq_props[combined_id], regroup, eq_props[eq_id].rows
            )
            builder.dag.add_operation_id(
                eq_id,
                AggregateOp(regroup, re_aggs, node_key[4]),
                (combined_id,),
                choice.total,
                is_subsumption=True,
            )
            added += 1
    return added


def _aggregate_child_id(builder: "DagBuilder", eq_id: int) -> Optional[int]:
    arena = builder.dag.arena
    for op_id in arena.eq_op_ids[eq_id]:
        if isinstance(arena.op_operator[op_id], AggregateOp) and not arena.op_is_subsumption[op_id]:
            return arena.op_children[op_id][0]
    return None


# ---------------------------------------------------------------------------
# Join-level subsumption (shared weaker joins)
# ---------------------------------------------------------------------------

def _join_subsumption(builder: "DagBuilder") -> int:
    added = 0
    arena = builder.dag.arena
    eq_key = arena.eq_key
    eq_props = arena.eq_props
    groups: Dict[object, List[int]] = defaultdict(list)
    for eq_id, key in enumerate(eq_key):
        if not (isinstance(key, tuple) and key and key[0] == "join"):
            continue
        leaf_keys, join_preds = key[1], key[2]
        identities = []
        ok = True
        for leaf_key in leaf_keys:
            if isinstance(leaf_key, tuple) and leaf_key and leaf_key[0] == "scan":
                identities.append((leaf_key[1], leaf_key[2]))
            else:
                ok = False
                break
        if not ok:
            continue
        groups[(frozenset(identities), join_preds)].append(eq_id)

    for (identities, join_preds), members in groups.items():
        if len(members) < 2:
            continue
        # Intersect the per-leaf selections across the group.
        per_leaf: Dict[Tuple[str, str], List[FrozenSet[Predicate]]] = defaultdict(list)
        for eq_id in members:
            for leaf_key in eq_key[eq_id][1]:
                per_leaf[(leaf_key[1], leaf_key[2])].append(leaf_key[3])
        weak_preds = {
            identity: frozenset.intersection(*pred_sets)
            for identity, pred_sets in per_leaf.items()
        }
        if all(
            weak_preds[(leaf_key[1], leaf_key[2])] == leaf_key[3]
            for eq_id in members
            for leaf_key in eq_key[eq_id][1]
        ):
            continue  # the members are already identical in their selections
        weak_id = _weak_join_node(builder, weak_preds, join_preds)
        if weak_id is None:
            continue
        arena.eq_created_by_subsumption[weak_id] = True
        for eq_id in members:
            if eq_id == weak_id:
                continue
            residual: List[Predicate] = []
            for leaf_key in eq_key[eq_id][1]:
                extra = leaf_key[3] - weak_preds[(leaf_key[1], leaf_key[2])]
                residual.extend(extra)
            if not residual:
                continue
            predicate = and_(*sorted(residual, key=builder._pred_key))
            cost = alg.filter_cost(
                builder.cost_model, eq_props[weak_id].rows, eq_props[eq_id].rows
            )
            builder.dag.add_operation_id(
                eq_id, SelectOp(predicate), (weak_id,), cost.total, is_subsumption=True
            )
            added += 1
    return added


def _weak_join_node(
    builder: "DagBuilder",
    weak_preds: Dict[Tuple[str, str], FrozenSet[Predicate]],
    join_preds: FrozenSet[Predicate],
) -> Optional[int]:
    """Build (or find) the id of the join node over the weakened leaves.

    Memoized on the weakened selections and join predicates: the result is a
    pure function of them, so a repeat group resolves without re-deriving the
    weak scans or re-expanding the join space (the expansion itself also
    hash-conses its sub-joins, which is what makes the 70-odd overlapping
    weak-join ranges of the scale-up workloads cheap).  With a session cache
    attached, the sorted *build plan* (ordered weak scans plus ordered join
    predicates — pure structure, catalog-independent) survives across builds;
    the scans and the expansion itself then resolve through the session's
    scan/recipe caches.
    """
    memo = builder._weak_join_memo
    memo_key = None
    if memo is not None:
        memo_key = (frozenset(weak_preds.items()), join_preds)
        if memo_key in memo:
            return memo[memo_key]
    session = builder._session
    plan = session.weak_joins.get(memo_key) if session is not None else None
    if plan is None:
        plan = (
            tuple(
                (table, alias, tuple(sorted(predicates, key=builder._pred_key)))
                for (table, alias), predicates in sorted(weak_preds.items())
            ),
            tuple(sorted(join_preds, key=builder._pred_key)),
        )
        if session is not None:
            session.weak_joins[memo_key] = plan
    leaf_specs, ordered_joins = plan
    aliases = []
    leaf_ids: Dict[str, int] = {}
    for table, alias, predicates in leaf_specs:
        aliases.append(alias)
        leaf_ids[alias] = builder.scan_equivalence(table, alias, predicates).id
    if len(aliases) < 2:
        node = None
    else:
        node = builder._expand_join_space(aliases, leaf_ids, list(ordered_joins))
    if memo is not None:
        memo[memo_key] = node
    return node
