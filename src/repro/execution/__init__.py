"""Simulated execution engine.

The paper validates its estimated-cost results by running the chosen plans on
Microsoft SQL Server 6.5 (Figure 7).  That system is substituted here by a
small in-memory executor: plans extracted from the optimizer are evaluated
over synthetic data, and the "execution time" reported is the block-accounted
simulated cost (same constants as the optimizer's cost model) derived from the
*actual* row and byte counts observed during execution — so the experiment
still checks that MQO plans do less real work, which is the claim.
"""

from repro.execution.datagen import generate_psp_data, generate_tpcd_data
from repro.execution.executor import ExecutionResult, Executor
from repro.execution.operators import ExecutionStats
from repro.execution.result_cache import ResultCache, ResultCacheEntry

__all__ = [
    "generate_tpcd_data",
    "generate_psp_data",
    "Executor",
    "ExecutionResult",
    "ExecutionStats",
    "ResultCache",
    "ResultCacheEntry",
]
