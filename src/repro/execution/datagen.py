"""Deterministic synthetic data generators.

The generators populate only what the executor needs: a dictionary mapping
table names to lists of row dictionaries (column name → value), with key
relationships (foreign keys, part/supplier pairs) preserved so that the
TPC-D-style queries return meaningful results.  All randomness is seeded, so
tests and benchmarks are reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.catalog.tpcd import DATE_HIGH, DATE_LOW

Row = Dict[str, object]
Database = Dict[str, List[Row]]

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
    "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_RETURN_FLAGS = ["R", "A", "N"]
_SHIP_MODES = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"]
_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]


def generate_tpcd_data(scale: float = 0.005, seed: int = 7) -> Database:
    """Generate a TPC-D-like database at the given (small) scale factor.

    At the default scale the database has 30,000 lineitem rows, which is large
    enough to show the executed-work differences of Figure 7 while keeping the
    pure-Python executor fast.
    """
    rng = random.Random(seed)
    supplier_count = max(5, int(10_000 * scale))
    part_count = max(10, int(200_000 * scale))
    customer_count = max(10, int(150_000 * scale))
    orders_count = max(20, int(1_500_000 * scale))

    database: Database = {}
    database["region"] = [
        {"r_regionkey": i, "r_name": name, "r_comment": ""} for i, name in enumerate(_REGIONS)
    ]
    database["nation"] = [
        {"n_nationkey": i, "n_name": name, "n_regionkey": i % 5, "n_comment": ""}
        for i, name in enumerate(_NATIONS)
    ]
    database["supplier"] = [
        {
            "s_suppkey": i,
            "s_name": f"Supplier#{i:09d}",
            "s_address": "",
            "s_nationkey": rng.randrange(25),
            "s_phone": "",
            "s_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
            "s_comment": "",
        }
        for i in range(1, supplier_count + 1)
    ]
    database["customer"] = [
        {
            "c_custkey": i,
            "c_name": f"Customer#{i:09d}",
            "c_address": "",
            "c_nationkey": rng.randrange(25),
            "c_phone": "",
            "c_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
            "c_mktsegment": rng.choice(_SEGMENTS),
            "c_comment": "",
        }
        for i in range(1, customer_count + 1)
    ]
    database["part"] = [
        {
            "p_partkey": i,
            "p_name": f"part {i}",
            "p_mfgr": f"Manufacturer#{1 + i % 5}",
            "p_brand": rng.choice(_BRANDS),
            "p_type": f"TYPE {i % 150}",
            "p_size": rng.randint(1, 50),
            "p_container": "",
            "p_retailprice": round(900 + (i % 1000), 2),
            "p_comment": "",
        }
        for i in range(1, part_count + 1)
    ]
    partsupp: List[Row] = []
    for part in range(1, part_count + 1):
        for _ in range(4):
            partsupp.append(
                {
                    "ps_partkey": part,
                    "ps_suppkey": rng.randint(1, supplier_count),
                    "ps_availqty": rng.randint(1, 10_000),
                    "ps_supplycost": round(rng.uniform(1.0, 1000.0), 2),
                    "ps_comment": "",
                }
            )
    database["partsupp"] = partsupp

    orders: List[Row] = []
    lineitem: List[Row] = []
    line_counter = 0
    for order in range(1, orders_count + 1):
        order_date = rng.randint(DATE_LOW, DATE_HIGH)
        orders.append(
            {
                "o_orderkey": order,
                "o_custkey": rng.randint(1, customer_count),
                "o_orderstatus": rng.choice(["F", "O", "P"]),
                "o_totalprice": round(rng.uniform(850.0, 560_000.0), 2),
                "o_orderdate": order_date,
                "o_orderpriority": rng.choice(_PRIORITIES),
                "o_clerk": "",
                "o_shippriority": 0,
                "o_comment": "",
            }
        )
        for _ in range(rng.randint(1, 7)):
            line_counter += 1
            ship_date = order_date + rng.randint(1, 120)
            lineitem.append(
                {
                    "l_orderkey": order,
                    "l_partkey": rng.randint(1, part_count),
                    "l_suppkey": rng.randint(1, supplier_count),
                    "l_linenumber": line_counter,
                    "l_quantity": rng.randint(1, 50),
                    "l_extendedprice": round(rng.uniform(900.0, 105_000.0), 2),
                    "l_discount": round(rng.uniform(0.0, 0.10), 2),
                    "l_tax": round(rng.uniform(0.0, 0.08), 2),
                    "l_returnflag": rng.choice(_RETURN_FLAGS),
                    "l_linestatus": rng.choice(["O", "F"]),
                    "l_shipdate": ship_date,
                    "l_commitdate": ship_date + rng.randint(-30, 30),
                    "l_receiptdate": ship_date + rng.randint(1, 30),
                    "l_shipinstruct": "",
                    "l_shipmode": rng.choice(_SHIP_MODES),
                    "l_comment": "",
                }
            )
    database["orders"] = orders
    database["lineitem"] = lineitem
    return database


def generate_psp_data(
    relation_count: int = 22,
    rows_per_table: int = 2_000,
    seed: int = 11,
    num_domain: int = 1_000,
) -> Database:
    """Generate data for the PSP scale-up schema (small, for execution tests)."""
    rng = random.Random(seed)
    database: Database = {}
    for index in range(1, relation_count + 1):
        rows = []
        for i in range(rows_per_table):
            rows.append(
                {
                    "p": i,
                    "sp": rng.randrange(rows_per_table),
                    "num": rng.randrange(num_domain),
                }
            )
        database[f"psp{index}"] = rows
    return database
