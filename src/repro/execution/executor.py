"""Plan executor: runs optimizer plans over an in-memory database.

The executor consumes the executable operator trees produced by
:func:`repro.optimizer.plans.extract_plan`.  Materialized nodes are computed
once, their write/read-back work is charged with the cost-model constants, and
subsequent uses read the stored copy — so the difference between a No-MQO plan
and an MQO plan shows up directly in the executed work, which is the Figure 7
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.dag.builder import IndexBuildOp
from repro.dag.nodes import (
    AggregateOp,
    JoinOp,
    NestedApplyOp,
    NoOp,
    ProjectOp,
    ScanOp,
    SelectOp,
)
from repro.execution.datagen import Database
from repro.execution.operators import (
    ExecutionStats,
    Row,
    aggregate_rows,
    filter_rows,
    join_rows,
    nested_apply_rows,
    project_rows,
    rows_blocks,
    scan_rows,
)
from repro.optimizer.plans import ConsolidatedPlan, PlanNode, extract_plan


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be executed."""


@dataclass
class ExecutionResult:
    """Rows and work accounting of one plan execution."""

    rows: List[Row]
    stats: ExecutionStats
    per_query_rows: List[List[Row]] = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        return self.stats.simulated_seconds


class Executor:
    """Executes consolidated plans over an in-memory database."""

    def __init__(
        self,
        database: Database,
        catalog: Catalog,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.database = database
        self.catalog = catalog
        self.cost_model = cost_model

    # -- public API -----------------------------------------------------------
    def run(self, plan: ConsolidatedPlan) -> ExecutionResult:
        """Execute the whole batch plan (from the pseudo-root)."""
        tree = extract_plan(plan)
        stats = ExecutionStats()
        cache: Dict[int, List[Row]] = {}
        per_query: List[List[Row]] = []
        if isinstance(tree.operation.operator if tree.operation else None, NoOp):
            for child in tree.children:
                rows = self._execute(child, stats, cache)
                per_query.append(rows)
            all_rows = [row for rows in per_query for row in rows]
        else:
            all_rows = self._execute(tree, stats, cache)
            per_query = [all_rows]
        return ExecutionResult(all_rows, stats, per_query)

    # -- plan interpretation ------------------------------------------------
    def _execute(self, node: PlanNode, stats: ExecutionStats, cache: Dict[int, List[Row]]) -> List[Row]:
        if node.kind == "reuse":
            rows = cache.get(node.equivalence.id)
            if rows is None:
                raise ExecutionError(f"reuse of {node.equivalence.label} before materialization")
            blocks = rows_blocks(rows, self.cost_model)
            cost = self.cost_model.sequential_read(blocks)
            stats.blocks_read += blocks
            stats.io_seconds += cost.io
            stats.cpu_seconds += cost.cpu
            stats.reuses += 1
            return rows
        if node.kind == "materialize":
            rows = self._execute(node.children[0], stats, cache)
            cache[node.equivalence.id] = rows
            blocks = rows_blocks(rows, self.cost_model)
            cost = self.cost_model.sequential_write(blocks)
            stats.blocks_written += blocks
            stats.rows_materialized += len(rows)
            stats.io_seconds += cost.io
            stats.cpu_seconds += cost.cpu
            return rows
        if node.kind == "base":
            raise ExecutionError("stored tables are consumed by their parent scan operation")
        return self._execute_operation(node, stats, cache)

    def _execute_operation(self, node: PlanNode, stats: ExecutionStats, cache: Dict[int, List[Row]]) -> List[Row]:
        operator = node.operation.operator
        if isinstance(operator, ScanOp):
            table = self.catalog.table(operator.table)
            return scan_rows(
                self.database[operator.table.lower()],
                operator.alias,
                operator.predicate,
                stats,
                self.cost_model,
                table.tuple_width,
            )
        if isinstance(operator, NoOp):
            rows: List[Row] = []
            for child in node.children:
                rows.extend(self._execute(child, stats, cache))
            return rows
        children_rows = [self._execute(child, stats, cache) for child in node.children]
        if isinstance(operator, SelectOp):
            return filter_rows(children_rows[0], operator.predicate, stats, self.cost_model)
        if isinstance(operator, ProjectOp):
            return project_rows(children_rows[0], operator.columns, stats, self.cost_model)
        if isinstance(operator, JoinOp):
            return join_rows(children_rows[0], children_rows[1], operator.predicates, stats, self.cost_model)
        if isinstance(operator, AggregateOp):
            return aggregate_rows(
                children_rows[0],
                operator.group_by,
                operator.aggregates,
                operator.output_alias,
                stats,
                self.cost_model,
            )
        if isinstance(operator, IndexBuildOp):
            # Index construction over the (materialized) child: charge the
            # build cost; the rows pass through unchanged.
            rows = children_rows[0]
            cost = self.cost_model.index_build_cost(len(rows), 16)
            stats.io_seconds += cost.io
            stats.cpu_seconds += cost.cpu
            return rows
        if isinstance(operator, NestedApplyOp):
            outer_rows = children_rows[0]
            if len(children_rows) > 1:
                invariant_rows = children_rows[1]
            else:
                raise ExecutionError("nested apply without an invariant input")
            if operator.aggregate is None or operator.outer_column is None:
                raise ExecutionError("nested apply operator lacks execution metadata")
            if operator.name == "correlated_apply":
                # Plain correlated evaluation: every distinct outer binding is
                # a separate invocation of the nested query, each with its own
                # access cost (the optimizer's pushdown estimate); charge it so
                # the executed work reflects repeated invocation.
                outer_refs = [
                    c
                    for p in operator.correlation
                    for c in sorted(p.columns())
                    if outer_rows and c in outer_rows[0]
                ]
                invocations = len({tuple(r.get(c) for c in outer_refs) for r in outer_rows}) if outer_rows else 0
                probe = self.cost_model.index_probe_cost(
                    max(1.0, len(invariant_rows) / max(1, invocations or 1)), 64
                )
                stats.io_seconds += probe.io * invocations
                stats.cpu_seconds += probe.cpu * invocations
            return nested_apply_rows(
                outer_rows,
                invariant_rows,
                operator.correlation,
                operator.aggregate,
                operator.outer_column,
                operator.comparison,
                stats,
                self.cost_model,
            )
        raise ExecutionError(f"unsupported operator in executable plan: {operator.describe()}")
