"""Plan executor: runs optimizer plans over an in-memory database.

The executor consumes the executable operator trees produced by
:func:`repro.optimizer.plans.extract_plan`.  Materialized nodes are computed
once, their write/read-back work is charged with the cost-model constants, and
subsequent uses read the stored copy — so the difference between a No-MQO plan
and an MQO plan shows up directly in the executed work, which is the Figure 7
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.dag.builder import IndexBuildOp
from repro.dag.nodes import (
    AggregateOp,
    CachedReadOp,
    JoinOp,
    NestedApplyOp,
    NoOp,
    ProjectOp,
    ScanOp,
    SelectOp,
)
from repro.execution.datagen import Database
from repro.execution.operators import (
    ExecutionStats,
    Row,
    aggregate_rows,
    filter_rows,
    join_rows,
    nested_apply_rows,
    project_rows,
    rows_blocks,
    scan_rows,
)
from repro.execution.result_cache import (
    ResultCache,
    ResultCacheEntry,
    operator_token,
    token_digest,
)
from repro.optimizer.plans import ConsolidatedPlan, PlanNode, extract_plan


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be executed."""


@dataclass
class ExecutionResult:
    """Rows and work accounting of one plan execution."""

    rows: List[Row]
    stats: ExecutionStats
    per_query_rows: List[List[Row]] = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        return self.stats.simulated_seconds


@dataclass
class _DigestContext:
    """Per-run digest bookkeeping for the result cache.

    ``digests``/``deps`` record, per materialized equivalence-node id, the
    content digest and base-relation set of the producing subtree, so
    ``reuse`` plan nodes (which carry no subtree of their own) resolve to
    their producer's values.  Producers always precede their reuses in the
    executor's recursion: :func:`extract_plan` marks the *first* DFS
    encounter as the materialize node, and the executor (and the digest
    recursion) walk the exact same DFS order.
    """

    digests: Dict[int, str] = field(default_factory=dict)
    deps: Dict[int, FrozenSet[str]] = field(default_factory=dict)


class Executor:
    """Executes consolidated plans over an in-memory database.

    With a :class:`~repro.execution.result_cache.ResultCache` attached, the
    executor additionally (a) *serves* any materialize/operation node whose
    content digest is already stored — charging only the sequential read of
    the stored blocks — and (b) *populates* the cache from materialized
    intermediates, scan-family nodes, and per-query results it computes.
    ``result_cache=None`` (the default) skips every digest computation and
    executes exactly as before.
    """

    def __init__(
        self,
        database: Database,
        catalog: Catalog,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        result_cache: Optional[ResultCache] = None,
    ) -> None:
        self.database = database
        self.catalog = catalog
        self.cost_model = cost_model
        self.result_cache = result_cache

    # -- public API -----------------------------------------------------------
    def run(self, plan: ConsolidatedPlan) -> ExecutionResult:
        """Execute the whole batch plan (from the pseudo-root)."""
        tree = extract_plan(plan)
        stats = ExecutionStats()
        cache: Dict[int, List[Row]] = {}
        ctx = _DigestContext() if self.result_cache is not None else None
        per_query: List[List[Row]] = []
        if isinstance(tree.operation.operator if tree.operation else None, NoOp):
            for child in tree.children:
                rows = self._execute(child, stats, cache, ctx)
                if ctx is not None:
                    self._store(child, rows, ctx)
                per_query.append(rows)
            all_rows = [row for rows in per_query for row in rows]
        else:
            all_rows = self._execute(tree, stats, cache, ctx)
            if ctx is not None:
                self._store(tree, all_rows, ctx)
            per_query = [all_rows]
        return ExecutionResult(all_rows, stats, per_query)

    # -- plan interpretation ------------------------------------------------
    def _execute(
        self,
        node: PlanNode,
        stats: ExecutionStats,
        cache: Dict[int, List[Row]],
        ctx: Optional[_DigestContext] = None,
    ) -> List[Row]:
        if node.kind == "reuse":
            rows = cache.get(node.equivalence.id)
            if rows is None:
                raise ExecutionError(f"reuse of {node.equivalence.label} before materialization")
            blocks = rows_blocks(rows, self.cost_model)
            cost = self.cost_model.sequential_read(blocks)
            stats.blocks_read += blocks
            stats.io_seconds += cost.io
            stats.cpu_seconds += cost.cpu
            stats.reuses += 1
            return rows
        if node.kind == "materialize":
            if ctx is not None:
                # Digest unconditionally: this records the digest/deps of
                # every materialized node in the subtree, which later
                # ``reuse`` nodes resolve through the context.
                digest = self._plan_digest(node, ctx)
                served = self._try_serve(node, digest, stats, cache)
                if served is not None:
                    return served
            rows = self._execute(node.children[0], stats, cache, ctx)
            cache[node.equivalence.id] = rows
            blocks = rows_blocks(rows, self.cost_model)
            cost = self.cost_model.sequential_write(blocks)
            stats.blocks_written += blocks
            stats.rows_materialized += len(rows)
            stats.io_seconds += cost.io
            stats.cpu_seconds += cost.cpu
            if ctx is not None:
                self._store(node, rows, ctx)
            return rows
        if node.kind == "base":
            raise ExecutionError("stored tables are consumed by their parent scan operation")
        if ctx is not None and not isinstance(node.operation.operator, (NoOp, CachedReadOp)):
            digest = self._plan_digest(node, ctx)
            served = self._try_serve(node, digest, stats, cache)
            if served is not None:
                return served
            rows = self._execute_operation(node, stats, cache, ctx)
            if self._scan_key(node) is not None:
                self._store(node, rows, ctx, digest=digest)
            return rows
        return self._execute_operation(node, stats, cache, ctx)

    # -- result-cache hooks ---------------------------------------------------
    def _plan_digest(self, node: PlanNode, ctx: _DigestContext) -> str:
        """Content digest of the physical subtree rooted at *node*.

        Materialization-transparent: a materialize node digests as its
        child and a reuse node as its producer, so logically identical
        subtrees hash alike whether or not the optimizer chose to share
        them.  Base leaves contribute the catalog statistics digest of
        their table, pinning the optimizer-visible data content.
        """
        if node.kind == "reuse":
            return ctx.digests[node.equivalence.id]
        if node.kind == "materialize":
            digest = self._plan_digest(node.children[0], ctx)
            ctx.digests[node.equivalence.id] = digest
            return digest
        if node.kind == "base":
            table = node.equivalence.base_table or ""
            stats_digest = self.catalog.table(table).stats_digest()
            return token_digest(f"base[{table}|{stats_digest}]")
        operator = node.operation.operator
        parts = ["op|" + operator_token(operator)]
        if not isinstance(operator, CachedReadOp):
            # A CachedReadOp's digest field already identifies the content;
            # its child is a synthetic base node with no stored table.
            parts.extend(self._plan_digest(child, ctx) for child in node.children)
        return token_digest("|".join(parts))

    def _plan_deps(self, node: PlanNode, ctx: _DigestContext) -> FrozenSet[str]:
        """Base relations read by the subtree rooted at *node* (lowercased)."""
        if node.kind == "reuse":
            return ctx.deps[node.equivalence.id]
        if node.kind == "materialize":
            deps = self._plan_deps(node.children[0], ctx)
            ctx.deps[node.equivalence.id] = deps
            return deps
        if node.kind == "base":
            return frozenset(((node.equivalence.base_table or "").lower(),))
        operator = node.operation.operator
        if isinstance(operator, (ScanOp, CachedReadOp)):
            return frozenset((operator.table.lower(),))
        if not node.children:
            return frozenset()
        return frozenset().union(*(self._plan_deps(child, ctx) for child in node.children))

    def _has_materialize(self, node: PlanNode) -> bool:
        """True if any strict descendant of *node* is a materialize node."""
        return any(
            child.kind == "materialize" or self._has_materialize(child)
            for child in node.children
        )

    def _scan_key(self, node: PlanNode) -> Optional[tuple]:
        """The equivalence key if *node* is a scan-family node, else None."""
        key = node.equivalence.key
        if isinstance(key, tuple) and key and key[0] == "scan":
            return key
        return None

    def _try_serve(
        self,
        node: PlanNode,
        digest: str,
        stats: ExecutionStats,
        cache: Dict[int, List[Row]],
    ) -> Optional[List[Row]]:
        """Serve *node* from the result cache if its digest is stored.

        A digest match means the cached rows are byte-identical to what
        executing the subtree would produce (see the result-cache module
        docstring), so only the sequential read of the stored blocks is
        charged.  Nodes with a materialize *descendant* are never served:
        skipping the subtree would skip populating the per-run cache that
        later reuse nodes read.
        """
        rc = self.result_cache
        assert rc is not None
        if self._has_materialize(node):
            return None
        entry = rc.lookup(digest)
        if entry is None:
            return None
        rows = list(entry.rows)
        cost = self.cost_model.sequential_read(entry.blocks)
        stats.blocks_read += entry.blocks
        stats.io_seconds += cost.io
        stats.cpu_seconds += cost.cpu
        rc.exec_serves += 1
        if node.kind == "materialize":
            # The plan still expects this intermediate to be reusable; no
            # write is charged — the cached copy already exists.
            cache[node.equivalence.id] = rows
        return rows

    def _store(
        self,
        node: PlanNode,
        rows: List[Row],
        ctx: _DigestContext,
        digest: Optional[str] = None,
    ) -> None:
        """Store the executed *rows* of *node* in the result cache.

        Called for materialized intermediates, scan-family nodes, and
        per-query roots.  Reuse nodes and rows produced *by* a cached read
        are skipped — their content is already stored under its original
        digest.  Scan-family nodes keep their equivalence-key components so
        the build-time injection pass can offer them for exact and covering
        (subsumption) reuse.
        """
        rc = self.result_cache
        assert rc is not None
        if node.kind == "reuse":
            return
        inner = node.children[0] if node.kind == "materialize" else node
        if inner.kind == "reuse":
            return
        if inner.operation is not None and isinstance(inner.operation.operator, CachedReadOp):
            return
        if digest is None:
            digest = self._plan_digest(node, ctx)
        key = self._scan_key(node)
        entry = ResultCacheEntry(
            digest=digest,
            kind="scan" if key is not None else "plan",
            rows=list(rows),
            row_count=len(rows),
            blocks=rows_blocks(rows, self.cost_model),
            props=node.equivalence.properties,
            deps=self._plan_deps(node, ctx),
            table=key[1] if key is not None else None,
            alias=key[2] if key is not None else None,
            predicates=key[3] if key is not None else None,
        )
        rc.put(entry)

    def _execute_operation(
        self,
        node: PlanNode,
        stats: ExecutionStats,
        cache: Dict[int, List[Row]],
        ctx: Optional[_DigestContext] = None,
    ) -> List[Row]:
        operator = node.operation.operator
        if isinstance(operator, CachedReadOp):
            # Rows are pinned in the operator itself: once a plan is built,
            # it executes the same bytes even if the store entry has been
            # evicted, faulted, or invalidated since.
            rows = list(operator.rows)
            cost = self.cost_model.sequential_read(operator.blocks)
            stats.blocks_read += operator.blocks
            stats.io_seconds += cost.io
            stats.cpu_seconds += cost.cpu
            if self.result_cache is not None:
                self.result_cache.injected_serves += 1
            if operator.residual is not None:
                rows = filter_rows(rows, operator.residual, stats, self.cost_model)
            return rows
        if isinstance(operator, ScanOp):
            table = self.catalog.table(operator.table)
            return scan_rows(
                self.database[operator.table.lower()],
                operator.alias,
                operator.predicate,
                stats,
                self.cost_model,
                table.tuple_width,
            )
        if isinstance(operator, NoOp):
            rows: List[Row] = []
            for child in node.children:
                rows.extend(self._execute(child, stats, cache, ctx))
            return rows
        children_rows = [self._execute(child, stats, cache, ctx) for child in node.children]
        if isinstance(operator, SelectOp):
            return filter_rows(children_rows[0], operator.predicate, stats, self.cost_model)
        if isinstance(operator, ProjectOp):
            return project_rows(children_rows[0], operator.columns, stats, self.cost_model)
        if isinstance(operator, JoinOp):
            return join_rows(children_rows[0], children_rows[1], operator.predicates, stats, self.cost_model)
        if isinstance(operator, AggregateOp):
            return aggregate_rows(
                children_rows[0],
                operator.group_by,
                operator.aggregates,
                operator.output_alias,
                stats,
                self.cost_model,
            )
        if isinstance(operator, IndexBuildOp):
            # Index construction over the (materialized) child: charge the
            # build cost; the rows pass through unchanged.
            rows = children_rows[0]
            cost = self.cost_model.index_build_cost(len(rows), 16)
            stats.io_seconds += cost.io
            stats.cpu_seconds += cost.cpu
            return rows
        if isinstance(operator, NestedApplyOp):
            outer_rows = children_rows[0]
            if len(children_rows) > 1:
                invariant_rows = children_rows[1]
            else:
                raise ExecutionError("nested apply without an invariant input")
            if operator.aggregate is None or operator.outer_column is None:
                raise ExecutionError("nested apply operator lacks execution metadata")
            if operator.name == "correlated_apply":
                # Plain correlated evaluation: every distinct outer binding is
                # a separate invocation of the nested query, each with its own
                # access cost (the optimizer's pushdown estimate); charge it so
                # the executed work reflects repeated invocation.
                outer_refs = [
                    c
                    for p in operator.correlation
                    for c in sorted(p.columns())
                    if outer_rows and c in outer_rows[0]
                ]
                invocations = len({tuple(r.get(c) for c in outer_refs) for r in outer_rows}) if outer_rows else 0
                probe = self.cost_model.index_probe_cost(
                    max(1.0, len(invariant_rows) / max(1, invocations or 1)), 64
                )
                stats.io_seconds += probe.io * invocations
                stats.cpu_seconds += probe.cpu * invocations
            return nested_apply_rows(
                outer_rows,
                invariant_rows,
                operator.correlation,
                operator.aggregate,
                operator.outer_column,
                operator.comparison,
                stats,
                self.cost_model,
            )
        raise ExecutionError(f"unsupported operator in executable plan: {operator.describe()}")
