"""Physical operator implementations for the simulated executor.

Rows are dictionaries keyed by :class:`~repro.algebra.columns.ColumnRef`, so
predicates evaluate directly against them.  The executor is correctness- and
work-accounting oriented rather than performance oriented: joins are evaluated
as hash joins on their equality conjuncts (the choice of join algorithm does
not change the result, and the *work accounting* — rows touched, bytes
materialized — is derived from the logical amount of data flowing through the
plan, priced with the optimizer's own cost-model constants).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.columns import ColumnRef
from repro.algebra.expressions import AggregateFunction
from repro.algebra.predicates import Comparison, Predicate
from repro.cost.model import CostModel

Row = Dict[ColumnRef, object]


@dataclass
class ExecutionStats:
    """Work performed while executing a plan."""

    rows_scanned: int = 0
    rows_processed: int = 0
    rows_materialized: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    io_seconds: float = 0.0
    cpu_seconds: float = 0.0
    reuses: int = 0

    @property
    def simulated_seconds(self) -> float:
        """Total simulated elapsed time (the Figure 7 metric)."""
        return self.io_seconds + self.cpu_seconds

    def merge(self, other: "ExecutionStats") -> None:
        self.rows_scanned += other.rows_scanned
        self.rows_processed += other.rows_processed
        self.rows_materialized += other.rows_materialized
        self.blocks_read += other.blocks_read
        self.blocks_written += other.blocks_written
        self.io_seconds += other.io_seconds
        self.cpu_seconds += other.cpu_seconds
        self.reuses += other.reuses


def row_bytes(row: Row) -> int:
    """Approximate width of a row in bytes (for block accounting)."""
    total = 0
    for value in row.values():
        if isinstance(value, str):
            total += max(1, len(value))
        else:
            total += 8
    return max(8, total)


def rows_blocks(rows: Sequence[Row], model: CostModel) -> int:
    """Number of blocks a list of rows occupies."""
    if not rows:
        return 1
    return max(1, (len(rows) * row_bytes(rows[0]) + model.block_size - 1) // model.block_size)


# ---------------------------------------------------------------------------
# Row-level operator implementations
# ---------------------------------------------------------------------------

def scan_rows(
    table_rows: Sequence[Dict[str, object]],
    alias: str,
    predicate: Optional[Predicate],
    stats: ExecutionStats,
    model: CostModel,
    tuple_width: int,
) -> List[Row]:
    """Scan a stored table, qualify columns with *alias*, apply the filter."""
    output: List[Row] = []
    for raw in table_rows:
        row = {ColumnRef(alias, name): value for name, value in raw.items()}
        if predicate is None or predicate.evaluate(row):
            output.append(row)
    stats.rows_scanned += len(table_rows)
    blocks = max(1, (len(table_rows) * tuple_width + model.block_size - 1) // model.block_size)
    stats.blocks_read += blocks
    cost = model.sequential_read(blocks)
    stats.io_seconds += cost.io
    stats.cpu_seconds += cost.cpu + len(table_rows) * model.cpu_time_per_tuple
    return output


def filter_rows(rows: Sequence[Row], predicate: Predicate, stats: ExecutionStats, model: CostModel) -> List[Row]:
    output = [row for row in rows if predicate.evaluate(row)]
    stats.rows_processed += len(rows)
    stats.cpu_seconds += len(rows) * model.cpu_time_per_tuple
    return output


def project_rows(rows: Sequence[Row], columns: Sequence[ColumnRef], stats: ExecutionStats, model: CostModel) -> List[Row]:
    kept = set(columns)
    output = []
    for row in rows:
        projected = {ref: value for ref, value in row.items() if ref in kept}
        output.append(projected or dict(row))
    stats.rows_processed += len(rows)
    stats.cpu_seconds += len(rows) * model.cpu_time_per_tuple
    return output


def _split_predicates(
    predicates: Sequence[Predicate], left_columns: set, right_columns: set
) -> Tuple[List[Tuple[ColumnRef, ColumnRef]], List[Predicate]]:
    """Separate equi-join pairs (left column, right column) from residuals."""
    equi: List[Tuple[ColumnRef, ColumnRef]] = []
    residual: List[Predicate] = []
    for predicate in predicates:
        for conjunct in predicate.conjuncts():
            matched = False
            if isinstance(conjunct, Comparison) and conjunct.op == "=" and conjunct.is_column_column():
                left, right = conjunct.left, conjunct.right
                if left in left_columns and right in right_columns:
                    equi.append((left, right))
                    matched = True
                elif right in left_columns and left in right_columns:
                    equi.append((right, left))
                    matched = True
            if not matched:
                residual.append(conjunct)
    return equi, residual


def join_rows(
    left: Sequence[Row],
    right: Sequence[Row],
    predicates: Sequence[Predicate],
    stats: ExecutionStats,
    model: CostModel,
) -> List[Row]:
    """Join two row sets (hash join on equality conjuncts, filter the rest)."""
    stats.rows_processed += len(left) + len(right)
    stats.cpu_seconds += (len(left) + len(right)) * model.cpu_time_per_tuple
    if not left or not right:
        return []
    left_columns = set(left[0].keys())
    right_columns = set(right[0].keys())
    equi, residual = _split_predicates(predicates, left_columns, right_columns)

    output: List[Row] = []
    if equi:
        right_index: Dict[tuple, List[Row]] = defaultdict(list)
        for row in right:
            key = tuple(row.get(right_col) for _, right_col in equi)
            right_index[key].append(row)
        for row in left:
            key = tuple(row.get(left_col) for left_col, _ in equi)
            for match in right_index.get(key, ()):
                combined = dict(row)
                combined.update(match)
                if all(p.evaluate(combined) for p in residual):
                    output.append(combined)
    else:
        for row in left:
            for match in right:
                combined = dict(row)
                combined.update(match)
                if all(p.evaluate(combined) for p in residual):
                    output.append(combined)
        stats.cpu_seconds += len(left) * len(right) * model.cpu_time_per_tuple
    stats.rows_processed += len(output)
    stats.cpu_seconds += len(output) * model.cpu_time_per_tuple
    return output


def _aggregate_value(func: str, values: List[float]) -> object:
    if func == "count":
        return len(values)
    if not values:
        return None
    if func == "sum":
        return sum(values)
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    if func == "avg":
        return sum(values) / len(values)
    raise ValueError(f"unsupported aggregate function {func!r}")


def aggregate_rows(
    rows: Sequence[Row],
    group_by: Sequence[ColumnRef],
    aggregates: Sequence[AggregateFunction],
    output_alias: str,
    stats: ExecutionStats,
    model: CostModel,
) -> List[Row]:
    """Group-by aggregation; output columns are qualified with *output_alias*."""
    groups: Dict[tuple, List[Row]] = defaultdict(list)
    for row in rows:
        key = tuple(row.get(column) for column in group_by)
        groups[key].append(row)
    output: List[Row] = []
    for key, members in groups.items():
        out_row: Row = {}
        for column, value in zip(group_by, key):
            out_row[ColumnRef(output_alias, column.column)] = value
        for aggregate in aggregates:
            if aggregate.column is None:
                values = [1.0] * len(members)
            else:
                values = [m.get(aggregate.column) for m in members if m.get(aggregate.column) is not None]
            out_row[ColumnRef(output_alias, aggregate.alias)] = _aggregate_value(aggregate.func, values)
        output.append(out_row)
    stats.rows_processed += len(rows) + len(output)
    stats.cpu_seconds += (len(rows) + len(output)) * model.cpu_time_per_tuple
    return output


_COMPARE = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def nested_apply_rows(
    outer: Sequence[Row],
    invariant: Sequence[Row],
    correlation: Sequence[Predicate],
    aggregate: AggregateFunction,
    outer_column: ColumnRef,
    comparison: str,
    stats: ExecutionStats,
    model: CostModel,
) -> List[Row]:
    """Correlated scalar-subquery filter over the outer rows.

    For every outer row the matching invariant rows are found (through an
    in-memory index on the equality correlation columns, mirroring the
    temporary index the optimizer would build), the scalar aggregate computed,
    and the outer row kept iff the comparison holds.
    """
    if not invariant:
        return []
    invariant_columns = set(invariant[0].keys())
    equality_pairs: List[Tuple[ColumnRef, ColumnRef]] = []  # (inner, outer)
    residual: List[Predicate] = []
    for predicate in correlation:
        if isinstance(predicate, Comparison) and predicate.op == "=" and predicate.is_column_column():
            if predicate.left in invariant_columns:
                equality_pairs.append((predicate.left, predicate.right))
                continue
            if predicate.right in invariant_columns:
                equality_pairs.append((predicate.right, predicate.left))
                continue
        residual.append(predicate)

    index: Dict[tuple, List[Row]] = defaultdict(list)
    if equality_pairs:
        for row in invariant:
            key = tuple(row.get(inner) for inner, _ in equality_pairs)
            index[key].append(row)

    output: List[Row] = []
    for row in outer:
        if equality_pairs:
            key = tuple(row.get(outer_ref) for _, outer_ref in equality_pairs)
            candidates = index.get(key, ())
        else:
            candidates = invariant
        if residual:
            merged_candidates = []
            for candidate in candidates:
                combined = dict(candidate)
                combined.update(row)
                if all(p.evaluate(combined) for p in residual):
                    merged_candidates.append(candidate)
            candidates = merged_candidates
        values = [
            c.get(aggregate.column)
            for c in candidates
            if aggregate.column is None or c.get(aggregate.column) is not None
        ]
        scalar = _aggregate_value(aggregate.func, values)
        if scalar is None:
            continue
        outer_value = row.get(outer_column)
        if outer_value is None:
            continue
        if _COMPARE[comparison](outer_value, scalar):
            output.append(row)
    stats.rows_processed += len(outer) + len(invariant)
    stats.cpu_seconds += (len(outer) + len(invariant)) * model.cpu_time_per_tuple
    return output
