"""Cross-batch semantic result cache (PR 10).

The paper shares work *within* a batch by materializing common
subexpressions; this module shares it *across* batches over time,
PartitionCache-style: intermediates actually computed by the executor are
kept in a bounded, content-addressed store, and the DAG builder injects them
into later builds as reuse-cost base nodes — including *covering* hits where
a cached weaker result plus a compensating residual selection answers a
stronger predicate (the implication proof is the same
:func:`repro.algebra.predicates.implies` machinery the subsumption pass
uses; see :func:`repro.dag.subsumption.inject_cached_results`).

**Keying.**  Executed rows are a pure function of the *physical operator
subtree* and the stored data: the executor never prunes columns (early
projection affects only estimated :class:`LogicalProperties`, i.e. costs),
scans qualify all raw columns in raw key order, and every operator is
deterministic.  Each entry is therefore keyed by a sha256 digest of the
canonical serialization of the subtree that produced it, with base-table
leaves contributing their catalog statistics digest
(:meth:`repro.catalog.schema.Table.stats_digest`) — so a digest match at
execution time means the cached rows are byte-identical to what recomputing
the subtree would produce, row and column order included.  Canonical
equivalence keys enter through the *scan-kind* metadata: entries produced at
``("scan", table, alias, predicates)`` equivalence nodes carry that key's
components, which is what makes them candidates for build-time exact and
covering injection.

**Lifecycle.**  The store is the ``results`` family of a
:class:`~repro.service.session.SessionCache`: LRU-bounded
(``SessionCacheLimits.results``), invalidated per relation through the
catalog's statistics digests alongside the other ten families, wiped on
schema changes, pickled into worker snapshots, and reachable by the chaos
:class:`~repro.service.resilience.FaultInjector` (a dropped or corrupted
entry is a miss/quarantine — strictly less reuse, never a wrong row; plans
already built pin their served rows inside the
:class:`~repro.dag.nodes.CachedReadOp` operator itself).

The cache assumes one logical database per catalog: statistics digests pin
the *optimizer-visible* content, and the differential suite
(``tests/test_result_cache.py``) executes cached and cold paths against the
same generated data, which is the deployment contract.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.algebra.columns import ColumnRef
from repro.algebra.predicates import Predicate
from repro.cost.estimation import LogicalProperties
from repro.execution.operators import Row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dag.nodes import Operator
    from repro.optimizer.plans import ConsolidatedPlan
    from repro.service.session import SessionCache


def canonical_token(value: object) -> str:
    """Deterministic serialization of operator payload values.

    Stable across ``PYTHONHASHSEED`` and across processes: frozensets are
    sorted by their element tokens, predicates and column refs serialize
    through their (deterministic) ``str``, floats through ``repr`` (IEEE-754
    round-trip), and dataclasses by class name plus field tokens.
    """
    if value is None:
        return "~"
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, str):
        return "s:" + value
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, Predicate):
        return "P:" + str(value)
    if isinstance(value, ColumnRef):
        return "C:" + str(value)
    if isinstance(value, (tuple, list)):
        return "(" + ",".join(canonical_token(v) for v in value) + ")"
    if isinstance(value, (frozenset, set)):
        return "{" + ",".join(sorted(canonical_token(v) for v in value)) + "}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        parts = [type(value).__name__]
        for f in dataclasses.fields(value):
            if not f.compare:
                continue  # e.g. CachedReadOp.rows: payload, not identity
            parts.append(f.name + "=" + canonical_token(getattr(value, f.name)))
        return "<" + "|".join(parts) + ">"
    return f"{type(value).__name__}:{value!r}"


def operator_token(operator: "Operator") -> str:
    """Canonical serialization of a physical operator (without children)."""
    from repro.dag.nodes import CachedReadOp

    if isinstance(operator, CachedReadOp):
        # The digest already identifies the cached content; the residual is
        # the only other execution-relevant payload (rows are pinned data).
        residual = "" if operator.residual is None else str(operator.residual)
        return f"<CachedReadOp|{operator.digest}|{residual}>"
    return canonical_token(operator)


def token_digest(token: str) -> str:
    """sha256 hex digest of a canonical token."""
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


def adopt_cached_reads(
    plan: "ConsolidatedPlan", cache: Optional["ResultCache"] = None
) -> int:
    """Swap scan-family plan choices to their injected cached reads.

    :func:`repro.dag.subsumption.inject_cached_results` prices injected
    :class:`~repro.dag.nodes.CachedReadOp` operations infinite, so the
    optimization search — join orders, materialization choices, argmin
    tie-breaks — runs bit-identically to a cache-off build.  This post-pass
    then adopts the cached read per node.  It is byte-safe because it only
    ever touches *scan-family* equivalence nodes, whose every derivation
    yields the same rows in the same (table-scan) order with the same
    columns; admission (the reuse-cost gate) already happened at injection
    time.  Idempotent: a choice already pointing at a cached read is left
    alone, so re-adopting a plan served from the plan cache is a no-op.

    Returns the number of choices swapped, also accumulated on
    ``cache.adoptions`` when *cache* is given.
    """
    from repro.dag.nodes import CachedReadOp

    arena = plan.dag.arena
    eq_key = arena.eq_key
    swapped = 0
    for eq_id in sorted(plan.choices):
        operation = plan.choices[eq_id]
        if operation is None or isinstance(operation.operator, CachedReadOp):
            continue
        key = eq_key[eq_id]
        if not (isinstance(key, tuple) and key and key[0] == "scan"):
            continue
        for op_id in arena.eq_op_ids[eq_id]:
            if isinstance(arena.op_operator[op_id], CachedReadOp):
                plan.choices[eq_id] = arena.op_view(op_id)
                swapped += 1
                break
    if cache is not None:
        cache.adoptions += swapped
    return swapped


@dataclass
class ResultCacheEntry:
    """One cached executed intermediate.

    ``digest`` is the content address (canonical physical-subtree digest,
    see module docstring).  ``kind`` is ``"scan"`` for entries produced at a
    ``("scan", table, alias, predicates)`` equivalence node — the covering-
    eligible ones, carrying that key's components — and ``"plan"`` for
    everything else (materialized intermediates and per-query results),
    which serve on exact digest matches at execution time only.  ``blocks``
    is the stored size under the cost model's block accounting, charged as a
    sequential read when the entry is served; ``props`` are the producing
    equivalence node's estimated properties (reused for the injected base
    node); ``deps`` are the base relations read, the invalidation anchor.
    """

    digest: str
    kind: str
    rows: List[Row]
    row_count: int
    blocks: int
    props: LogicalProperties
    deps: FrozenSet[str]
    table: Optional[str] = None
    alias: Optional[str] = None
    predicates: Optional[FrozenSet[Predicate]] = None


class ResultCache:
    """Facade over the session's ``results`` family.

    Bound to one :class:`~repro.service.session.SessionCache`: the store is
    ``session.results`` (so bounds, invalidation, snapshots, and chaos hooks
    all come from the session), values are ``(entry, deps id)`` pairs — the
    interned deps id last, which is what ``SessionCache._evict`` reads.
    Counters: ``hits``/``misses`` count store probes (build-time candidate
    enumeration and execution-time digest lookups), ``stores`` successful
    inserts, ``exact_injections``/``covering_injections`` build-time base-
    node injections, ``adoptions`` post-search choice swaps
    (:func:`adopt_cached_reads`), ``exec_serves`` execution-time
    digest-match serves, and ``injected_serves`` rows served through an
    injected :class:`~repro.dag.nodes.CachedReadOp`.
    """

    def __init__(self, session: "SessionCache") -> None:
        self.session = session
        self.store = session.results
        #: Interned ``str(predicate)`` sort keys for deterministic candidate
        #: ordering (pure function of the predicate, never invalidated).
        self._pred_tokens: Dict[Predicate, str] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.exact_injections = 0
        self.covering_injections = 0
        self.adoptions = 0
        self.exec_serves = 0
        self.injected_serves = 0

    # -- invalidation registry (see repro.analysis M001) -----------------------
    def clear(self) -> None:
        """Drop every cached result and the predicate-token interner.

        Relation-targeted invalidation is the session's job
        (:meth:`SessionCache.sync` evicts ``results`` entries by their deps
        like every other catalog-dependent family); this is the manual
        full-wipe entry point.
        """
        self.store.clear()
        self._pred_tokens.clear()

    # -- store access -----------------------------------------------------------
    def _pred_token(self, predicate: Predicate) -> str:
        token = self._pred_tokens.get(predicate)
        if token is None:
            token = str(predicate)
            self._pred_tokens[predicate] = token
        return token

    def lookup(self, digest: str) -> Optional[ResultCacheEntry]:
        """The entry stored under *digest*, if present (counts hit/miss).

        Goes through :meth:`BoundedCache.get`, so LRU recency, chaos fault
        hooks, and :class:`CorruptedEntry` quarantine all apply.
        """
        value = self.store.get(digest)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        entry: ResultCacheEntry = value[0]
        return entry

    def put(self, entry: ResultCacheEntry) -> bool:
        """Insert *entry* unless its digest is already stored."""
        if self.store.get(entry.digest) is not None:
            return False
        self.store[entry.digest] = (entry, self.session.deps_id(entry.deps))
        self.stores += 1
        return True

    def scan_candidates(self, table: str, alias: str) -> List[ResultCacheEntry]:
        """Covering-eligible entries for scans of ``(table, alias)``.

        Every stored digest is probed through :meth:`BoundedCache.get` (so
        faulted/poisoned entries drop out here, exactly like a cold miss),
        and matches are returned smallest-first — ``(row_count, predicate
        tokens, digest)`` — so injection picks the cheapest covering result
        deterministically, independent of insertion or hash order.
        """
        matches: List[ResultCacheEntry] = []
        for digest in list(self.store.keys()):
            value = self.store.get(digest)
            if value is None:
                continue
            entry: ResultCacheEntry = value[0]
            if entry.kind != "scan":
                continue
            if entry.table == table and entry.alias == alias:
                matches.append(entry)
        matches.sort(key=self._candidate_key)
        return matches

    def _candidate_key(self, entry: ResultCacheEntry) -> Tuple[int, str, str]:
        predicates = entry.predicates or frozenset()
        preds_token = ",".join(sorted(self._pred_token(p) for p in predicates))
        return (entry.row_count, preds_token, entry.digest)

    # -- introspection ----------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """All counters as a plain dict (for benchmarks and tests)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "exact_injections": self.exact_injections,
            "covering_injections": self.covering_injections,
            "adoptions": self.adoptions,
            "exec_serves": self.exec_serves,
            "injected_serves": self.injected_serves,
            "entries": len(self.store),
        }
