"""Multi-query optimization algorithms.

All algorithms operate on the AND-OR DAG built by :class:`repro.dag.DagBuilder`
and return an :class:`~repro.optimizer.report.OptimizationResult` containing
the chosen plan, the set of materialized nodes, the estimated cost, and the
instrumentation counters reported in the paper's performance study.

* :func:`~repro.optimizer.volcano.optimize_volcano` — the baseline (no sharing).
* :func:`~repro.optimizer.volcano_sh.optimize_volcano_sh` — Volcano-SH.
* :func:`~repro.optimizer.volcano_ru.optimize_volcano_ru` — Volcano-RU.
* :func:`~repro.optimizer.greedy.optimize_greedy` — the greedy heuristic with
  sharability, incremental cost update and the monotonicity heuristic.
* :func:`~repro.optimizer.exhaustive.optimize_exhaustive` — exhaustive search
  over materialization sets (tiny DAGs only; correctness oracle).
"""

from repro.optimizer.costing import (
    best_operations,
    bestcost,
    compute_node_costs,
    total_cost,
)
from repro.optimizer.engine import (
    CostEngine,
    CostTableView,
    IncrementalCostState,
    get_engine,
)
from repro.optimizer.plans import ConsolidatedPlan, PlanNode, extract_plan
from repro.optimizer.report import OptimizationResult
from repro.optimizer.volcano import optimize_volcano
from repro.optimizer.volcano_sh import optimize_volcano_sh
from repro.optimizer.volcano_ru import optimize_volcano_ru
from repro.optimizer.greedy import GreedyOptions, optimize_greedy
from repro.optimizer.exhaustive import optimize_exhaustive

__all__ = [
    "compute_node_costs",
    "total_cost",
    "best_operations",
    "bestcost",
    "CostEngine",
    "CostTableView",
    "IncrementalCostState",
    "get_engine",
    "ConsolidatedPlan",
    "PlanNode",
    "extract_plan",
    "OptimizationResult",
    "optimize_volcano",
    "optimize_volcano_sh",
    "optimize_volcano_ru",
    "optimize_greedy",
    "GreedyOptions",
    "optimize_exhaustive",
]
