"""Volcano-style cost computation over the AND-OR DAG.

This module implements the cost recurrence of Section 3.1 of the paper,
extended for a set ``M`` of materialized equivalence nodes::

    cost(o) = exec(o) + Σ_i multiplier_i * C(e_i)
    C(e)    = cost(e)                         if e ∉ M
            = min(cost(e), reusecost(e))      if e ∈ M
    cost(e) = min { cost(o) | o ∈ children(e) }   (0 for base relations)

and the total cost of the batch given ``M``::

    bestcost(Q, M) = cost(root) + Σ_{m ∈ M} (cost(m) + matcost(m))

Two implementations coexist:

* The **reference** implementation (``child_cost`` / ``operation_cost`` /
  ``equivalence_cost`` and the ``*_reference`` functions) walks the object
  graph directly and spells out the recurrence one term at a time.  It is the
  correctness oracle: the engine-backed fast path and the greedy incremental
  variant are both tested to agree with it exactly.
* The **public entry points** (:func:`compute_node_costs`, :func:`total_cost`,
  :func:`best_operations`, :func:`bestcost`) delegate to the flat-array
  :class:`~repro.optimizer.engine.CostEngine` snapshot of the DAG, which
  removes the per-call topological sort, ``by_id`` dict rebuilds, and
  attribute-chain traversal that used to dominate the optimizer hot paths.
  :func:`compute_node_costs` returns the engine's dense cost list wrapped in
  a dict-compatible :class:`~repro.optimizer.engine.CostTableView` (node ids
  are dense ``0..n-1``), so no per-call ``{id: cost}`` dict is materialized.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Set

from repro.dag.nodes import Dag, EquivalenceNode, OperationNode
from repro.optimizer.engine import EMPTY_SET, CostTableView, get_engine

INFINITE_COST = math.inf


# ---------------------------------------------------------------------------
# Reference implementation (object-graph walk, one term at a time)
# ---------------------------------------------------------------------------

def child_cost(
    child: EquivalenceNode, costs: Dict[int, float], materialized: Set[int]
) -> float:
    """``C(e)`` of a child equivalence node under the materialized set."""
    base = costs[child.id]
    if child.id in materialized:
        return min(base, child.reuse_cost)
    return base


def operation_cost(
    operation: OperationNode, costs: Dict[int, float], materialized: Set[int]
) -> float:
    """``cost(o)`` of one operation node under the materialized set."""
    total = operation.local_cost
    for child, multiplier in zip(operation.children, operation.child_multipliers):
        total += multiplier * child_cost(child, costs, materialized)
    return total


def equivalence_cost(
    node: EquivalenceNode, costs: Dict[int, float], materialized: Set[int]
) -> float:
    """``cost(e)``: minimum over the node's operations (0 for base tables)."""
    if node.is_base:
        return 0.0
    best = INFINITE_COST
    for operation in node.operations:
        cost = operation_cost(operation, costs, materialized)
        if cost < best:
            best = cost
    return best


def compute_node_costs_reference(
    dag: Dag, materialized: Optional[Set[int]] = None
) -> Dict[int, float]:
    """From-scratch ``cost(e)`` for every node via the reference recurrence."""
    materialized = materialized or set()
    costs: Dict[int, float] = {}
    for node in sorted(dag.equivalence_nodes(), key=lambda n: n.topo_number):
        costs[node.id] = equivalence_cost(node, costs, materialized)
    return costs


def total_cost_reference(
    dag: Dag, costs: Dict[int, float], materialized: Optional[Set[int]] = None
) -> float:
    """``bestcost(Q, M)`` via the reference object-graph walk."""
    materialized = materialized or set()
    total = costs[dag.root.id]
    by_id = {node.id: node for node in dag.equivalence_nodes()}
    # Sorted so the float sum is deterministic for equal sets regardless of
    # set insertion history — and bit-identical to ``CostEngine.total``.
    for node_id in sorted(materialized):
        node = by_id[node_id]
        total += costs[node_id] + node.mat_cost
    return total


def best_operations_reference(
    dag: Dag, costs: Dict[int, float], materialized: Optional[Set[int]] = None
) -> Dict[int, OperationNode]:
    """The argmin operation per node via the reference object-graph walk."""
    materialized = materialized or set()
    choices: Dict[int, OperationNode] = {}
    for node in dag.equivalence_nodes():
        if node.is_base or not node.operations:
            continue
        best_op = None
        best_cost = INFINITE_COST
        for operation in node.operations:
            cost = operation_cost(operation, costs, materialized)
            if cost < best_cost:
                best_cost = cost
                best_op = operation
        choices[node.id] = best_op
    return choices


# ---------------------------------------------------------------------------
# Engine-backed public entry points
# ---------------------------------------------------------------------------

def compute_node_costs(dag: Dag, materialized: Optional[Set[int]] = None) -> Mapping[int, float]:
    """Compute ``cost(e)`` for every equivalence node, bottom-up.

    The result is a dict-compatible read-only view of the dense cost table
    (see :class:`~repro.optimizer.engine.CostTableView`).
    """
    engine = get_engine(dag)
    if not materialized:
        # The empty-set table is memoized on the engine; the view is
        # read-only, so sharing the underlying list is safe.
        return CostTableView(engine.baseline_costs())
    return CostTableView(engine.compute_costs(materialized))


def total_cost(
    dag: Dag, costs: Mapping[int, float], materialized: Optional[Set[int]] = None
) -> float:
    """``bestcost(Q, M)``: plan cost plus computing and materializing ``M``."""
    return get_engine(dag).total(costs, materialized if materialized else EMPTY_SET)


def best_operations(
    dag: Dag, costs: Mapping[int, float], materialized: Optional[Set[int]] = None
) -> Dict[int, OperationNode]:
    """The argmin operation for every non-base equivalence node."""
    return get_engine(dag).best_operations(costs, materialized if materialized else EMPTY_SET)


def bestcost(dag: Dag, materialized: Optional[Set[int]] = None) -> float:
    """Convenience wrapper: total cost of the batch given a materialized set."""
    engine = get_engine(dag)
    if not materialized:
        return engine.total(engine.baseline_costs(), EMPTY_SET)
    return engine.total(engine.compute_costs(materialized), materialized)
