"""Array-backed cost engine shared by the optimization hot paths.

The algorithms in this package all evaluate the same cost recurrence
(Section 3.1 of the paper) over the same immutable AND-OR DAG, thousands of
times per optimization run.  Walking the object graph each time —
``sorted(...)`` over the equivalence nodes, attribute chains like
``operation.children[i].reuse_cost``, per-call ``by_id`` dict rebuilds — is
what dominated the greedy hot path before this module existed, not the
arithmetic itself.

:class:`CostEngine` snapshots a built DAG **once** into flat, topo-indexed
tables (equivalence-node ids in the paper's DAGs are dense ``0..n-1``, so
plain lists indexed by id suffice):

* ``topo_order`` — node ids sorted by topological number (children first),
  computed once instead of once per ``compute_node_costs`` call;
* ``op_table`` — per node, ``(local_cost, ((child_id, multiplier), ...))``
  tuples, one flat structure per alternative operation;
* ``parent_ids`` / ``topo_number`` — the upward adjacency used by the
  incremental cost propagation of Figure 5;
* ``mat_cost`` / ``reuse_cost`` / ``is_base`` — per-node scalars.

The cost kernels (:meth:`compute_costs`, :meth:`total`,
:meth:`best_operations`) are written against these tables with no object
traversal in the inner loop.  ``costing.py`` delegates to them for the public
API and wraps the dense result lists in :class:`CostTableView`, a read-only
mapping that behaves like the ``{node_id: cost}`` dicts the API historically
returned.

**Dense incremental state.**  :class:`IncrementalCostState` — the Figure 5
incremental cost update — lives here as well (it used to live in
``greedy.py``; the name is re-exported there).  Its tables are flat
id-indexed lists, not dicts:

* ``_costs`` — ``cost(e)`` per node (exposed dict-style via ``state.costs``);
* ``_effective`` — the memoized ``C(e) = min(cost(e), reusecost(e))`` for
  materialized nodes and plain ``cost(e)`` otherwise, so the propagation
  inner loop is a single indexed read per child with **no** membership test;
* ``_mat_flags`` / ``_pending`` — bytearray flags replacing set membership
  tests in the propagation loop.

Benefit probes are served by :meth:`IncrementalCostState.cost_with_id` (one
toggle + exact-restore pass, no intermediate undo arithmetic), batched over a
fixed state by :meth:`IncrementalCostState.probe_many`, and fully fused —
probe chain, heap decisions, and hot tables bound once — in
:meth:`IncrementalCostState.run_monotonic_heap`.  Probes of
*independent* candidates (disjoint ancestor cones per ``parent_ids``) are
still evaluated sequentially rather than under cumulative toggles: every
candidate with a positive benefit changes the root cost, so any two useful
probes share the root's summation and their float deltas would stop being
byte-identical to the one-at-a-time reference if the toggles were stacked.
The batching therefore fuses per-probe Python overhead (call frames,
attribute lookups, undo-log arithmetic), which is what actually showed up in
profiles, and keeps every cost, plan, and Figure 10 counter bit-for-bit
unchanged.

Engines are cached per DAG via :func:`get_engine`, keyed on the node/operation
counts so a DAG that is (atypically) extended after optimization gets a fresh
snapshot.

Measured effect (see ``benchmarks/bench_fig9_scaleup.py`` and
``bench_fig10_greedy_complexity.py``; CPython 3.11, this container): greedy
optimization of the largest scale-up workload CQ5 (303 equivalence nodes,
1321 operation nodes) dropped from ~41 ms (object graph) to ~13 ms (array
engine, PR 1) to ~7 ms (dense incremental state + fused probe loop, PR 2),
CQ1 from ~1.1 ms to ~0.65 ms; Volcano-RU on CQ5 dropped from ~53 ms to
~5 ms (incremental per-query costing, PR 2) to ~3.4 ms (dense Volcano-SH
decision pass + the memoized :meth:`CostEngine.baseline_costs` table, PR 3)
and on the fig8 batch BQ5 from ~13 ms to ~3 ms — all with byte-identical
plan costs, materialized sets, and counters for all four algorithms on every
tier-1 workload and unchanged Figure 10 counters (CQ5: 2913 propagations,
172 benefit recomputations).

**Reference twins.**  Each dense kernel keeps its original object-graph
formulation alive as the oracle of the differential suite
(``tests/test_differential.py``): the Volcano-SH decision pass is mirrored
by :func:`repro.optimizer.volcano_sh._volcano_sh_reference` (which is also
the pass used by Volcano-RU's from-scratch reference
``_run_order_reference``), the incremental greedy pruning by
:func:`repro.optimizer.greedy._prune_unused_reference`, and the cost
kernels by the recurrence in :mod:`repro.optimizer.costing`.  The builder
side has the same structure: ``DagBuilder(..., memoize=False)`` (exposed as
``MQOptimizer._build_reference``) is the memo-free construction oracle; see
:mod:`repro.dag.builder`.
"""

from __future__ import annotations

import heapq
import math
from time import perf_counter
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.dag.nodes import Dag, DagError, EquivalenceNode, OperationNode

INFINITE_COST = math.inf

#: Cost deltas below this magnitude are treated as unchanged by the
#: incremental propagation (guards against float jitter re-propagating).
_EPSILON = 1e-9

#: Shared empty materialized set for the common no-materialization case.
EMPTY_SET: FrozenSet[int] = frozenset()

#: Cost tables are indexed by node id; dicts, dense lists, and views qualify.
CostTable = Union[Dict[int, float], List[float], "CostTableView"]


class CostTableView(Mapping):
    """Read-only dict-style view of a dense id-indexed cost list.

    The public costing API historically returned ``{node_id: cost}`` dicts
    with the dense key set ``0..n-1``.  The engine now keeps costs in flat
    lists; this view preserves the mapping API (indexing, ``in``, ``len``,
    iteration, ``.items()``/``.keys()``/``.values()``, ``.get``, equality
    with plain dicts) without copying the table on every call.  Hot paths
    bypass it and read the underlying list directly.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Sequence[float]) -> None:
        self._values = values

    def __getitem__(self, node_id: int) -> float:
        # Dict semantics: no negative-index aliasing, KeyError on misses.
        if isinstance(node_id, int) and 0 <= node_id < len(self._values):
            return self._values[node_id]
        raise KeyError(node_id)

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self._values)))

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, node_id: object) -> bool:
        return isinstance(node_id, int) and 0 <= node_id < len(self._values)

    def get(self, node_id: int, default: Optional[float] = None) -> Optional[float]:
        if isinstance(node_id, int) and 0 <= node_id < len(self._values):
            return self._values[node_id]
        return default

    # ``items()``/``keys()``/``values()`` are inherited from the Mapping ABC:
    # they return reusable multi-pass views, matching dict semantics (an
    # iterator-returning override would exhaust after one pass).

    def copy(self) -> Dict[int, float]:
        return dict(enumerate(self._values))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CostTableView):
            return list(self._values) == list(other._values)
        if isinstance(other, Mapping):
            if len(other) != len(self._values):
                return False
            try:
                return all(other[i] == value for i, value in enumerate(self._values))
            except KeyError:
                return False
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return f"CostTableView({dict(enumerate(self._values))!r})"


class CostEngine:
    """Flat snapshot of one DAG plus the cost kernels evaluated over it."""

    __slots__ = (
        "dag",
        "arena",
        "num_nodes",
        "root_id",
        "topo_order",
        "topo_number",
        "topo_key",
        "is_base",
        "mat_cost",
        "reuse_cost",
        "op_table",
        "op_specs",
        "op_ids",
        "op_entry_by_op_id",
        "op_owner",
        "op_is_subsumption",
        "parent_ids",
        "parent_op_ids",
        "created_by_subsumption",
        "_baseline_costs",
        "_nodes",
        "_op_nodes",
        "_op_node_by_id",
    )

    def __init__(self, dag: Dag) -> None:
        if dag.root is None:
            raise DagError("cannot build a cost engine for a DAG without a root")
        # Renumber unconditionally: the snapshot is built once per DAG shape,
        # and existing numbers may be stale if operations were added after a
        # previous numbering (Dag.add_operation does not invalidate them).
        dag.assign_topological_numbers()

        # The arena already stores the DAG as dense id-indexed columns (ids
        # are dense 0..n-1 by construction), so the snapshot degrades to
        # copying the mutable per-node scalars, aliasing the append-only
        # per-operation columns, and grouping precomputed kernel entries per
        # node — no object-graph traversal.
        arena = dag.arena
        self.dag = dag
        self.arena = arena
        num_nodes = arena.num_equivalences
        self.num_nodes = num_nodes
        self.root_id = dag.root.id
        self.topo_number: List[int] = list(arena.eq_topo)
        self.topo_order: List[int] = sorted(
            range(num_nodes), key=self.topo_number.__getitem__
        )
        #: ``topo_number * num_nodes + id``: a single-int heap key whose
        #: ordering equals the ``(topo_number, id)`` tuple's, decoded with
        #: ``key % num_nodes`` — avoids a tuple allocation and a tuple
        #: comparison per propagation-frontier push/pop.
        self.topo_key: List[int] = [
            number * num_nodes + node_id
            for node_id, number in enumerate(self.topo_number)
        ]
        # Copied (not aliased): the snapshot's annotations stay frozen even
        # if a caller re-annotates the DAG afterwards (see :func:`get_engine`).
        self.is_base: List[bool] = list(arena.eq_is_base)
        self.mat_cost: List[float] = list(arena.eq_mat_cost)
        self.reuse_cost: List[float] = list(arena.eq_reuse_cost)
        is_base = self.is_base
        eq_op_ids = arena.eq_op_ids
        arena.sync_op_tables()
        op_entry = arena.op_entry
        op_spec = arena.op_spec
        #: Per node: one (local_cost, ((child_id, multiplier), ...)) per operation,
        #: in the same order as ``node.operations`` (ties keep the first op).
        self.op_table: List[Tuple[Tuple[float, Tuple[Tuple[int, float], ...]], ...]] = [
            tuple(op_entry[op_id] for op_id in op_ids) for op_ids in eq_op_ids
        ]
        #: Arity-specialized variant of ``op_table`` for the propagation inner
        #: loop: ``None`` for nodes that are never recomputed (base tables,
        #: operation-less nodes); otherwise one entry per operation —
        #: ``(c1, m1, c2, m2, local)`` for the dominant two-child shape,
        #: ``(c1, m1, local)`` for one child, ``(children, local)`` otherwise
        #: — distinguished by ``len``.  A single unpack plus one arithmetic
        #: expression replaces the nested child loop; the left-associated
        #: expression evaluates bit-identically to the sequential
        #: accumulation it replaces.  The per-operation tuples are built once
        #: by the arena (``sync_op_tables`` above); the engine only groups
        #: them per node.
        self.op_specs: List[Optional[Tuple[Tuple[Any, ...], ...]]] = [
            None
            if is_base[node_id] or not op_ids
            else tuple(op_spec[op_id] for op_id in op_ids)
            for node_id, op_ids in enumerate(eq_op_ids)
        ]
        #: Per node: operation-node ids, parallel to ``op_table``/``op_nodes``.
        self.op_ids: List[Tuple[int, ...]] = [tuple(op_ids) for op_ids in eq_op_ids]
        #: Operation-node id -> its flat ``(local_cost, children)`` entry, for
        #: costing a *given* operation (Volcano-SH prices the plan's chosen
        #: operation rather than the argmin).  Operation ids are dense, and
        #: the arena column is append-only with immutable entries, so the
        #: alias is index-stable.
        self.op_entry_by_op_id: List[Tuple[float, Tuple[Tuple[int, float], ...]]] = op_entry
        #: Operation id -> id of the equivalence node the operation computes
        #: (append-only arena column, aliased).
        self.op_owner: List[int] = arena.op_owner
        #: Operation id -> ``is_subsumption`` flag (Volcano-SH pre-pass/undo).
        self.op_is_subsumption: List[bool] = arena.op_is_subsumption
        op_owner = arena.op_owner
        #: Per node: unique ids of parent equivalence nodes (upward adjacency).
        self.parent_ids: List[Tuple[int, ...]] = [
            tuple(sorted({op_owner[op_id] for op_id in parent_ops}))
            for parent_ops in arena.eq_parent_ops
        ]
        #: Per node: ids of the parent *operation* nodes, in ``node.parents``
        #: order (Volcano-SH's special test scans a node's parent operations).
        self.parent_op_ids: List[Tuple[int, ...]] = [
            tuple(parent_ops) for parent_ops in arena.eq_parent_ops
        ]
        #: Per node: whether the node was introduced by a subsumption
        #: derivation (these must pay for themselves, Section 3.2).
        self.created_by_subsumption: List[bool] = list(arena.eq_created_by_subsumption)
        # Lazily memoized ``compute_costs(∅)`` (see :meth:`baseline_costs`).
        self._baseline_costs: Optional[List[float]] = None
        # Lazily materialized facade-object tables (see the properties below).
        self._nodes: Optional[List[EquivalenceNode]] = None
        self._op_nodes: Optional[List[Tuple[OperationNode, ...]]] = None
        self._op_node_by_id: Optional[List[OperationNode]] = None

    # -- facade-object tables (lazy) -------------------------------------------
    @property
    def nodes(self) -> List[EquivalenceNode]:
        """id -> EquivalenceNode (ids are dense, so a list is the id map).

        Materialized on first access: the cost kernels never touch node
        objects, so engines that only ever compute costs skip the facade
        views entirely.  Views are canonical (``nodes[i] is dag.node_by_id(i)``).
        """
        nodes = self._nodes
        if nodes is None:
            eq_view = self.arena.eq_view
            nodes = [eq_view(node_id) for node_id in range(self.num_nodes)]
            self._nodes = nodes
        return nodes

    @property
    def op_nodes(self) -> List[Tuple[OperationNode, ...]]:
        """Parallel to ``op_table``: the OperationNode views, for argmin results."""
        op_nodes = self._op_nodes
        if op_nodes is None:
            op_view = self.arena.op_view
            op_nodes = [
                tuple(op_view(op_id) for op_id in op_ids)
                for op_ids in self.arena.eq_op_ids
            ]
            self._op_nodes = op_nodes
        return op_nodes

    @property
    def op_node_by_id(self) -> List[OperationNode]:
        """Operation id -> OperationNode (for converting flat choices back)."""
        op_node_by_id = self._op_node_by_id
        if op_node_by_id is None:
            op_view = self.arena.op_view
            op_node_by_id = [
                op_view(op_id) for op_id in range(self.arena.num_operations)
            ]
            self._op_node_by_id = op_node_by_id
        return op_node_by_id

    # -- cost kernels ---------------------------------------------------------
    def compute_costs(self, materialized: Set[int] = EMPTY_SET) -> List[float]:
        """``cost(e)`` for every node, bottom-up; the result is indexed by id.

        The inner loop reads the memoized effective child cost
        ``C(e) = min(cost(e), reusecost(e) if e ∈ M)`` from a side table
        maintained with one membership test per *node* instead of one per
        child read; with no materializations the side table aliases the cost
        list outright.
        """
        costs: List[float] = [0.0] * self.num_nodes
        # C(e) per node; identical to ``costs`` when nothing is materialized.
        effective = costs if not materialized else [0.0] * self.num_nodes
        op_specs = self.op_specs
        reuse_cost = self.reuse_cost
        is_base = self.is_base
        distinct = effective is not costs
        for node_id in self.topo_order:
            # Base tables cost 0 even if (atypically) given operations,
            # matching ``equivalence_cost`` in the reference implementation.
            if is_base[node_id]:
                cost = 0.0
            else:
                operations = op_specs[node_id]
                if operations is None:
                    cost = INFINITE_COST
                else:
                    cost = INFINITE_COST
                    for entry in operations:
                        arity = len(entry)
                        if arity == 5:
                            c1, m1, c2, m2, local_cost = entry
                            candidate = (
                                local_cost + m1 * effective[c1] + m2 * effective[c2]
                            )
                        elif arity == 3:
                            c1, m1, local_cost = entry
                            candidate = local_cost + m1 * effective[c1]
                        else:
                            children, candidate = entry
                            for child_id, multiplier in children:
                                candidate += multiplier * effective[child_id]
                        if candidate < cost:
                            cost = candidate
                costs[node_id] = cost
            if distinct:
                if node_id in materialized:
                    reuse = reuse_cost[node_id]
                    effective[node_id] = reuse if reuse < cost else cost
                else:
                    effective[node_id] = cost
        return costs

    def baseline_costs(self) -> List[float]:
        """``compute_costs(∅)``, memoized for the engine's lifetime.

        The empty-set table is requested by every optimization pass (state
        seeds, Volcano baselines, the Volcano-SH fallback table) and the
        snapshot's annotations are frozen (see :func:`get_engine`), so one
        sweep serves them all.  The returned list is shared: callers must
        treat it as read-only and copy (``list(...)``) before mutating.
        """
        if self._baseline_costs is None:
            self._baseline_costs = self.compute_costs()
        return self._baseline_costs

    def reachable_flags(
        self,
        choice_entry: Sequence[Optional[Tuple[float, Tuple[Tuple[int, float], ...]]]],
    ) -> bytearray:
        """Byte flags of the nodes reachable from the root under *choice_entry*.

        *choice_entry* maps node id to the flat operation entry a consolidated
        plan chose for it (``None`` where the plan chose nothing); the walk
        descends from the root through chosen entries only.  This is the
        reachability snapshot the Volcano-SH/RU decision passes sweep over —
        owning it here keeps every structural walk on the engine's dense
        arrays.
        """
        reachable = bytearray(self.num_nodes)
        is_base = self.is_base
        stack = [self.root_id]
        while stack:
            node_id = stack.pop()
            if reachable[node_id]:
                continue
            reachable[node_id] = 1
            if is_base[node_id]:
                continue
            entry = choice_entry[node_id]
            if entry is None:
                continue
            for child_id, _multiplier in entry[1]:
                stack.append(child_id)
        return reachable

    def total(self, costs: CostTable, materialized: Set[int] = EMPTY_SET) -> float:
        """``bestcost(Q, M)``: root cost plus computing and materializing ``M``."""
        if isinstance(costs, CostTableView):
            costs = costs._values
        total = costs[self.root_id]
        mat_cost = self.mat_cost
        # Sorted so the float sum is deterministic for equal sets regardless
        # of set insertion history (result costs are compared exactly).
        for node_id in sorted(materialized):
            total += costs[node_id] + mat_cost[node_id]
        return total

    def best_operations(
        self, costs: CostTable, materialized: Set[int] = EMPTY_SET
    ) -> Dict[int, OperationNode]:
        """The argmin operation for every non-base node with operations."""
        if isinstance(costs, CostTableView):
            costs = costs._values
        choices: Dict[int, OperationNode] = {}
        effective = self.effective_costs(costs, materialized)
        op_nodes = self.op_nodes
        for node_id, operations in enumerate(self.op_specs):
            if operations is None:
                continue
            best_op = None
            best = INFINITE_COST
            for op_index, entry in enumerate(operations):
                arity = len(entry)
                if arity == 5:
                    c1, m1, c2, m2, local_cost = entry
                    total = local_cost + m1 * effective[c1] + m2 * effective[c2]
                elif arity == 3:
                    c1, m1, local_cost = entry
                    total = local_cost + m1 * effective[c1]
                else:
                    children, total = entry
                    for child_id, multiplier in children:
                        total += multiplier * effective[child_id]
                if total < best:
                    best = total
                    best_op = op_nodes[node_id][op_index]
            choices[node_id] = best_op
        return choices

    def effective_costs(
        self, costs: CostTable, materialized: Set[int] = EMPTY_SET
    ) -> List[float]:
        """The effective child costs ``C(e) = min(cost(e), reusecost(e))`` for
        materialized nodes and plain ``cost(e)`` otherwise, as a dense list."""
        if isinstance(costs, CostTableView):
            costs = costs._values
        if isinstance(costs, list):
            effective = list(costs)
        else:
            effective = [costs[node_id] for node_id in range(self.num_nodes)]
        reuse_cost = self.reuse_cost
        for node_id in materialized:
            reuse = reuse_cost[node_id]
            if reuse < effective[node_id]:
                effective[node_id] = reuse
        return effective


def argmin_operation(operations: Tuple[Tuple[Any, ...], ...], effective: Sequence[float]) -> int:
    """Index of the argmin operation of one ``op_specs`` row under the
    effective child costs, -1 when every alternative is infinite.

    This is the per-node body of :meth:`CostEngine.best_operations` (which
    keeps its own inlined copy for the full-table sweep): the strict ``<`` /
    first-wins tie-breaking and left-associated accumulation are contractual
    — the incremental greedy pruning recomputes individual choices with this
    function and must land on the same operation as a full
    ``best_operations`` pass, which the differential suite asserts.
    """
    best_index = -1
    best = INFINITE_COST
    for op_index, entry in enumerate(operations):
        arity = len(entry)
        if arity == 5:
            c1, m1, c2, m2, local_cost = entry
            total = local_cost + m1 * effective[c1] + m2 * effective[c2]
        elif arity == 3:
            c1, m1, local_cost = entry
            total = local_cost + m1 * effective[c1]
        else:
            children, total = entry
            for child_id, multiplier in children:
                total += multiplier * effective[child_id]
        if total < best:
            best = total
            best_index = op_index
    return best_index


class IncrementalCostState:
    """The incremental cost update machinery of Figure 5, on dense tables.

    Maintains ``cost(e)`` for every equivalence node under the current
    materialized set, propagates the effect of materializing (or
    un-materializing) a single node upwards through its ancestors in
    topological order, and keeps the running total ``bestcost(Q, X)`` in sync
    so that :meth:`total` is O(1) instead of O(|X|) per benefit probe.

    All per-node state is held in flat id-indexed lists/bytearrays (see the
    module docstring); ``state.costs`` remains a dict-compatible
    :class:`CostTableView` for external readers.  The ``_effective`` table
    memoizes ``min(cost(e), reusecost(e))`` for materialized nodes so the
    propagation inner loop — the single hottest loop in the greedy optimizer
    — performs one list read per child and no set-membership test.
    """

    __slots__ = (
        "dag",
        "engine",
        "materialized",
        "_costs",
        "_effective",
        "costs",
        "_total",
        "propagations",
        "_pending",
        "_mat_flags",
        "_eps",
    )

    def __init__(self, dag: Dag, epsilon: float = _EPSILON) -> None:
        self.dag = dag
        self.engine = get_engine(dag)
        #: Propagation cut-off.  The default prunes sub-jitter deltas (and is
        #: what the Figure 10 propagation counters are calibrated against);
        #: ``epsilon=0.0`` makes every toggle *exactly* equivalent to a
        #: from-scratch ``compute_costs`` — a node is recomputed whenever any
        #: input bit changed, and untouched nodes keep values computed from
        #: bit-identical inputs — which is what incremental Volcano-RU needs
        #: to stay byte-identical to its from-scratch reference.
        self._eps = epsilon
        self.materialized: Set[int] = set()
        self._costs: List[float] = list(self.engine.baseline_costs())
        #: C(e): min(cost, reuse) for materialized nodes, cost otherwise.
        self._effective: List[float] = list(self._costs)
        #: Dict-compatible read view of ``_costs`` (kept for API parity with
        #: the historical ``Dict[int, float]`` attribute).
        self.costs = CostTableView(self._costs)
        self._total: float = self._costs[self.engine.root_id]
        #: Number of equivalence-node cost propagations (Figure 10, left).
        self.propagations = 0
        num_nodes = self.engine.num_nodes
        #: Scratch flags for the propagation frontier (cleared by each pop).
        self._pending = bytearray(num_nodes)
        #: Byte-flag mirror of ``materialized`` for the inner loop.
        self._mat_flags = bytearray(num_nodes)

    @property
    def nodes_by_id(self) -> Sequence[EquivalenceNode]:
        """id -> EquivalenceNode (ids are dense, so the engine's list serves).

        Delegates to :attr:`CostEngine.nodes`, which materializes the façade
        views lazily — creating a state costs no node objects.
        """
        return self.engine.nodes

    def total(self) -> float:
        """``bestcost(Q, X)`` for the current materialized set."""
        return self._total

    def snapshot_costs(self) -> List[float]:
        """An independent dense copy of the current cost table."""
        return list(self._costs)

    # -- toggle / undo --------------------------------------------------------
    def toggle(self, node: EquivalenceNode, add: bool) -> List[Tuple[int, float]]:
        """Materialize (or un-materialize) *node* and propagate cost changes.

        Returns the undo log: the list of ``(node_id, previous_cost)`` entries
        that were overwritten, in propagation order.
        """
        return self.toggle_id(node.id, add)

    def toggle_id(self, node_id: int, add: bool) -> List[Tuple[int, float]]:
        """:meth:`toggle` by node id (the hot-path form)."""
        engine = self.engine
        costs = self._costs
        effective = self._effective
        materialized = self.materialized
        mat_flags = self._mat_flags
        pending = self._pending
        mat_cost = engine.mat_cost
        reuse_cost = engine.reuse_cost
        op_specs = engine.op_specs
        parent_ids = engine.parent_ids
        topo_key = engine.topo_key
        num_nodes = engine.num_nodes
        root_id = engine.root_id
        heappush = heapq.heappush
        heappop = heapq.heappop
        eps = self._eps

        if add == (node_id in materialized):
            # A redundant toggle would double-count the node's contribution in
            # the incrementally maintained total; fail fast instead.
            state = "already" if add else "not"
            raise ValueError(f"node {node_id} is {state} materialized")
        # The node's own cost never depends on its own membership (the DAG is
        # acyclic), so its pre-propagation cost is its final cost contribution.
        cost = costs[node_id]
        if add:
            materialized.add(node_id)
            mat_flags[node_id] = 1
            self._total += cost + mat_cost[node_id]
            reuse = reuse_cost[node_id]
            effective[node_id] = reuse if reuse < cost else cost
        else:
            materialized.discard(node_id)
            mat_flags[node_id] = 0
            self._total -= cost + mat_cost[node_id]
            effective[node_id] = cost

        undo: List[Tuple[int, float]] = []
        heap: List[int] = [topo_key[node_id]]
        pending[node_id] = 1
        propagations = 0
        while heap:
            current_id = heappop(heap) % num_nodes
            pending[current_id] = 0
            old_cost = costs[current_id]
            operations = op_specs[current_id]
            if operations is not None:
                new_cost = INFINITE_COST
                for entry in operations:
                    arity = len(entry)
                    if arity == 5:
                        c1, m1, c2, m2, local_cost = entry
                        candidate = local_cost + m1 * effective[c1] + m2 * effective[c2]
                    elif arity == 3:
                        c1, m1, local_cost = entry
                        candidate = local_cost + m1 * effective[c1]
                    else:
                        children, candidate = entry
                        for child_id, multiplier in children:
                            candidate += multiplier * effective[child_id]
                    if candidate < new_cost:
                        new_cost = candidate
            else:
                new_cost = old_cost
            propagations += 1
            delta = new_cost - old_cost
            changed = delta > eps or delta < -eps
            if changed:
                undo.append((current_id, old_cost))
                costs[current_id] = new_cost
                if current_id == root_id:
                    self._total += delta
                if mat_flags[current_id]:
                    self._total += delta
                    reuse = reuse_cost[current_id]
                    effective[current_id] = reuse if reuse < new_cost else new_cost
                else:
                    effective[current_id] = new_cost
            if changed or current_id == node_id:
                for parent_id in parent_ids[current_id]:
                    if not pending[parent_id]:
                        pending[parent_id] = 1
                        heappush(heap, topo_key[parent_id])
        self.propagations += propagations
        return undo

    def undo(self, node: EquivalenceNode, undo_log: List[Tuple[int, float]], added: bool) -> None:
        """Revert a previous :meth:`toggle`."""
        engine = self.engine
        costs = self._costs
        effective = self._effective
        materialized = self.materialized
        mat_flags = self._mat_flags
        reuse_cost = engine.reuse_cost
        root_id = engine.root_id
        node_id = node.id
        for changed_id, old_cost in reversed(undo_log):
            delta = old_cost - costs[changed_id]
            if changed_id == root_id:
                self._total += delta
            if mat_flags[changed_id]:
                self._total += delta
                reuse = reuse_cost[changed_id]
                effective[changed_id] = reuse if reuse < old_cost else old_cost
            else:
                effective[changed_id] = old_cost
            costs[changed_id] = old_cost
        cost = costs[node_id]
        contribution = cost + engine.mat_cost[node_id]
        if added:
            materialized.discard(node_id)
            mat_flags[node_id] = 0
            self._total -= contribution
            effective[node_id] = cost
        else:
            materialized.add(node_id)
            mat_flags[node_id] = 1
            self._total += contribution
            reuse = reuse_cost[node_id]
            effective[node_id] = reuse if reuse < cost else cost

    # -- benefit probes -------------------------------------------------------
    def cost_with(self, node: EquivalenceNode) -> float:
        """``bestcost(Q, X ∪ {node})`` without permanently changing the state."""
        return self.cost_with_id(node.id)

    def cost_with_id(self, node_id: int) -> float:
        """:meth:`cost_with` by node id: one fused toggle + exact restore.

        The restore writes the logged previous costs back verbatim and resets
        the total to its saved value, so long probe sequences are drift-free
        (no reversed floating-point arithmetic is involved at all).
        """
        previous_total = self._total
        undo_log = self.toggle_id(node_id, add=True)
        total = self._total
        costs = self._costs
        effective = self._effective
        mat_flags = self._mat_flags
        reuse_cost = self.engine.reuse_cost
        for changed_id, old_cost in reversed(undo_log):
            costs[changed_id] = old_cost
            if mat_flags[changed_id]:
                reuse = reuse_cost[changed_id]
                effective[changed_id] = reuse if reuse < old_cost else old_cost
            else:
                effective[changed_id] = old_cost
        self.materialized.discard(node_id)
        mat_flags[node_id] = 0
        effective[node_id] = costs[node_id]
        self._total = previous_total
        return total

    def run_monotonic_heap(
        self,
        heap: List[Tuple[float, int]],
        counters: Dict[str, int],
        max_materializations: int,
        deadline: Optional[float] = None,
    ) -> Set[int]:
        """The greedy monotonicity-heap loop (Section 4.3), fused.

        *heap* holds ``(-upper_bound, node_id)`` entries.  Pops the top
        candidate, probes its exact benefit against the current state, and
        either materializes it (still on top), reinserts it with the fresh
        value, or stops (no positive benefit).  The chain of probes between
        two materializations runs against one fixed state — the batched form
        of the benefit probe (see :meth:`probe_many`) — inside a single loop
        with every hot table bound once: the probe's toggle/restore pair is
        inlined rather than dispatched through
        :meth:`toggle_id`/:meth:`cost_with_id`, which the profile showed cost
        one call frame and ~15 attribute rebinds per probe.

        The inlined propagation kernel is a verbatim twin of the one in
        :meth:`toggle_id` (kept in sync by the engine-vs-reference and
        differential test suites); decisions, results, and the Figure 10
        counters are bit-for-bit those of the unfused loop.

        *deadline* (absolute ``perf_counter`` seconds) is checked once per
        heap pop — i.e. at probe boundaries, never inside a propagation — so
        an expired run stops with a committed prefix of the materialization
        sequence (``counters["deadline_expired"] = 1``) that is byte-identical
        to a run capped at that count.  ``deadline=None`` reads no clock.
        """
        engine = self.engine
        costs = self._costs
        effective = self._effective
        mat_flags = self._mat_flags
        pending = self._pending
        mat_cost = engine.mat_cost
        reuse_cost = engine.reuse_cost
        op_specs = engine.op_specs
        parent_ids = engine.parent_ids
        topo_key = engine.topo_key
        num_nodes = engine.num_nodes
        root_id = engine.root_id
        heappush = heapq.heappush
        heappop = heapq.heappop
        eps = self._eps

        chosen: Set[int] = set()
        current_total = self._total
        total_propagations = 0
        undo: List[Tuple[int, float]] = []
        while heap and len(chosen) < max_materializations:
            if deadline is not None and perf_counter() >= deadline:
                counters["deadline_expired"] = 1
                break
            _negative_bound, node_id = heappop(heap)
            if node_id in chosen:
                continue
            counters["benefit_recomputations"] += 1
            counters["bestcost_calls"] += 1

            # --- probe: toggle(node_id, add=True) -------------------------
            # (twin of IncrementalCostState.toggle_id; keep in sync)
            running_total = current_total
            node_cost = costs[node_id]
            mat_flags[node_id] = 1
            running_total += node_cost + mat_cost[node_id]
            reuse = reuse_cost[node_id]
            effective[node_id] = reuse if reuse < node_cost else node_cost

            undo.clear()
            prop_heap: List[int] = [topo_key[node_id]]
            pending[node_id] = 1
            while prop_heap:
                current_id = heappop(prop_heap) % num_nodes
                pending[current_id] = 0
                old_cost = costs[current_id]
                operations = op_specs[current_id]
                if operations is not None:
                    new_cost = INFINITE_COST
                    for entry in operations:
                        arity = len(entry)
                        if arity == 5:
                            c1, m1, c2, m2, local_cost = entry
                            candidate = (
                                local_cost + m1 * effective[c1] + m2 * effective[c2]
                            )
                        elif arity == 3:
                            c1, m1, local_cost = entry
                            candidate = local_cost + m1 * effective[c1]
                        else:
                            children, candidate = entry
                            for child_id, multiplier in children:
                                candidate += multiplier * effective[child_id]
                        if candidate < new_cost:
                            new_cost = candidate
                else:
                    new_cost = old_cost
                total_propagations += 1
                delta = new_cost - old_cost
                changed = delta > eps or delta < -eps
                if changed:
                    undo.append((current_id, old_cost))
                    costs[current_id] = new_cost
                    if current_id == root_id:
                        running_total += delta
                    if mat_flags[current_id]:
                        running_total += delta
                        reuse = reuse_cost[current_id]
                        effective[current_id] = reuse if reuse < new_cost else new_cost
                    else:
                        effective[current_id] = new_cost
                if changed or current_id == node_id:
                    for parent_id in parent_ids[current_id]:
                        if not pending[parent_id]:
                            pending[parent_id] = 1
                            heappush(prop_heap, topo_key[parent_id])

            benefit = current_total - running_total

            # --- restore: exact write-back of the logged costs -----------
            for changed_id, old_cost in reversed(undo):
                costs[changed_id] = old_cost
                if mat_flags[changed_id]:
                    reuse = reuse_cost[changed_id]
                    effective[changed_id] = reuse if reuse < old_cost else old_cost
                else:
                    effective[changed_id] = old_cost
            mat_flags[node_id] = 0
            effective[node_id] = costs[node_id]

            # --- heap decision (identical to the reference loop) ---------
            next_bound = -heap[0][0] if heap else float("-inf")
            if heap and benefit < next_bound - _EPSILON:
                # Not necessarily the best any more: reinsert fresh.
                heappush(heap, (-benefit, node_id))
                continue
            if benefit <= _EPSILON:
                break
            # Commit: the probe was fully restored above, so re-toggle for
            # real (counted again, exactly like the reference
            # implementation's cost_with + toggle pair).
            self.toggle_id(node_id, add=True)
            chosen.add(node_id)
            current_total = self._total
        self.propagations += total_propagations
        return chosen

    def probe_many(self, node_ids: Sequence[int]) -> List[float]:
        """Batched benefit probes: ``bestcost(Q, X ∪ {x})`` for each ``x``.

        All probes are evaluated against the *same* current state, which is
        exactly the situation of the greedy loops: between two
        materializations the state is fixed and every candidate's benefit is
        defined against it, so the probes are order-independent and can be
        requested as one batch.  Candidates with disjoint ancestor cones (per
        ``CostEngine.parent_ids``) touch disjoint cost entries *below the
        root*, but any candidate with a nonzero benefit perturbs the root
        summation, so the toggles are applied one at a time (never stacked)
        to keep each probe's float result bit-identical to the sequential
        reference.  Each probe is one exact-restore :meth:`cost_with_id`
        pass; the fully fused variant (hot tables bound once for a whole
        probe chain) is :meth:`run_monotonic_heap`, which is what the
        default greedy configuration uses.
        """
        return [self.cost_with_id(node_id) for node_id in node_ids]


def get_engine(dag: Dag) -> CostEngine:
    """The cached :class:`CostEngine` for *dag*, rebuilt if the DAG grew.

    The cache key is the (equivalence, operation) node counts, so structural
    growth via :meth:`Dag.equivalence` / :meth:`Dag.add_operation` triggers a
    fresh snapshot.  In-place mutation of already-snapshotted scalars
    (``mat_cost``, ``reuse_cost``, ``local_cost``, multipliers) is **not**
    detected — the costing API treats a built DAG's annotations as frozen, as
    every in-repo producer does (the builder annotates during construction
    only).  Callers that re-annotate an existing DAG must build a fresh DAG
    (or delete ``dag._cost_engine``) before re-costing.
    """
    key = (dag.num_equivalence_nodes, dag.num_operation_nodes)
    cached = getattr(dag, "_cost_engine", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    engine = CostEngine(dag)
    dag._cost_engine = (key, engine)
    return engine
