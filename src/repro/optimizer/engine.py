"""Array-backed cost engine shared by the optimization hot paths.

The algorithms in this package all evaluate the same cost recurrence
(Section 3.1 of the paper) over the same immutable AND-OR DAG, thousands of
times per optimization run.  Walking the object graph each time —
``sorted(...)`` over the equivalence nodes, attribute chains like
``operation.children[i].reuse_cost``, per-call ``by_id`` dict rebuilds — is
what dominated the greedy hot path before this module existed, not the
arithmetic itself.

:class:`CostEngine` snapshots a built DAG **once** into flat, topo-indexed
tables (equivalence-node ids in the paper's DAGs are dense ``0..n-1``, so
plain lists indexed by id suffice):

* ``topo_order`` — node ids sorted by topological number (children first),
  computed once instead of once per ``compute_node_costs`` call;
* ``op_table`` — per node, ``(local_cost, ((child_id, multiplier), ...))``
  tuples, one flat structure per alternative operation;
* ``parent_ids`` / ``topo_number`` — the upward adjacency used by the
  incremental cost propagation of Figure 5;
* ``mat_cost`` / ``reuse_cost`` / ``is_base`` — per-node scalars.

The cost kernels (:meth:`compute_costs`, :meth:`total`,
:meth:`best_operations`) are written against these tables with no object
traversal in the inner loop.  ``costing.py`` delegates to them for the public
API, ``greedy.IncrementalCostState`` propagates over ``op_table`` /
``parent_ids`` directly (the kernel is inlined in its toggle loop, which runs
thousands of times per optimization), and ``volcano_sh.plan_node_costs``
walks ``topo_order`` directly.

Engines are cached per DAG via :func:`get_engine`, keyed on the node/operation
counts so a DAG that is (atypically) extended after optimization gets a fresh
snapshot.

Measured effect (see ``benchmarks/bench_fig9_scaleup.py`` and
``bench_fig10_greedy_complexity.py``; CPython 3.11, this container): greedy
optimization of the largest scale-up workload CQ5 (303 equivalence nodes,
1321 operation nodes) dropped from ~41 ms to ~11 ms (~3.8x, ~13 ms with a
cold engine cache), CQ1 from ~4 ms to ~1.2 ms, with byte-identical plan
costs for all four algorithms on every tier-1 workload and unchanged
Figure 10 counters (CQ5: 2913 propagations, 172 benefit recomputations).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.dag.nodes import Dag, DagError, EquivalenceNode, OperationNode

INFINITE_COST = math.inf

#: Shared empty materialized set for the common no-materialization case.
EMPTY_SET: FrozenSet[int] = frozenset()

#: Cost tables are indexed by node id; both dicts and dense lists qualify.
CostTable = Union[Dict[int, float], List[float]]


class CostEngine:
    """Flat snapshot of one DAG plus the cost kernels evaluated over it."""

    __slots__ = (
        "dag",
        "nodes",
        "num_nodes",
        "root_id",
        "topo_order",
        "topo_number",
        "is_base",
        "mat_cost",
        "reuse_cost",
        "op_table",
        "op_nodes",
        "parent_ids",
    )

    def __init__(self, dag: Dag) -> None:
        if dag.root is None:
            raise DagError("cannot build a cost engine for a DAG without a root")
        nodes = dag.equivalence_nodes()
        for index, node in enumerate(nodes):
            if node.id != index:
                raise DagError(
                    f"equivalence node ids must be dense, got id {node.id} at index {index}"
                )
        # Renumber unconditionally: the snapshot is built once per DAG shape,
        # and existing numbers may be stale if operations were added after a
        # previous numbering (Dag.add_operation does not invalidate them).
        dag.assign_topological_numbers()

        self.dag = dag
        #: id -> EquivalenceNode (ids are dense, so a list is the id map).
        self.nodes: List[EquivalenceNode] = list(nodes)
        self.num_nodes = len(nodes)
        self.root_id = dag.root.id
        self.topo_number: List[int] = [node.topo_number for node in nodes]
        self.topo_order: List[int] = sorted(
            range(self.num_nodes), key=self.topo_number.__getitem__
        )
        self.is_base: List[bool] = [node.is_base for node in nodes]
        self.mat_cost: List[float] = [node.mat_cost for node in nodes]
        self.reuse_cost: List[float] = [node.reuse_cost for node in nodes]
        #: Per node: one (local_cost, ((child_id, multiplier), ...)) per operation,
        #: in the same order as ``node.operations`` (ties keep the first op).
        self.op_table: List[Tuple[Tuple[float, Tuple[Tuple[int, float], ...]], ...]] = [
            tuple(
                (
                    operation.local_cost,
                    tuple(
                        (child.id, multiplier)
                        for child, multiplier in zip(
                            operation.children, operation.child_multipliers
                        )
                    ),
                )
                for operation in node.operations
            )
            for node in nodes
        ]
        #: Parallel to ``op_table``: the OperationNode objects, for argmin results.
        self.op_nodes: List[Tuple[OperationNode, ...]] = [
            tuple(node.operations) for node in nodes
        ]
        #: Per node: unique ids of parent equivalence nodes (upward adjacency).
        self.parent_ids: List[Tuple[int, ...]] = [
            tuple(sorted({parent.equivalence.id for parent in node.parents}))
            for node in nodes
        ]

    # -- cost kernels ---------------------------------------------------------
    def compute_costs(self, materialized: Set[int] = EMPTY_SET) -> List[float]:
        """``cost(e)`` for every node, bottom-up; the result is indexed by id."""
        costs: List[float] = [0.0] * self.num_nodes
        op_table = self.op_table
        reuse_cost = self.reuse_cost
        is_base = self.is_base
        for node_id in self.topo_order:
            # Base tables cost 0 even if (atypically) given operations,
            # matching ``equivalence_cost`` in the reference implementation.
            if is_base[node_id]:
                continue
            operations = op_table[node_id]
            if not operations:
                costs[node_id] = INFINITE_COST
                continue
            best = INFINITE_COST
            for local_cost, children in operations:
                total = local_cost
                for child_id, multiplier in children:
                    child = costs[child_id]
                    if child_id in materialized:
                        reuse = reuse_cost[child_id]
                        if reuse < child:
                            child = reuse
                    total += multiplier * child
                if total < best:
                    best = total
            costs[node_id] = best
        return costs

    def total(self, costs: CostTable, materialized: Set[int] = EMPTY_SET) -> float:
        """``bestcost(Q, M)``: root cost plus computing and materializing ``M``."""
        total = costs[self.root_id]
        mat_cost = self.mat_cost
        # Sorted so the float sum is deterministic for equal sets regardless
        # of set insertion history (result costs are compared exactly).
        for node_id in sorted(materialized):
            total += costs[node_id] + mat_cost[node_id]
        return total

    def best_operations(
        self, costs: CostTable, materialized: Set[int] = EMPTY_SET
    ) -> Dict[int, OperationNode]:
        """The argmin operation for every non-base node with operations."""
        choices: Dict[int, OperationNode] = {}
        reuse_cost = self.reuse_cost
        is_base = self.is_base
        for node_id, operations in enumerate(self.op_table):
            if is_base[node_id] or not operations:
                continue
            best_op = None
            best = INFINITE_COST
            for op_index, (local_cost, children) in enumerate(operations):
                total = local_cost
                for child_id, multiplier in children:
                    child = costs[child_id]
                    if child_id in materialized:
                        reuse = reuse_cost[child_id]
                        if reuse < child:
                            child = reuse
                    total += multiplier * child
                if total < best:
                    best = total
                    best_op = self.op_nodes[node_id][op_index]
            choices[node_id] = best_op
        return choices


def get_engine(dag: Dag) -> CostEngine:
    """The cached :class:`CostEngine` for *dag*, rebuilt if the DAG grew.

    The cache key is the (equivalence, operation) node counts, so structural
    growth via :meth:`Dag.equivalence` / :meth:`Dag.add_operation` triggers a
    fresh snapshot.  In-place mutation of already-snapshotted scalars
    (``mat_cost``, ``reuse_cost``, ``local_cost``, multipliers) is **not**
    detected — the costing API treats a built DAG's annotations as frozen, as
    every in-repo producer does (the builder annotates during construction
    only).  Callers that re-annotate an existing DAG must build a fresh DAG
    (or delete ``dag._cost_engine``) before re-costing.
    """
    key = (dag.num_equivalence_nodes, dag.num_operation_nodes)
    cached = getattr(dag, "_cost_engine", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    engine = CostEngine(dag)
    dag._cost_engine = (key, engine)
    return engine
