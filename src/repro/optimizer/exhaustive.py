"""Exhaustive search over materialization sets.

The paper uses the exhaustive algorithm only to motivate the heuristics — it
iterates over *every* subset of the (sharable) nodes and picks the subset with
the minimum ``bestcost``, which is doubly exponential when combined with the
plan space and therefore impractical.  We implement it over the candidate set
of sharable nodes so that tests can verify, on tiny DAGs, that the greedy
heuristic finds plans of comparable (often identical) cost.
"""

from __future__ import annotations

import itertools
import time
from typing import Optional, Sequence, Set

from repro.dag.nodes import Dag, EquivalenceNode
from repro.dag.sharability import sharable_nodes
from repro.optimizer.costing import best_operations, compute_node_costs, total_cost
from repro.optimizer.plans import ConsolidatedPlan
from repro.optimizer.report import OptimizationResult


class ExhaustiveSearchError(RuntimeError):
    """Raised when the candidate set is too large to enumerate."""


def optimize_exhaustive(
    dag: Dag,
    candidates: Optional[Sequence[EquivalenceNode]] = None,
    max_candidates: int = 16,
) -> OptimizationResult:
    """Enumerate all subsets of the candidate nodes and return the best."""
    start = time.perf_counter()
    if candidates is None:
        candidates = sharable_nodes(dag)
    if len(candidates) > max_candidates:
        raise ExhaustiveSearchError(
            f"{len(candidates)} candidate nodes exceed the exhaustive limit of {max_candidates}"
        )

    best_cost = float("inf")
    best_set: Set[int] = set()
    subsets_examined = 0
    candidate_ids = [node.id for node in candidates]
    for size in range(len(candidate_ids) + 1):
        for subset in itertools.combinations(candidate_ids, size):
            subsets_examined += 1
            materialized = set(subset)
            costs = compute_node_costs(dag, materialized)
            cost = total_cost(dag, costs, materialized)
            if cost < best_cost:
                best_cost = cost
                best_set = materialized

    final_costs = compute_node_costs(dag, best_set)
    choices = best_operations(dag, final_costs, best_set)
    plan = ConsolidatedPlan(dag, choices, set(best_set))
    elapsed = time.perf_counter() - start
    return OptimizationResult(
        algorithm="Exhaustive",
        plan=plan,
        cost=best_cost,
        optimization_time=elapsed,
        dag_equivalence_nodes=dag.num_equivalence_nodes,
        dag_operation_nodes=dag.num_operation_nodes,
        sharable_nodes=len(candidates),
        counters={"subsets_examined": subsets_examined},
    )
