"""The greedy multi-query optimization heuristic (Section 4 of the paper).

The greedy algorithm iteratively picks the equivalence node whose
materialization gives the largest reduction in the total cost
``bestcost(Q, X)`` and adds it to the materialized set ``X``, stopping when no
node has positive benefit.  What makes it practical — and what this module
reproduces in full — are the paper's three implementation optimizations:

1. **Sharability** (Section 4.1): only nodes whose degree of sharing in the
   DAG exceeds one are candidates.  All degrees are computed in one batched
   sweep (:func:`repro.dag.sharability.sharing_degrees`).
2. **Incremental cost update** (Section 4.2, Figure 5): the cost state is
   maintained across ``bestcost`` calls; toggling one node's materialization
   propagates cost changes upwards in topological order through a heap, so
   each benefit computation touches only the ancestors of the candidate.  The
   running total ``bestcost(Q, X)`` is itself maintained incrementally under
   toggle/undo, so a benefit probe costs O(affected ancestors), not
   O(affected ancestors + |X|).
3. **The monotonicity heuristic** (Section 4.3): candidates live in a heap
   ordered by an upper bound on their benefit (initially
   ``cost(x) × degree_of_sharing(x)``); only the top candidate's benefit is
   recomputed, and it is materialized if it stays on top.  Even when
   sharability detection is disabled the initial bounds use exact
   multiplier-aware degrees of sharing from the batched sweep —
   ``len(node.parents)``, the old fallback, undercounts nested-query use
   multipliers and transitive sharing and is not an upper bound on
   correlated workloads, so the heap could terminate early.

The incremental cost state itself
(:class:`~repro.optimizer.engine.IncrementalCostState`, re-exported here for
backwards compatibility) lives in :mod:`repro.optimizer.engine` on flat
id-indexed arrays; benefit probes go through its fused
``cost_with_id``/``probe_many`` kernels.  The full-recompute ablation loop
batches the benefit probes of all remaining candidates per round through
``probe_many`` — between two materializations the state is fixed, so the
probes are independent and order-insensitive.  Each optimization can be
disabled independently (:class:`GreedyOptions`), which is how the Section 6.3
ablation benchmarks are produced.  The counters reported in Figure 10 — cost
propagations across equivalence nodes and benefit recomputations — are
collected in the returned :class:`~repro.optimizer.report.OptimizationResult`
and are invariant under the dense-state rewrite.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dag.nodes import Dag, EquivalenceNode
from repro.dag.sharability import sharing_degrees
from repro.optimizer.costing import best_operations, compute_node_costs, total_cost
from repro.optimizer.engine import _EPSILON, IncrementalCostState
from repro.optimizer.plans import ConsolidatedPlan
from repro.optimizer.report import OptimizationResult

__all__ = ["GreedyOptions", "IncrementalCostState", "optimize_greedy"]


@dataclass(frozen=True)
class GreedyOptions:
    """Switches for the three greedy implementation optimizations."""

    use_sharability: bool = True
    use_monotonicity: bool = True
    use_incremental: bool = True
    #: Safety bound on the number of materialized nodes (never hit in practice).
    max_materializations: int = 10_000


def _candidate_nodes(
    dag: Dag, options: GreedyOptions
) -> Tuple[List[EquivalenceNode], Optional[Dict[int, float]]]:
    """The greedy candidate set, plus sharing degrees when sharability is on.

    Degrees are computed once, in a single batched sweep, and reused both for
    candidate selection (degree > 1) and for the monotonicity heap's initial
    upper bounds.
    """
    if options.use_sharability:
        degrees = sharing_degrees(dag)
        candidates = [
            node
            for node in dag.equivalence_nodes()
            if degrees.get(node.id, 0.0) > 1.0 and not node.is_base and node is not dag.root
        ]
        return candidates, degrees
    candidates = [
        node
        for node in dag.equivalence_nodes()
        if not node.is_base and node is not dag.root
    ]
    return candidates, None


def optimize_greedy(dag: Dag, options: Optional[GreedyOptions] = None) -> OptimizationResult:
    """Run the greedy heuristic on the DAG."""
    options = options or GreedyOptions()
    start = time.perf_counter()
    counters = {
        "benefit_recomputations": 0,
        "cost_propagations": 0,
        "bestcost_calls": 0,
        "candidates": 0,
    }

    state = IncrementalCostState(dag)
    baseline_costs = state.snapshot_costs()
    candidates, degrees = _candidate_nodes(dag, options)
    counters["candidates"] = len(candidates)

    materialized: Set[int] = set()
    if candidates:
        if options.use_monotonicity:
            materialized = _greedy_monotonic(
                dag, state, candidates, baseline_costs, degrees, options, counters
            )
        else:
            materialized = _greedy_full_recompute(dag, state, candidates, options, counters)

    counters["cost_propagations"] = state.propagations

    # Drop materializations that ended up unused in the final plan.  Dropping
    # one can orphan another that was only used to build it, and the operation
    # choices must be recomputed for the pruned set (an op chosen because it
    # reused a now-dropped node may no longer be the argmin), so recompute and
    # prune to fixpoint.  Pruning an unused node never raises the root's cost
    # — no chosen operation referenced it — so each round's total is no worse.
    while True:
        final_costs = compute_node_costs(dag, materialized)
        choices = best_operations(dag, final_costs, materialized)
        plan = ConsolidatedPlan(dag, choices, set(materialized))
        used: Set[int] = set()
        for node in plan.reachable():
            operation = choices.get(node.id)
            if operation is None:
                continue
            for child in operation.children:
                if child.id in materialized:
                    used.add(child.id)
        if used == materialized:
            break
        materialized = used
    cost = total_cost(dag, final_costs, materialized)
    elapsed = time.perf_counter() - start

    return OptimizationResult(
        algorithm="Greedy",
        plan=plan,
        cost=cost,
        optimization_time=elapsed,
        dag_equivalence_nodes=dag.num_equivalence_nodes,
        dag_operation_nodes=dag.num_operation_nodes,
        sharable_nodes=len(candidates),
        counters=counters,
    )


def _benefit(
    dag: Dag,
    state: IncrementalCostState,
    node_id: int,
    current_total: float,
    options: GreedyOptions,
    counters: Dict[str, int],
) -> float:
    counters["benefit_recomputations"] += 1
    counters["bestcost_calls"] += 1
    if options.use_incremental:
        return current_total - state.cost_with_id(node_id)
    trial = set(state.materialized)
    trial.add(node_id)
    costs = compute_node_costs(dag, trial)
    state.propagations += len(costs)
    return current_total - total_cost(dag, costs, trial)


def _greedy_monotonic(
    dag: Dag,
    state: IncrementalCostState,
    candidates: Sequence[EquivalenceNode],
    baseline_costs: Sequence[float],
    degrees: Optional[Dict[int, float]],
    options: GreedyOptions,
    counters: Dict[str, int],
) -> Set[int]:
    """Greedy loop with the benefit upper-bound heap (monotonicity heuristic)."""
    if degrees is None:
        # Sharability detection is off, but the heap still needs genuine upper
        # bounds: local surrogates (``len(node.parents)``, or even the
        # multiplier-weighted direct use count) undercount transitive sharing
        # through shared ancestors and nested-query invocations, letting the
        # heap terminate before a profitable candidate surfaces.  The batched
        # sweep makes the exact degrees cheap, so use them for the bounds
        # (the candidate *set* stays unfiltered — that is what the
        # sharability ablation disables).
        degrees = sharing_degrees(dag, candidates)
    heap: List[Tuple[float, int]] = []
    for node in candidates:
        degree = degrees.get(node.id, 1.0)
        upper_bound = baseline_costs[node.id] * max(degree, 1.0)
        heapq.heappush(heap, (-upper_bound, node.id))

    if options.use_incremental:
        # The fused probe-chain loop on the dense state (see
        # IncrementalCostState.run_monotonic_heap): bit-identical decisions
        # and counters, one call frame for the whole loop.
        return state.run_monotonic_heap(heap, counters, options.max_materializations)

    materialized: Set[int] = set()
    current_total = state.total()
    while heap and len(materialized) < options.max_materializations:
        negative_bound, node_id = heapq.heappop(heap)
        if node_id in materialized:
            continue
        benefit = _benefit(dag, state, node_id, current_total, options, counters)
        next_bound = -heap[0][0] if heap else float("-inf")
        if heap and benefit < next_bound - _EPSILON:
            # Not necessarily the best any more: reinsert with the fresh value.
            heapq.heappush(heap, (-benefit, node_id))
            continue
        if benefit <= _EPSILON:
            break
        state.toggle_id(node_id, add=True)
        materialized.add(node_id)
        current_total = state.total()
    return materialized


def _greedy_full_recompute(
    dag: Dag,
    state: IncrementalCostState,
    candidates: Sequence[EquivalenceNode],
    options: GreedyOptions,
    counters: Dict[str, int],
) -> Set[int]:
    """Greedy loop without the monotonicity heuristic: every remaining
    candidate's benefit is recomputed in every iteration (Figure 4, literally).

    With the incremental cost state enabled the per-round probes go through
    :meth:`~repro.optimizer.engine.IncrementalCostState.probe_many` as one
    batch: within a round the state is fixed, so the candidates' benefits
    are mutually independent and the probe order is immaterial (each probe
    is still an individual exact-restore toggle — see the method's
    docstring for why independent probes cannot share stacked toggles).
    """
    materialized: Set[int] = set()
    remaining: List[int] = [node.id for node in candidates]
    current_total = state.total()
    while remaining and len(materialized) < options.max_materializations:
        best_node_id = None
        best_benefit = 0.0
        if options.use_incremental:
            counters["benefit_recomputations"] += len(remaining)
            counters["bestcost_calls"] += len(remaining)
            totals = state.probe_many(remaining)
            for node_id, trial_total in zip(remaining, totals):
                benefit = current_total - trial_total
                if benefit > best_benefit + _EPSILON:
                    best_benefit = benefit
                    best_node_id = node_id
        else:
            for node_id in remaining:
                benefit = _benefit(dag, state, node_id, current_total, options, counters)
                if benefit > best_benefit + _EPSILON:
                    best_benefit = benefit
                    best_node_id = node_id
        if best_node_id is None:
            break
        state.toggle_id(best_node_id, add=True)
        materialized.add(best_node_id)
        remaining.remove(best_node_id)
        current_total = state.total()
    return materialized
