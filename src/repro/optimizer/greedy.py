"""The greedy multi-query optimization heuristic (Section 4 of the paper).

The greedy algorithm iteratively picks the equivalence node whose
materialization gives the largest reduction in the total cost
``bestcost(Q, X)`` and adds it to the materialized set ``X``, stopping when no
node has positive benefit.  What makes it practical — and what this module
reproduces in full — are the paper's three implementation optimizations:

1. **Sharability** (Section 4.1): only nodes whose degree of sharing in the
   DAG exceeds one are candidates.  All degrees are computed in one batched
   sweep (:func:`repro.dag.sharability.sharing_degrees`).
2. **Incremental cost update** (Section 4.2, Figure 5): the cost state is
   maintained across ``bestcost`` calls; toggling one node's materialization
   propagates cost changes upwards in topological order through a heap, so
   each benefit computation touches only the ancestors of the candidate.  The
   running total ``bestcost(Q, X)`` is itself maintained incrementally under
   toggle/undo, so a benefit probe costs O(affected ancestors), not
   O(affected ancestors + |X|).
3. **The monotonicity heuristic** (Section 4.3): candidates live in a heap
   ordered by an upper bound on their benefit (initially
   ``cost(x) × degree_of_sharing(x)``); only the top candidate's benefit is
   recomputed, and it is materialized if it stays on top.  Even when
   sharability detection is disabled the initial bounds use exact
   multiplier-aware degrees of sharing from the batched sweep —
   ``len(node.parents)``, the old fallback, undercounts nested-query use
   multipliers and transitive sharing and is not an upper bound on
   correlated workloads, so the heap could terminate early.

The hot path runs on the flat-array DAG snapshot of
:class:`~repro.optimizer.engine.CostEngine` (see its module docstring for the
measured Figure 9/10 before/after numbers).  Each optimization can be disabled
independently (:class:`GreedyOptions`), which is how the Section 6.3 ablation
benchmarks are produced.  The counters reported in Figure 10 — cost
propagations across equivalence nodes and benefit recomputations — are
collected in the returned :class:`~repro.optimizer.report.OptimizationResult`.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dag.nodes import Dag, EquivalenceNode
from repro.dag.sharability import sharing_degrees
from repro.optimizer.costing import best_operations, compute_node_costs, total_cost
from repro.optimizer.engine import INFINITE_COST, get_engine
from repro.optimizer.plans import ConsolidatedPlan
from repro.optimizer.report import OptimizationResult

_EPSILON = 1e-9


@dataclass(frozen=True)
class GreedyOptions:
    """Switches for the three greedy implementation optimizations."""

    use_sharability: bool = True
    use_monotonicity: bool = True
    use_incremental: bool = True
    #: Safety bound on the number of materialized nodes (never hit in practice).
    max_materializations: int = 10_000


class IncrementalCostState:
    """The incremental cost update machinery of Figure 5.

    Maintains ``cost(e)`` for every equivalence node under the current
    materialized set, propagates the effect of materializing (or
    un-materializing) a single node upwards through its ancestors in
    topological order, and keeps the running total ``bestcost(Q, X)`` in sync
    so that :meth:`total` is O(1) instead of O(|X|) per benefit probe.
    """

    def __init__(self, dag: Dag) -> None:
        self.dag = dag
        self.engine = get_engine(dag)
        #: id -> EquivalenceNode (ids are dense, so the engine's list serves).
        self.nodes_by_id: Sequence[EquivalenceNode] = self.engine.nodes
        self.materialized: Set[int] = set()
        self.costs: Dict[int, float] = dict(enumerate(self.engine.compute_costs()))
        self._total: float = self.costs[self.engine.root_id]
        #: Number of equivalence-node cost propagations (Figure 10, left).
        self.propagations = 0

    def total(self) -> float:
        """``bestcost(Q, X)`` for the current materialized set."""
        return self._total

    def toggle(self, node: EquivalenceNode, add: bool) -> List[Tuple[int, float]]:
        """Materialize (or un-materialize) *node* and propagate cost changes.

        Returns the undo log: the list of ``(node_id, previous_cost)`` entries
        that were overwritten, in propagation order.
        """
        engine = self.engine
        costs = self.costs
        materialized = self.materialized
        mat_cost = engine.mat_cost
        reuse_cost = engine.reuse_cost
        op_table = engine.op_table
        is_base = engine.is_base
        parent_ids = engine.parent_ids
        topo_number = engine.topo_number
        root_id = engine.root_id

        node_id = node.id
        if add == (node_id in materialized):
            # A redundant toggle would double-count the node's contribution in
            # the incrementally maintained total; fail fast instead.
            state = "already" if add else "not"
            raise ValueError(f"node {node_id} is {state} materialized")
        # The node's own cost never depends on its own membership (the DAG is
        # acyclic), so its pre-propagation cost is its final cost contribution.
        if add:
            materialized.add(node_id)
            self._total += costs[node_id] + mat_cost[node_id]
        else:
            materialized.discard(node_id)
            self._total -= costs[node_id] + mat_cost[node_id]

        undo: List[Tuple[int, float]] = []
        heap: List[Tuple[int, int]] = [(topo_number[node_id], node_id)]
        pending = {node_id}
        propagations = 0
        while heap:
            _, current_id = heapq.heappop(heap)
            pending.discard(current_id)
            old_cost = costs[current_id]
            operations = op_table[current_id]
            if operations and not is_base[current_id]:
                new_cost = INFINITE_COST
                for local_cost, children in operations:
                    candidate = local_cost
                    for child_id, multiplier in children:
                        child = costs[child_id]
                        if child_id in materialized:
                            reuse = reuse_cost[child_id]
                            if reuse < child:
                                child = reuse
                        candidate += multiplier * child
                    if candidate < new_cost:
                        new_cost = candidate
            else:
                new_cost = old_cost
            propagations += 1
            delta = new_cost - old_cost
            changed = delta > _EPSILON or delta < -_EPSILON
            if changed:
                undo.append((current_id, old_cost))
                costs[current_id] = new_cost
                if current_id == root_id:
                    self._total += delta
                if current_id in materialized:
                    self._total += delta
            if changed or current_id == node_id:
                for parent_id in parent_ids[current_id]:
                    if parent_id not in pending:
                        pending.add(parent_id)
                        heapq.heappush(heap, (topo_number[parent_id], parent_id))
        self.propagations += propagations
        return undo

    def undo(self, node: EquivalenceNode, undo_log: List[Tuple[int, float]], added: bool) -> None:
        """Revert a previous :meth:`toggle`."""
        engine = self.engine
        costs = self.costs
        materialized = self.materialized
        root_id = engine.root_id
        for node_id, old_cost in reversed(undo_log):
            delta = old_cost - costs[node_id]
            if node_id == root_id:
                self._total += delta
            if node_id in materialized:
                self._total += delta
            costs[node_id] = old_cost
        contribution = costs[node.id] + engine.mat_cost[node.id]
        if added:
            materialized.discard(node.id)
            self._total -= contribution
        else:
            materialized.add(node.id)
            self._total += contribution

    def cost_with(self, node: EquivalenceNode) -> float:
        """``bestcost(Q, X ∪ {node})`` without permanently changing the state."""
        previous_total = self._total
        undo_log = self.toggle(node, add=True)
        total = self._total
        self.undo(node, undo_log, added=True)
        # The reversed arithmetic restores the total only up to floating-point
        # associativity; restore the exact value to keep long runs drift-free.
        self._total = previous_total
        return total


def _candidate_nodes(
    dag: Dag, options: GreedyOptions
) -> Tuple[List[EquivalenceNode], Optional[Dict[int, float]]]:
    """The greedy candidate set, plus sharing degrees when sharability is on.

    Degrees are computed once, in a single batched sweep, and reused both for
    candidate selection (degree > 1) and for the monotonicity heap's initial
    upper bounds.
    """
    if options.use_sharability:
        degrees = sharing_degrees(dag)
        candidates = [
            node
            for node in dag.equivalence_nodes()
            if degrees.get(node.id, 0.0) > 1.0 and not node.is_base and node is not dag.root
        ]
        return candidates, degrees
    candidates = [
        node
        for node in dag.equivalence_nodes()
        if not node.is_base and node is not dag.root
    ]
    return candidates, None


def optimize_greedy(dag: Dag, options: Optional[GreedyOptions] = None) -> OptimizationResult:
    """Run the greedy heuristic on the DAG."""
    options = options or GreedyOptions()
    start = time.perf_counter()
    counters = {
        "benefit_recomputations": 0,
        "cost_propagations": 0,
        "bestcost_calls": 0,
        "candidates": 0,
    }

    state = IncrementalCostState(dag)
    baseline_costs = dict(state.costs)
    candidates, degrees = _candidate_nodes(dag, options)
    counters["candidates"] = len(candidates)

    materialized: Set[int] = set()
    if candidates:
        if options.use_monotonicity:
            materialized = _greedy_monotonic(
                dag, state, candidates, baseline_costs, degrees, options, counters
            )
        else:
            materialized = _greedy_full_recompute(dag, state, candidates, options, counters)

    counters["cost_propagations"] = state.propagations

    # Drop materializations that ended up unused in the final plan.  Dropping
    # one can orphan another that was only used to build it, and the operation
    # choices must be recomputed for the pruned set (an op chosen because it
    # reused a now-dropped node may no longer be the argmin), so recompute and
    # prune to fixpoint.  Pruning an unused node never raises the root's cost
    # — no chosen operation referenced it — so each round's total is no worse.
    while True:
        final_costs = compute_node_costs(dag, materialized)
        choices = best_operations(dag, final_costs, materialized)
        plan = ConsolidatedPlan(dag, choices, set(materialized))
        used: Set[int] = set()
        for node in plan.reachable():
            operation = choices.get(node.id)
            if operation is None:
                continue
            for child in operation.children:
                if child.id in materialized:
                    used.add(child.id)
        if used == materialized:
            break
        materialized = used
    cost = total_cost(dag, final_costs, materialized)
    elapsed = time.perf_counter() - start

    return OptimizationResult(
        algorithm="Greedy",
        plan=plan,
        cost=cost,
        optimization_time=elapsed,
        dag_equivalence_nodes=dag.num_equivalence_nodes,
        dag_operation_nodes=dag.num_operation_nodes,
        sharable_nodes=len(candidates),
        counters=counters,
    )


def _benefit(
    dag: Dag,
    state: IncrementalCostState,
    node: EquivalenceNode,
    current_total: float,
    options: GreedyOptions,
    counters: Dict[str, int],
) -> float:
    counters["benefit_recomputations"] += 1
    counters["bestcost_calls"] += 1
    if options.use_incremental:
        return current_total - state.cost_with(node)
    trial = set(state.materialized)
    trial.add(node.id)
    costs = compute_node_costs(dag, trial)
    state.propagations += len(costs)
    return current_total - total_cost(dag, costs, trial)


def _greedy_monotonic(
    dag: Dag,
    state: IncrementalCostState,
    candidates: Sequence[EquivalenceNode],
    baseline_costs: Dict[int, float],
    degrees: Optional[Dict[int, float]],
    options: GreedyOptions,
    counters: Dict[str, int],
) -> Set[int]:
    """Greedy loop with the benefit upper-bound heap (monotonicity heuristic)."""
    if degrees is None:
        # Sharability detection is off, but the heap still needs genuine upper
        # bounds: local surrogates (``len(node.parents)``, or even the
        # multiplier-weighted direct use count) undercount transitive sharing
        # through shared ancestors and nested-query invocations, letting the
        # heap terminate before a profitable candidate surfaces.  The batched
        # sweep makes the exact degrees cheap, so use them for the bounds
        # (the candidate *set* stays unfiltered — that is what the
        # sharability ablation disables).
        degrees = sharing_degrees(dag, candidates)
    heap: List[Tuple[float, int]] = []
    for node in candidates:
        degree = degrees.get(node.id, 1.0)
        upper_bound = baseline_costs[node.id] * max(degree, 1.0)
        heapq.heappush(heap, (-upper_bound, node.id))

    materialized: Set[int] = set()
    current_total = state.total()
    while heap and len(materialized) < options.max_materializations:
        negative_bound, node_id = heapq.heappop(heap)
        if node_id in materialized:
            continue
        node = state.nodes_by_id[node_id]
        benefit = _benefit(dag, state, node, current_total, options, counters)
        next_bound = -heap[0][0] if heap else float("-inf")
        if heap and benefit < next_bound - _EPSILON:
            # Not necessarily the best any more: reinsert with the fresh value.
            heapq.heappush(heap, (-benefit, node_id))
            continue
        if benefit <= _EPSILON:
            break
        state.toggle(node, add=True)
        materialized.add(node_id)
        current_total = state.total()
    return materialized


def _greedy_full_recompute(
    dag: Dag,
    state: IncrementalCostState,
    candidates: Sequence[EquivalenceNode],
    options: GreedyOptions,
    counters: Dict[str, int],
) -> Set[int]:
    """Greedy loop without the monotonicity heuristic: every remaining
    candidate's benefit is recomputed in every iteration (Figure 4, literally)."""
    materialized: Set[int] = set()
    remaining = {node.id: node for node in candidates}
    current_total = state.total()
    while remaining and len(materialized) < options.max_materializations:
        best_node = None
        best_benefit = 0.0
        for node in remaining.values():
            benefit = _benefit(dag, state, node, current_total, options, counters)
            if benefit > best_benefit + _EPSILON:
                best_benefit = benefit
                best_node = node
        if best_node is None:
            break
        state.toggle(best_node, add=True)
        materialized.add(best_node.id)
        del remaining[best_node.id]
        current_total = state.total()
    return materialized
