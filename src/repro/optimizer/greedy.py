"""The greedy multi-query optimization heuristic (Section 4 of the paper).

The greedy algorithm iteratively picks the equivalence node whose
materialization gives the largest reduction in the total cost
``bestcost(Q, X)`` and adds it to the materialized set ``X``, stopping when no
node has positive benefit.  What makes it practical — and what this module
reproduces in full — are the paper's three implementation optimizations:

1. **Sharability** (Section 4.1): only nodes whose degree of sharing in the
   DAG exceeds one are candidates.
2. **Incremental cost update** (Section 4.2, Figure 5): the cost state is
   maintained across ``bestcost`` calls; toggling one node's materialization
   propagates cost changes upwards in topological order through a heap, so
   each benefit computation touches only the ancestors of the candidate.
3. **The monotonicity heuristic** (Section 4.3): candidates live in a heap
   ordered by an upper bound on their benefit (initially
   ``cost(x) × degree_of_sharing(x)``); only the top candidate's benefit is
   recomputed, and it is materialized if it stays on top.

Each optimization can be disabled independently (:class:`GreedyOptions`),
which is how the Section 6.3 ablation benchmarks are produced.  The counters
reported in Figure 10 — cost propagations across equivalence nodes and
benefit recomputations — are collected in the returned
:class:`~repro.optimizer.report.OptimizationResult`.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dag.nodes import Dag, EquivalenceNode
from repro.dag.sharability import sharable_nodes, sharing_degrees
from repro.optimizer.costing import (
    best_operations,
    compute_node_costs,
    equivalence_cost,
    total_cost,
)
from repro.optimizer.plans import ConsolidatedPlan
from repro.optimizer.report import OptimizationResult

_EPSILON = 1e-9


@dataclass(frozen=True)
class GreedyOptions:
    """Switches for the three greedy implementation optimizations."""

    use_sharability: bool = True
    use_monotonicity: bool = True
    use_incremental: bool = True
    #: Safety bound on the number of materialized nodes (never hit in practice).
    max_materializations: int = 10_000


class IncrementalCostState:
    """The incremental cost update machinery of Figure 5.

    Maintains ``cost(e)`` for every equivalence node under the current
    materialized set, and propagates the effect of materializing (or
    un-materializing) a single node upwards through its ancestors in
    topological order.
    """

    def __init__(self, dag: Dag) -> None:
        self.dag = dag
        self.nodes_by_id: Dict[int, EquivalenceNode] = {
            node.id: node for node in dag.equivalence_nodes()
        }
        self.materialized: Set[int] = set()
        self.costs: Dict[int, float] = compute_node_costs(dag, self.materialized)
        #: Number of equivalence-node cost propagations (Figure 10, left).
        self.propagations = 0

    def total(self) -> float:
        """``bestcost(Q, X)`` for the current materialized set."""
        total = self.costs[self.dag.root.id]
        for node_id in self.materialized:
            node = self.nodes_by_id[node_id]
            total += self.costs[node_id] + node.mat_cost
        return total

    def toggle(self, node: EquivalenceNode, add: bool) -> List[Tuple[int, float]]:
        """Materialize (or un-materialize) *node* and propagate cost changes.

        Returns the undo log: the list of ``(node_id, previous_cost)`` entries
        that were overwritten, in propagation order.
        """
        if add:
            self.materialized.add(node.id)
        else:
            self.materialized.discard(node.id)
        undo: List[Tuple[int, float]] = []
        heap: List[Tuple[int, int]] = [(node.topo_number, node.id)]
        pending = {node.id}
        while heap:
            _, node_id = heapq.heappop(heap)
            pending.discard(node_id)
            current = self.nodes_by_id[node_id]
            old_cost = self.costs[node_id]
            new_cost = equivalence_cost(current, self.costs, self.materialized)
            self.propagations += 1
            changed = abs(new_cost - old_cost) > _EPSILON
            if changed:
                undo.append((node_id, old_cost))
                self.costs[node_id] = new_cost
            if changed or node_id == node.id:
                for parent_op in current.parents:
                    parent = parent_op.equivalence
                    if parent.id not in pending:
                        pending.add(parent.id)
                        heapq.heappush(heap, (parent.topo_number, parent.id))
        return undo

    def undo(self, node: EquivalenceNode, undo_log: List[Tuple[int, float]], added: bool) -> None:
        """Revert a previous :meth:`toggle`."""
        for node_id, old_cost in reversed(undo_log):
            self.costs[node_id] = old_cost
        if added:
            self.materialized.discard(node.id)
        else:
            self.materialized.add(node.id)

    def cost_with(self, node: EquivalenceNode) -> float:
        """``bestcost(Q, X ∪ {node})`` without permanently changing the state."""
        undo_log = self.toggle(node, add=True)
        total = self.total()
        self.undo(node, undo_log, added=True)
        return total


def _candidate_nodes(dag: Dag, options: GreedyOptions) -> List[EquivalenceNode]:
    if options.use_sharability:
        return sharable_nodes(dag)
    return [
        node
        for node in dag.equivalence_nodes()
        if not node.is_base and node is not dag.root
    ]


def optimize_greedy(dag: Dag, options: Optional[GreedyOptions] = None) -> OptimizationResult:
    """Run the greedy heuristic on the DAG."""
    options = options or GreedyOptions()
    start = time.perf_counter()
    counters = {
        "benefit_recomputations": 0,
        "cost_propagations": 0,
        "bestcost_calls": 0,
        "candidates": 0,
    }

    state = IncrementalCostState(dag)
    baseline_costs = dict(state.costs)
    candidates = _candidate_nodes(dag, options)
    counters["candidates"] = len(candidates)

    materialized: Set[int] = set()
    if candidates:
        if options.use_monotonicity:
            materialized = _greedy_monotonic(dag, state, candidates, baseline_costs, options, counters)
        else:
            materialized = _greedy_full_recompute(dag, state, candidates, options, counters)

    counters["cost_propagations"] = state.propagations

    final_costs = compute_node_costs(dag, materialized)
    choices = best_operations(dag, final_costs, materialized)
    plan = ConsolidatedPlan(dag, choices, set(materialized))
    # Drop materializations that ended up unused in the final plan.
    reachable_ids = {node.id for node in plan.reachable()}
    used = {
        node_id
        for node_id in materialized
        if any(
            child.id == node_id
            for eq_id in reachable_ids
            for child in (choices.get(eq_id).children if choices.get(eq_id) else ())
        )
    }
    plan.materialized = used
    cost = total_cost(dag, final_costs, used)
    elapsed = time.perf_counter() - start

    return OptimizationResult(
        algorithm="Greedy",
        plan=plan,
        cost=cost,
        optimization_time=elapsed,
        dag_equivalence_nodes=dag.num_equivalence_nodes,
        dag_operation_nodes=dag.num_operation_nodes,
        sharable_nodes=len(candidates),
        counters=counters,
    )


def _benefit(
    dag: Dag,
    state: IncrementalCostState,
    node: EquivalenceNode,
    current_total: float,
    options: GreedyOptions,
    counters: Dict[str, int],
) -> float:
    counters["benefit_recomputations"] += 1
    counters["bestcost_calls"] += 1
    if options.use_incremental:
        return current_total - state.cost_with(node)
    trial = set(state.materialized)
    trial.add(node.id)
    costs = compute_node_costs(dag, trial)
    state.propagations += len(costs)
    return current_total - total_cost(dag, costs, trial)


def _greedy_monotonic(
    dag: Dag,
    state: IncrementalCostState,
    candidates: Sequence[EquivalenceNode],
    baseline_costs: Dict[int, float],
    options: GreedyOptions,
    counters: Dict[str, int],
) -> Set[int]:
    """Greedy loop with the benefit upper-bound heap (monotonicity heuristic)."""
    degrees = sharing_degrees(dag) if options.use_sharability else {}
    heap: List[Tuple[float, int]] = []
    for node in candidates:
        degree = degrees.get(node.id, float(max(1, len(node.parents))))
        upper_bound = baseline_costs[node.id] * max(degree, 1.0)
        heapq.heappush(heap, (-upper_bound, node.id))

    materialized: Set[int] = set()
    current_total = state.total()
    while heap and len(materialized) < options.max_materializations:
        negative_bound, node_id = heapq.heappop(heap)
        if node_id in materialized:
            continue
        node = state.nodes_by_id[node_id]
        benefit = _benefit(dag, state, node, current_total, options, counters)
        next_bound = -heap[0][0] if heap else float("-inf")
        if heap and benefit < next_bound - _EPSILON:
            # Not necessarily the best any more: reinsert with the fresh value.
            heapq.heappush(heap, (-benefit, node_id))
            continue
        if benefit <= _EPSILON:
            break
        state.toggle(node, add=True)
        materialized.add(node_id)
        current_total = state.total()
    return materialized


def _greedy_full_recompute(
    dag: Dag,
    state: IncrementalCostState,
    candidates: Sequence[EquivalenceNode],
    options: GreedyOptions,
    counters: Dict[str, int],
) -> Set[int]:
    """Greedy loop without the monotonicity heuristic: every remaining
    candidate's benefit is recomputed in every iteration (Figure 4, literally)."""
    materialized: Set[int] = set()
    remaining = {node.id: node for node in candidates}
    current_total = state.total()
    while remaining and len(materialized) < options.max_materializations:
        best_node = None
        best_benefit = 0.0
        for node in remaining.values():
            benefit = _benefit(dag, state, node, current_total, options, counters)
            if benefit > best_benefit + _EPSILON:
                best_benefit = benefit
                best_node = node
        if best_node is None:
            break
        state.toggle(best_node, add=True)
        materialized.add(best_node.id)
        del remaining[best_node.id]
        current_total = state.total()
    return materialized
