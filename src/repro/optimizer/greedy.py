"""The greedy multi-query optimization heuristic (Section 4 of the paper).

The greedy algorithm iteratively picks the equivalence node whose
materialization gives the largest reduction in the total cost
``bestcost(Q, X)`` and adds it to the materialized set ``X``, stopping when no
node has positive benefit.  What makes it practical — and what this module
reproduces in full — are the paper's three implementation optimizations:

1. **Sharability** (Section 4.1): only nodes whose degree of sharing in the
   DAG exceeds one are candidates.  All degrees are computed in one batched
   sweep (:func:`repro.dag.sharability.sharing_degrees`).
2. **Incremental cost update** (Section 4.2, Figure 5): the cost state is
   maintained across ``bestcost`` calls; toggling one node's materialization
   propagates cost changes upwards in topological order through a heap, so
   each benefit computation touches only the ancestors of the candidate.  The
   running total ``bestcost(Q, X)`` is itself maintained incrementally under
   toggle/undo, so a benefit probe costs O(affected ancestors), not
   O(affected ancestors + |X|).
3. **The monotonicity heuristic** (Section 4.3): candidates live in a heap
   ordered by an upper bound on their benefit (initially
   ``cost(x) × degree_of_sharing(x)``); only the top candidate's benefit is
   recomputed, and it is materialized if it stays on top.  Even when
   sharability detection is disabled the initial bounds use exact
   multiplier-aware degrees of sharing from the batched sweep —
   ``len(node.parents)``, the old fallback, undercounts nested-query use
   multipliers and transitive sharing and is not an upper bound on
   correlated workloads, so the heap could terminate early.

The incremental cost state itself
(:class:`~repro.optimizer.engine.IncrementalCostState`, re-exported here for
backwards compatibility) lives in :mod:`repro.optimizer.engine` on flat
id-indexed arrays; benefit probes go through its fused
``cost_with_id``/``probe_many`` kernels.  The full-recompute ablation loop
batches the benefit probes of all remaining candidates per round through
``probe_many`` — between two materializations the state is fixed, so the
probes are independent and order-insensitive.  Each optimization can be
disabled independently (:class:`GreedyOptions`), which is how the Section 6.3
ablation benchmarks are produced.  The counters reported in Figure 10 — cost
propagations across equivalence nodes and benefit recomputations — are
collected in the returned :class:`~repro.optimizer.report.OptimizationResult`
and are invariant under the dense-state rewrite.

The final unused-materialization pruning fixpoint (:func:`_prune_unused`) is
itself incremental: a fresh exact (``epsilon=0``) cost state drops unused
nodes via toggles, and argmin choices plus plan reference counts are
maintained densely so each round after the first touches only the changed
cone.  Its propagations are deliberately **not** counted in the Figure 10
counters (the reference pruning recomputed from scratch and counted
nothing); the from-scratch rounds are kept as
:func:`_prune_unused_reference` and the differential suite asserts exact
agreement.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dag.nodes import Dag, EquivalenceNode, OperationNode
from repro.dag.sharability import sharing_degrees
from repro.optimizer.costing import best_operations, compute_node_costs, total_cost
from repro.optimizer.engine import (
    _EPSILON,
    IncrementalCostState,
    argmin_operation,
    get_engine,
)
from repro.optimizer.plans import ConsolidatedPlan
from repro.optimizer.report import OptimizationResult

__all__ = ["GreedyOptions", "IncrementalCostState", "optimize_greedy"]


@dataclass(frozen=True)
class GreedyOptions:
    """Switches for the three greedy implementation optimizations."""

    use_sharability: bool = True
    use_monotonicity: bool = True
    use_incremental: bool = True
    #: Safety bound on the number of materialized nodes (never hit in practice).
    max_materializations: int = 10_000


def _candidate_nodes(
    dag: Dag, options: GreedyOptions
) -> Tuple[List[EquivalenceNode], Optional[Dict[int, float]]]:
    """The greedy candidate set, plus sharing degrees when sharability is on.

    Degrees are computed once, in a single batched sweep, and reused both for
    candidate selection (degree > 1) and for the monotonicity heap's initial
    upper bounds.
    """
    if options.use_sharability:
        degrees = sharing_degrees(dag)
        candidates = [
            node
            for node in dag.equivalence_nodes()
            if degrees.get(node.id, 0.0) > 1.0 and not node.is_base and node is not dag.root
        ]
        return candidates, degrees
    candidates = [
        node
        for node in dag.equivalence_nodes()
        if not node.is_base and node is not dag.root
    ]
    return candidates, None


def optimize_greedy(
    dag: Dag,
    options: Optional[GreedyOptions] = None,
    deadline: Optional[float] = None,
) -> OptimizationResult:
    """Run the greedy heuristic on the DAG.

    *deadline* is an absolute ``time.perf_counter()`` value; when given, the
    greedy loops check it at materialization-decision boundaries and stop
    early with the best-so-far materialized set (the anytime property of the
    heuristic: every prefix of the materialization sequence is a valid,
    monotonically improving plan).  An interrupted run sets
    ``counters["deadline_expired"] = 1`` and is byte-identical to a completed
    run with ``max_materializations`` capped at the count reached — probes
    after the last commit never mutate state.  With ``deadline=None`` (the
    default) no clock is read inside the loops and behavior is bit-identical
    to pre-deadline code.
    """
    options = options or GreedyOptions()
    start = time.perf_counter()
    counters = {
        "benefit_recomputations": 0,
        "cost_propagations": 0,
        "bestcost_calls": 0,
        "candidates": 0,
    }

    state = IncrementalCostState(dag)
    baseline_costs = state.snapshot_costs()
    candidates, degrees = _candidate_nodes(dag, options)
    counters["candidates"] = len(candidates)

    materialized: Set[int] = set()
    if candidates:
        if options.use_monotonicity:
            materialized = _greedy_monotonic(
                dag, state, candidates, baseline_costs, degrees, options, counters, deadline
            )
        else:
            materialized = _greedy_full_recompute(
                dag, state, candidates, options, counters, deadline
            )

    counters["cost_propagations"] = state.propagations

    materialized, choices, cost = _prune_unused(dag, materialized)
    plan = ConsolidatedPlan(dag, choices, set(materialized))
    elapsed = time.perf_counter() - start

    return OptimizationResult(
        algorithm="Greedy",
        plan=plan,
        cost=cost,
        optimization_time=elapsed,
        dag_equivalence_nodes=dag.num_equivalence_nodes,
        dag_operation_nodes=dag.num_operation_nodes,
        sharable_nodes=len(candidates),
        counters=counters,
    )


def _benefit(
    dag: Dag,
    state: IncrementalCostState,
    node_id: int,
    current_total: float,
    options: GreedyOptions,
    counters: Dict[str, int],
) -> float:
    counters["benefit_recomputations"] += 1
    counters["bestcost_calls"] += 1
    if options.use_incremental:
        return current_total - state.cost_with_id(node_id)
    trial = set(state.materialized)
    trial.add(node_id)
    costs = compute_node_costs(dag, trial)
    state.propagations += len(costs)
    return current_total - total_cost(dag, costs, trial)


def _greedy_monotonic(
    dag: Dag,
    state: IncrementalCostState,
    candidates: Sequence[EquivalenceNode],
    baseline_costs: Sequence[float],
    degrees: Optional[Dict[int, float]],
    options: GreedyOptions,
    counters: Dict[str, int],
    deadline: Optional[float] = None,
) -> Set[int]:
    """Greedy loop with the benefit upper-bound heap (monotonicity heuristic)."""
    if degrees is None:
        # Sharability detection is off, but the heap still needs genuine upper
        # bounds: local surrogates (``len(node.parents)``, or even the
        # multiplier-weighted direct use count) undercount transitive sharing
        # through shared ancestors and nested-query invocations, letting the
        # heap terminate before a profitable candidate surfaces.  The batched
        # sweep makes the exact degrees cheap, so use them for the bounds
        # (the candidate *set* stays unfiltered — that is what the
        # sharability ablation disables).
        degrees = sharing_degrees(dag, candidates)
    heap: List[Tuple[float, int]] = []
    for node in candidates:
        degree = degrees.get(node.id, 1.0)
        upper_bound = baseline_costs[node.id] * max(degree, 1.0)
        heapq.heappush(heap, (-upper_bound, node.id))

    if options.use_incremental:
        # The fused probe-chain loop on the dense state (see
        # IncrementalCostState.run_monotonic_heap): bit-identical decisions
        # and counters, one call frame for the whole loop.
        return state.run_monotonic_heap(
            heap, counters, options.max_materializations, deadline
        )

    materialized: Set[int] = set()
    current_total = state.total()
    while heap and len(materialized) < options.max_materializations:
        if deadline is not None and time.perf_counter() >= deadline:
            counters["deadline_expired"] = 1
            break
        negative_bound, node_id = heapq.heappop(heap)
        if node_id in materialized:
            continue
        benefit = _benefit(dag, state, node_id, current_total, options, counters)
        next_bound = -heap[0][0] if heap else float("-inf")
        if heap and benefit < next_bound - _EPSILON:
            # Not necessarily the best any more: reinsert with the fresh value.
            heapq.heappush(heap, (-benefit, node_id))
            continue
        if benefit <= _EPSILON:
            break
        state.toggle_id(node_id, add=True)
        materialized.add(node_id)
        current_total = state.total()
    return materialized


def _greedy_full_recompute(
    dag: Dag,
    state: IncrementalCostState,
    candidates: Sequence[EquivalenceNode],
    options: GreedyOptions,
    counters: Dict[str, int],
    deadline: Optional[float] = None,
) -> Set[int]:
    """Greedy loop without the monotonicity heuristic: every remaining
    candidate's benefit is recomputed in every iteration (Figure 4, literally).

    With the incremental cost state enabled the per-round probes go through
    :meth:`~repro.optimizer.engine.IncrementalCostState.probe_many` as one
    batch: within a round the state is fixed, so the candidates' benefits
    are mutually independent and the probe order is immaterial (each probe
    is still an individual exact-restore toggle — see the method's
    docstring for why independent probes cannot share stacked toggles).
    """
    materialized: Set[int] = set()
    remaining: List[int] = [node.id for node in candidates]
    current_total = state.total()
    while remaining and len(materialized) < options.max_materializations:
        if deadline is not None and time.perf_counter() >= deadline:
            counters["deadline_expired"] = 1
            break
        best_node_id = None
        best_benefit = 0.0
        if options.use_incremental:
            counters["benefit_recomputations"] += len(remaining)
            counters["bestcost_calls"] += len(remaining)
            totals = state.probe_many(remaining)
            for node_id, trial_total in zip(remaining, totals):
                benefit = current_total - trial_total
                if benefit > best_benefit + _EPSILON:
                    best_benefit = benefit
                    best_node_id = node_id
        else:
            for node_id in remaining:
                benefit = _benefit(dag, state, node_id, current_total, options, counters)
                if benefit > best_benefit + _EPSILON:
                    best_benefit = benefit
                    best_node_id = node_id
        if best_node_id is None:
            break
        state.toggle_id(best_node_id, add=True)
        materialized.add(best_node_id)
        remaining.remove(best_node_id)
        current_total = state.total()
    return materialized


# ---------------------------------------------------------------------------
# Unused-materialization pruning (fixpoint)
# ---------------------------------------------------------------------------

def _prune_unused(
    dag: Dag, materialized: Set[int]
) -> Tuple[Set[int], Dict[int, Optional[OperationNode]], float]:
    """Drop materializations that ended up unused in the final plan.

    Dropping one can orphan another that was only used to build it, and the
    operation choices must be recomputed for the pruned set (an op chosen
    because it reused a now-dropped node may no longer be the argmin), so the
    pruning iterates to fixpoint.  Pruning an unused node never raises the
    root's cost — no chosen operation referenced it — so each round's total
    is no worse.

    The fixpoint runs incrementally on one exact (``epsilon=0``)
    :class:`~repro.optimizer.engine.IncrementalCostState` — the same
    machinery Volcano-RU uses to *add* reuse candidates, here driven in
    reverse to drop them:

    * the cost table under the current set is the state's dense array; each
      drop is one :meth:`~IncrementalCostState.toggle_id` that touches only
      the dropped node's ancestors;
    * argmin operation choices are maintained in a flat per-node index array
      and recomputed only for nodes whose inputs (a child's effective cost or
      materialization flag) changed;
    * plan reference counts (how many reachable chosen operations reference
      each node) are maintained densely, with reachability cascades applied
      when a choice flips, so the unused test is an O(1) counter read.

    Each round after the first is therefore O(changed) instead of a full
    ``compute_node_costs`` + ``best_operations`` recompute.  The from-scratch
    formulation is retained as :func:`_prune_unused_reference` and the
    differential suite asserts exact agreement (sets, choices, and cost)
    between the two.
    """
    engine = get_engine(dag)
    num_nodes = engine.num_nodes
    root_id = engine.root_id
    is_base = engine.is_base
    op_table = engine.op_table
    op_specs = engine.op_specs
    op_nodes = engine.op_nodes
    parent_ids = engine.parent_ids

    # epsilon=0.0 keeps the cost table bit-identical to a from-scratch
    # ``compute_node_costs`` after every toggle (see Volcano-RU), which is
    # what makes the incremental rounds interchangeable with the reference.
    state = IncrementalCostState(dag, epsilon=0.0)
    for node_id in sorted(materialized):
        state.toggle_id(node_id, add=True)
    materialized = set(state.materialized)
    costs = state._costs
    effective = state._effective

    # Argmin choice per node, as an index into ``op_specs[node_id]`` (-1 when
    # every alternative is infinite, mirroring ``best_operations``).
    choice_index: List[int] = [-1] * num_nodes
    for node_id, operations in enumerate(op_specs):
        if operations is not None:
            choice_index[node_id] = argmin_operation(operations, effective)

    # Reference counts: how many (reachable chosen operation, child slot)
    # pairs reference each node.  A node is reachable iff it is the root or
    # its count is positive; counts cascade through choice flips below.
    ref: List[int] = [0] * num_nodes
    stack = [root_id]
    seen = bytearray(num_nodes)
    seen[root_id] = 1
    while stack:
        node_id = stack.pop()
        if is_base[node_id]:
            continue
        index = choice_index[node_id]
        if index < 0:
            continue
        for child_id, _multiplier in op_table[node_id][index][1]:
            ref[child_id] += 1
            if not seen[child_id]:
                seen[child_id] = 1
                stack.append(child_id)

    def adjust(children: Tuple[Tuple[int, float], ...], delta: int) -> None:
        """Add *delta* references to the children, cascading reachability."""
        pending = [child_id for child_id, _multiplier in children]
        while pending:
            node_id = pending.pop()
            ref[node_id] += delta
            # Crossing zero flips reachability: the node's own chosen
            # references appear (or disappear) along with it.
            if ref[node_id] == (1 if delta > 0 else 0) and not is_base[node_id]:
                index = choice_index[node_id]
                if index >= 0:
                    pending.extend(
                        child_id for child_id, _m in op_table[node_id][index][1]
                    )

    while True:
        unused = [node_id for node_id in materialized if not ref[node_id]]  # repro-lint: ok(D001) consumed order-insensitively: re-sorted below and set-differenced
        if not unused:
            break
        changed: Set[int] = set()
        for node_id in sorted(unused):
            changed.add(node_id)
            for changed_id, _old_cost in state.toggle_id(node_id, add=False):
                changed.add(changed_id)
        materialized.difference_update(unused)
        dirty: Set[int] = set()
        for node_id in changed:
            dirty.update(parent_ids[node_id])
        for node_id in sorted(dirty):
            operations = op_specs[node_id]
            if operations is None:
                continue
            new_index = argmin_operation(operations, effective)
            old_index = choice_index[node_id]
            if new_index == old_index:
                continue
            choice_index[node_id] = new_index
            if node_id == root_id or ref[node_id] > 0:
                if new_index >= 0:
                    adjust(op_table[node_id][new_index][1], 1)
                if old_index >= 0:
                    adjust(op_table[node_id][old_index][1], -1)

    choices: Dict[int, Optional[OperationNode]] = {}
    for node_id, operations in enumerate(op_specs):
        if operations is None:
            continue
        index = choice_index[node_id]
        choices[node_id] = op_nodes[node_id][index] if index >= 0 else None
    return materialized, choices, engine.total(costs, materialized)


def _prune_unused_reference(
    dag: Dag, materialized: Set[int]
) -> Tuple[Set[int], Dict[int, Optional[OperationNode]], float]:
    """The from-scratch pruning fixpoint (one full ``compute_node_costs`` +
    ``best_operations`` round per iteration), kept as the oracle for
    :func:`_prune_unused`."""
    materialized = set(materialized)
    while True:
        final_costs = compute_node_costs(dag, materialized)
        choices = best_operations(dag, final_costs, materialized)
        plan = ConsolidatedPlan(dag, choices, set(materialized))
        used: Set[int] = set()
        for node in plan.reachable():
            operation = choices.get(node.id)
            if operation is None:
                continue
            for child in operation.children:
                if child.id in materialized:
                    used.add(child.id)
        if used == materialized:
            break
        materialized = used
    return materialized, choices, total_cost(dag, final_costs, materialized)
