"""Consolidated (DAG-structured) plans and executable plan extraction.

The output of basic Volcano optimization is the *consolidated best plan*: for
every equivalence node reachable from the pseudo-root, the chosen operation.
Because common sub-expressions are unified in the DAG, the consolidated plan
is itself a DAG (nodes may have several parents); the multi-query algorithms
then decide which of those shared nodes to actually materialize.

:func:`extract_plan` turns a consolidated plan plus a materialization set into
an executable operator tree in which the first use of a materialized node
computes and materializes it and every further use reads the materialized
result — the form the simulated execution engine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.dag.nodes import Dag, DagError, EquivalenceNode, OperationNode
from repro.optimizer.engine import get_engine as _engine


class PlanError(RuntimeError):
    """Raised when a plan is structurally inconsistent."""


@dataclass
class ConsolidatedPlan:
    """A DAG-structured plan: one chosen operation per equivalence node.

    ``choices`` may contain entries for nodes that are not reachable from the
    root under the current choices; :meth:`reachable` reports the live part.
    """

    dag: Dag
    choices: Dict[int, OperationNode]
    materialized: Set[int] = field(default_factory=set)

    # -- navigation -----------------------------------------------------------
    def operation_for(self, node: EquivalenceNode) -> OperationNode:
        try:
            return self.choices[node.id]
        except KeyError:
            raise PlanError(f"plan has no operation chosen for {node!r}") from None

    def reachable(self, roots: Optional[Iterable[EquivalenceNode]] = None) -> List[EquivalenceNode]:
        """Equivalence nodes reachable from *roots* under the chosen operations."""
        root_ids = None if roots is None else [root.id for root in roots]
        nodes = _engine(self.dag).nodes
        return [nodes[node_id] for node_id in self.reachable_ids(root_ids)]

    def reachable_ids(self, root_ids: Optional[Iterable[int]] = None) -> List[int]:
        """Ids of the reachable plan nodes, in the same visit order as
        :meth:`reachable`.

        The walk runs on the flat operation entries of the shared
        :class:`~repro.optimizer.engine.CostEngine` snapshot (one
        ``operation.id`` read per plan node instead of a child-object
        traversal), which is what the dense optimizer passes consume.
        """
        engine = _engine(self.dag)
        op_entries = engine.op_entry_by_op_id
        is_base = engine.is_base
        choices = self.choices
        order: List[int] = []
        seen = bytearray(engine.num_nodes)
        stack = [engine.root_id] if root_ids is None else list(root_ids)
        while stack:
            node_id = stack.pop()
            if seen[node_id]:
                continue
            seen[node_id] = 1
            order.append(node_id)
            if is_base[node_id]:
                continue
            operation = choices.get(node_id)
            if operation is None:
                continue
            for child_id, _multiplier in op_entries[operation.id][1]:
                stack.append(child_id)
        return order

    def parent_counts(self, roots: Optional[Iterable[EquivalenceNode]] = None) -> Dict[int, int]:
        """Number of references to each node within the reachable plan.

        This is the ``numuses⁻`` underestimate used by Volcano-SH: the number
        of (distinct) uses of a node in the consolidated best plan, ignoring
        multiplicative effects of ancestors being recomputed.  Use multipliers
        of nested-query invocations are counted, since each invocation is a
        genuine use.
        """
        counts: Dict[int, int] = {}
        for node in self.reachable(roots):
            if node.is_base:
                continue
            operation = self.choices.get(node.id)
            if operation is None:
                continue
            for child, multiplier in zip(operation.children, operation.child_multipliers):
                counts[child.id] = counts.get(child.id, 0) + max(1, int(round(multiplier)))
        return counts

    def cost(self, node_costs: Dict[int, float]) -> float:
        """Total plan cost under the given per-node cost table."""
        total = node_costs[self.dag.root.id]
        for node_id in self.materialized:
            node = self._node(node_id)
            total += node_costs[node_id] + node.mat_cost
        return total

    def _node(self, node_id: int) -> EquivalenceNode:
        try:
            return self.dag.node_by_id(node_id)
        except DagError as error:
            raise PlanError(str(error)) from None

    def materialized_labels(self) -> List[str]:
        return [self._node(node_id).label for node_id in sorted(self.materialized)]

    # -- pretty printing -----------------------------------------------------
    def explain(self) -> str:
        """Human-readable rendering of the plan (one line per plan node)."""
        lines: List[str] = []
        visited: Set[int] = set()

        def visit(node: EquivalenceNode, depth: int) -> None:
            indent = "  " * depth
            marker = " [materialized]" if node.id in self.materialized else ""
            if node.is_base:
                lines.append(f"{indent}{node.label}{marker}")
                return
            if node.id in visited and node.id in self.materialized:
                lines.append(f"{indent}reuse({node.label})")
                return
            visited.add(node.id)
            operation = self.choices.get(node.id)
            if operation is None:
                lines.append(f"{indent}{node.label}{marker} (no operation)")
                return
            lines.append(f"{indent}{operation.operator.describe()} -> {node.label}{marker}")
            for child in operation.children:
                visit(child, depth + 1)

        visit(self.dag.root, 0)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Executable plan extraction
# ---------------------------------------------------------------------------

@dataclass
class PlanNode:
    """A node of an executable operator tree.

    ``kind`` is one of ``"operation"`` (apply ``operation`` to the children),
    ``"base"`` (scan nothing — the stored table, consumed by its parent scan
    operation), ``"materialize"`` (compute the child once, store it), and
    ``"reuse"`` (read a previously materialized result).
    """

    kind: str
    equivalence: EquivalenceNode
    operation: Optional[OperationNode] = None
    children: List["PlanNode"] = field(default_factory=list)

    def describe(self, depth: int = 0) -> str:
        indent = "  " * depth
        if self.kind == "base":
            header = f"{indent}table({self.equivalence.label})"
        elif self.kind == "reuse":
            header = f"{indent}reuse({self.equivalence.label})"
        elif self.kind == "materialize":
            header = f"{indent}materialize({self.equivalence.label})"
        else:
            header = f"{indent}{self.operation.operator.describe()}"
        lines = [header]
        for child in self.children:
            lines.append(child.describe(depth + 1))
        return "\n".join(lines)


def extract_plan(plan: ConsolidatedPlan, root: Optional[EquivalenceNode] = None) -> PlanNode:
    """Build the executable operator tree for *root* (default: the pseudo-root).

    Materialized nodes are computed at their first use (wrapped in a
    ``materialize`` node) and read back (``reuse``) afterwards.
    """
    root = root or plan.dag.root
    produced: Set[int] = set()

    def build(node: EquivalenceNode) -> PlanNode:
        if node.is_base:
            return PlanNode("base", node)
        if node.id in plan.materialized:
            if node.id in produced:
                return PlanNode("reuse", node)
            produced.add(node.id)
            inner = _operation_node(node)
            return PlanNode("materialize", node, children=[inner])
        return _operation_node(node)

    def _operation_node(node: EquivalenceNode) -> PlanNode:
        operation = plan.operation_for(node)
        children = [build(child) for child in operation.children]
        return PlanNode("operation", node, operation, children)

    return build(root)
