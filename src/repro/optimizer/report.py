"""Optimization results and instrumentation counters.

The performance study of the paper reports, per algorithm and workload:
estimated plan cost, optimization time, and — for the greedy heuristic — the
number of cost propagations across equivalence nodes and the number of benefit
(cost) recomputations initiated (Figure 10, Section 6.3).  Those quantities
are first-class fields here so that the benchmark harness can regenerate the
paper's tables and figures directly from :class:`OptimizationResult` objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.optimizer.plans import ConsolidatedPlan


class BudgetExceeded(Exception):
    """Raised by a cooperative deadline check inside an optimization loop.

    Only Volcano-RU raises it (its per-query passes have no usable partial
    state); greedy instead keeps its best-so-far materialized set and returns
    an anytime result.  The exception never escapes the public API — the
    degradation ladder in :mod:`repro.service.resilience` catches it and
    falls back to a cheaper algorithm.
    """


class DegradationLevel(enum.IntEnum):
    """How far down the degradation ladder a budgeted optimize call fell.

    Ordered best-to-worst; comparisons (``level > FULL``) are meaningful.
    """

    #: The requested algorithm ran to completion within the budget.
    FULL = 0
    #: Greedy was interrupted mid-search; the result is the best-so-far
    #: materialized set (byte-identical to a greedy run capped at the number
    #: of materializations reached).
    ANYTIME_GREEDY = 1
    #: Fell back to the Volcano-SH one-pass heuristic.
    VOLCANO_SH = 2
    #: Fell back to no-sharing per-query Volcano plans (the unconditional
    #: final rung: always affordable, always valid).
    NO_SHARING = 3

    @property
    def label(self) -> str:
        return _LEVEL_LABELS[self]


_LEVEL_LABELS: Dict["DegradationLevel", str] = {
    DegradationLevel.FULL: "full",
    DegradationLevel.ANYTIME_GREEDY: "anytime-greedy",
    DegradationLevel.VOLCANO_SH: "volcano-sh",
    DegradationLevel.NO_SHARING: "no-sharing",
}


@dataclass(frozen=True)
class DegradationReport:
    """What a deadline-budgeted optimize call actually delivered.

    Attached to :attr:`OptimizationResult.degradation` by the degradation
    ladder (:func:`repro.service.resilience.run_ladder`); ``None`` on
    unbudgeted calls, whose behavior is bit-identical to pre-budget code.
    """

    level: DegradationLevel
    #: Algorithm the caller asked for (``Algorithm.value`` string).
    requested: str
    #: Algorithm that actually produced the plan.
    served: str
    budget_ms: float
    grace_ms: float
    elapsed_ms: float
    #: Whether the deadline had expired by the time the result was ready.
    expired: bool

    @property
    def degraded(self) -> bool:
        return self.level is not DegradationLevel.FULL


@dataclass
class OptimizationResult:
    """The outcome of running one optimization algorithm on one DAG."""

    algorithm: str
    plan: ConsolidatedPlan
    cost: float
    optimization_time: float = 0.0
    #: Number of equivalence nodes / operation nodes in the DAG searched.
    dag_equivalence_nodes: int = 0
    dag_operation_nodes: int = 0
    #: Number of sharable equivalence nodes (greedy candidates).
    sharable_nodes: int = 0
    #: Counters (cost propagations, benefit recomputations, bestcost calls...).
    counters: Dict[str, int] = field(default_factory=dict)
    #: Filled by deadline-budgeted calls only (see :class:`DegradationReport`).
    degradation: Optional[DegradationReport] = None

    @property
    def materialized_count(self) -> int:
        return len(self.plan.materialized)

    def materialized_labels(self) -> List[str]:
        return self.plan.materialized_labels()

    def summary(self) -> str:
        """One-line summary used by the examples and the benchmark harness."""
        return (
            f"{self.algorithm:<12s} cost={self.cost:12.2f}s "
            f"materialized={self.materialized_count:3d} "
            f"time={self.optimization_time * 1000:9.1f}ms"
        )
