"""Optimization results and instrumentation counters.

The performance study of the paper reports, per algorithm and workload:
estimated plan cost, optimization time, and — for the greedy heuristic — the
number of cost propagations across equivalence nodes and the number of benefit
(cost) recomputations initiated (Figure 10, Section 6.3).  Those quantities
are first-class fields here so that the benchmark harness can regenerate the
paper's tables and figures directly from :class:`OptimizationResult` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.optimizer.plans import ConsolidatedPlan


@dataclass
class OptimizationResult:
    """The outcome of running one optimization algorithm on one DAG."""

    algorithm: str
    plan: ConsolidatedPlan
    cost: float
    optimization_time: float = 0.0
    #: Number of equivalence nodes / operation nodes in the DAG searched.
    dag_equivalence_nodes: int = 0
    dag_operation_nodes: int = 0
    #: Number of sharable equivalence nodes (greedy candidates).
    sharable_nodes: int = 0
    #: Counters (cost propagations, benefit recomputations, bestcost calls...).
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def materialized_count(self) -> int:
        return len(self.plan.materialized)

    def materialized_labels(self) -> List[str]:
        return self.plan.materialized_labels()

    def summary(self) -> str:
        """One-line summary used by the examples and the benchmark harness."""
        return (
            f"{self.algorithm:<12s} cost={self.cost:12.2f}s "
            f"materialized={self.materialized_count:3d} "
            f"time={self.optimization_time * 1000:9.1f}ms"
        )
