"""The baseline: plain Volcano optimization of the combined DAG.

Each query is optimized independently of the others (no materialization, no
sharing); the consolidated best plan for the pseudo-root is simply the
combination of the individually best plans.  This is the "Volcano" bar in
every figure of the paper's evaluation and the starting point of Volcano-SH.
"""

from __future__ import annotations

import time
from typing import Optional, Set

from repro.dag.nodes import Dag
from repro.optimizer.costing import best_operations, compute_node_costs, total_cost
from repro.optimizer.plans import ConsolidatedPlan
from repro.optimizer.report import OptimizationResult


def consolidated_best_plan(dag: Dag, materialized: Optional[Set[int]] = None) -> ConsolidatedPlan:
    """The consolidated Volcano best plan given a set of materialized nodes."""
    materialized = materialized or set()
    costs = compute_node_costs(dag, materialized)
    choices = best_operations(dag, costs, materialized)
    return ConsolidatedPlan(dag, choices, set(materialized))


def optimize_volcano(dag: Dag) -> OptimizationResult:
    """Run plain Volcano optimization (no multi-query sharing)."""
    start = time.perf_counter()
    costs = compute_node_costs(dag)
    choices = best_operations(dag, costs)
    plan = ConsolidatedPlan(dag, choices, set())
    cost = total_cost(dag, costs)
    elapsed = time.perf_counter() - start
    return OptimizationResult(
        algorithm="Volcano",
        plan=plan,
        cost=cost,
        optimization_time=elapsed,
        dag_equivalence_nodes=dag.num_equivalence_nodes,
        dag_operation_nodes=dag.num_operation_nodes,
    )
