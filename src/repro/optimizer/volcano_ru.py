"""The Volcano-RU heuristic (Section 3.3, Figure 3 of the paper).

Volcano-RU optimizes the queries of the batch in sequence.  After optimizing
query ``Q_i`` it registers the equivalence nodes of ``Q_i``'s best plan as
candidates for reuse (set ``N``): a node is added if it would be worth
materializing *if it were used once more*.  Later queries are optimized with
the nodes of ``N`` assumed materialized, so they can deliberately choose plans
that reuse earlier work (the ``(R ⋈ S) ⋈ T`` choice of Example 1.1).

The combined plan is then handed to Volcano-SH, which makes the final
materialization decisions.  Because the result depends on the query order,
the algorithm is run on the given order and on its reverse, and the cheaper
outcome is returned — exactly the variant evaluated in the paper.

The per-query re-costing (one ``compute_node_costs``/``best_operations``
round per query per order) runs on the shared
:class:`~repro.optimizer.engine.CostEngine` snapshot of the DAG, as does the
final Volcano-SH pass, so no pass re-sorts the DAG or rebuilds id maps.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dag.nodes import Dag, OperationNode
from repro.optimizer.costing import best_operations, compute_node_costs
from repro.optimizer.plans import ConsolidatedPlan
from repro.optimizer.report import OptimizationResult
from repro.optimizer.volcano_sh import volcano_sh_pass


def _run_order(
    dag: Dag, order: Sequence[int]
) -> Tuple[float, Set[int], Dict[int, OperationNode]]:
    """Run one pass of Volcano-RU over the queries in the given order."""
    reuse_candidates: Set[int] = set()
    use_counts: Dict[int, int] = defaultdict(int)
    combined_choices: Dict[int, OperationNode] = {}

    for index in order:
        root = dag.query_roots[index]
        costs = compute_node_costs(dag, reuse_candidates)
        choices = best_operations(dag, costs, reuse_candidates)
        query_plan = ConsolidatedPlan(dag, choices, set(reuse_candidates))
        for node in query_plan.reachable([root]):
            if node.is_base:
                continue
            combined_choices.setdefault(node.id, choices[node.id])
            use_counts[node.id] += 1
            count = use_counts[node.id]
            cost = costs[node.id]
            # Worth materializing if it is used just once more?
            if cost + node.mat_cost + count * node.reuse_cost < (count + 1) * cost:
                reuse_candidates.add(node.id)

    root_node = dag.root
    combined_choices[root_node.id] = root_node.operations[0]
    combined = ConsolidatedPlan(dag, combined_choices, set())
    materialized, choices, total = volcano_sh_pass(dag, combined)
    return total, materialized, choices


def optimize_volcano_ru(dag: Dag, try_reverse: bool = True) -> OptimizationResult:
    """Run Volcano-RU on the DAG (forward and reverse query order)."""
    start = time.perf_counter()
    forward = list(range(len(dag.query_roots)))
    orders = [forward]
    if try_reverse and len(forward) > 1:
        orders.append(list(reversed(forward)))

    best: Optional[Tuple[float, Set[int], Dict[int, OperationNode]]] = None
    for order in orders:
        outcome = _run_order(dag, order)
        if best is None or outcome[0] < best[0]:
            best = outcome
    total, materialized, choices = best
    elapsed = time.perf_counter() - start

    plan = ConsolidatedPlan(dag, choices, materialized)
    return OptimizationResult(
        algorithm="Volcano-RU",
        plan=plan,
        cost=total,
        optimization_time=elapsed,
        dag_equivalence_nodes=dag.num_equivalence_nodes,
        dag_operation_nodes=dag.num_operation_nodes,
        counters={"materialized": len(materialized), "orders_tried": len(orders)},
    )
