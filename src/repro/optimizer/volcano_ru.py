"""The Volcano-RU heuristic (Section 3.3, Figure 3 of the paper).

Volcano-RU optimizes the queries of the batch in sequence.  After optimizing
query ``Q_i`` it registers the equivalence nodes of ``Q_i``'s best plan as
candidates for reuse (set ``N``): a node is added if it would be worth
materializing *if it were used once more*.  Later queries are optimized with
the nodes of ``N`` assumed materialized, so they can deliberately choose plans
that reuse earlier work (the ``(R ⋈ S) ⋈ T`` choice of Example 1.1).

The combined plan is then handed to Volcano-SH, which makes the final
materialization decisions.  Because the result depends on the query order,
the algorithm is run on the given order and on its reverse, and the cheaper
outcome is returned — exactly the variant evaluated in the paper.

**Incremental per-query costing.**  The reference formulation re-runs a full
``compute_node_costs``/``best_operations`` round per query per order —
O(queries × DAG) even though each query only adds a handful of reuse
candidates.  :func:`_run_order` instead keeps one
:class:`~repro.optimizer.engine.IncrementalCostState` per order on the shared
:class:`~repro.optimizer.engine.CostEngine` snapshot (both orders reuse the
same snapshot):

* the per-query cost table is simply the state's dense cost array, already
  maintained under the reuse candidates registered so far;
* the argmin operation choices are computed lazily, only for the nodes
  actually reachable in the current query's best plan, during the plan walk
  itself (same strict ``<`` / first-wins tie-breaking as
  ``CostEngine.best_operations``);
* after the walk, the query's newly registered reuse candidates are toggled
  into the state, which propagates cost changes to their ancestors only.

Within one query the reference adds candidates to ``N`` mid-scan but costs
and choices were computed before the scan, so deferring the toggles to the
end of the query is equivalent; across queries the toggled state reproduces
``compute_node_costs(dag, N)`` exactly (the incremental propagation
recomputes the same minima from the same inputs).  The from-scratch
formulation is kept as :func:`_run_order_reference` and the differential test
suite asserts exact cost equality between the two on randomized workloads.

The final materialization decisions come from the dense
:func:`~repro.optimizer.volcano_sh.volcano_sh_pass`, which runs as index
loops over the same engine snapshot — the pass executes once per query order
(so twice per optimization) and used to be the largest remaining
object-graph term in Volcano-RU wall time.  The reference order pass pairs
with the object-graph ``_volcano_sh_reference`` instead, keeping the oracle
side fully independent of the dense code paths.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dag.nodes import Dag, OperationNode
from repro.optimizer.costing import best_operations, compute_node_costs
from repro.optimizer.engine import INFINITE_COST, IncrementalCostState, get_engine
from repro.optimizer.plans import ConsolidatedPlan
from repro.optimizer.report import BudgetExceeded, OptimizationResult
from repro.optimizer.volcano_sh import _volcano_sh_reference, volcano_sh_pass


def _run_order(
    dag: Dag, order: Sequence[int], deadline: Optional[float] = None
) -> Tuple[float, Set[int], Dict[int, OperationNode]]:
    """Run one pass of Volcano-RU over the queries in the given order,
    maintaining the per-query cost table incrementally.

    *deadline* (absolute ``perf_counter`` seconds) is checked once per query
    — the pass's natural iteration boundary.  On expiry the pass raises
    :class:`~repro.optimizer.report.BudgetExceeded`: unlike greedy there is
    no best-so-far plan to salvage (reuse candidates registered for a prefix
    of the queries are not a valid combined plan), so the degradation ladder
    discards the pass and falls back.  ``deadline=None`` reads no clock.
    """
    engine = get_engine(dag)
    # epsilon=0.0: every nonzero delta propagates, so the state's cost table
    # stays *bit-identical* to ``compute_node_costs(dag, N)`` after each
    # toggle — near-tie argmin choices and the worth-materializing threshold
    # then match the from-scratch reference exactly.
    state = IncrementalCostState(dag, epsilon=0.0)
    costs = state._costs
    effective = state._effective
    op_table = engine.op_table
    op_specs = engine.op_specs
    op_nodes = engine.op_nodes
    is_base = engine.is_base
    mat_cost = engine.mat_cost
    reuse_cost = engine.reuse_cost

    reuse_candidates = state.materialized
    use_counts: Dict[int, int] = defaultdict(int)
    combined_choices: Dict[int, OperationNode] = {}

    for index in order:
        if deadline is not None and time.perf_counter() >= deadline:
            raise BudgetExceeded
        root = dag.query_roots[index]
        # Walk the query's best plan top-down, choosing the argmin operation
        # per node on the fly from the incrementally maintained cost table
        # (``effective`` already folds in reuse of the registered candidates).
        new_candidates: List[int] = []
        stack = [root.id]
        seen: Set[int] = set()
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            if is_base[node_id]:
                continue
            operations = op_specs[node_id]
            if operations is None:
                continue
            best = INFINITE_COST
            best_index = 0
            for op_index, entry in enumerate(operations):
                arity = len(entry)
                if arity == 5:
                    c1, m1, c2, m2, local_cost = entry
                    candidate = local_cost + m1 * effective[c1] + m2 * effective[c2]
                elif arity == 3:
                    c1, m1, local_cost = entry
                    candidate = local_cost + m1 * effective[c1]
                else:
                    children, candidate = entry
                    for child_id, multiplier in children:
                        candidate += multiplier * effective[child_id]
                if candidate < best:
                    best = candidate
                    best_index = op_index
            operation = op_nodes[node_id][best_index]
            if node_id not in combined_choices:
                combined_choices[node_id] = operation
            use_counts[node_id] += 1
            count = use_counts[node_id]
            cost = costs[node_id]
            # Worth materializing if it is used just once more?
            if node_id not in reuse_candidates and (
                cost + mat_cost[node_id] + count * reuse_cost[node_id] < (count + 1) * cost
            ):
                new_candidates.append(node_id)
            for child_id, _multiplier in op_table[node_id][best_index][1]:
                stack.append(child_id)
        # Mid-scan registrations cannot influence the scan that made them
        # (costs/choices predate the scan), so toggle them in one batch now.
        for node_id in new_candidates:
            state.toggle_id(node_id, add=True)

    root_node = dag.root
    combined_choices[root_node.id] = root_node.operations[0]
    combined = ConsolidatedPlan(dag, combined_choices, set())
    materialized, choices, total = volcano_sh_pass(dag, combined)
    return total, materialized, choices


def _run_order_reference(
    dag: Dag, order: Sequence[int]
) -> Tuple[float, Set[int], Dict[int, OperationNode]]:
    """The from-scratch reference formulation of one Volcano-RU pass.

    Re-costs the whole DAG per query (one ``compute_node_costs`` /
    ``best_operations`` round each) and hands the combined plan to the
    object-graph :func:`~repro.optimizer.volcano_sh._volcano_sh_reference`
    pass, so the oracle shares **no** dense code path with
    :func:`_run_order`.  The differential suite asserts exact agreement
    between the two.
    """
    reuse_candidates: Set[int] = set()
    use_counts: Dict[int, int] = defaultdict(int)
    combined_choices: Dict[int, OperationNode] = {}

    for index in order:
        root = dag.query_roots[index]
        costs = compute_node_costs(dag, reuse_candidates)
        choices = best_operations(dag, costs, reuse_candidates)
        query_plan = ConsolidatedPlan(dag, choices, set(reuse_candidates))
        for node in query_plan.reachable([root]):
            if node.is_base:
                continue
            combined_choices.setdefault(node.id, choices[node.id])
            use_counts[node.id] += 1
            count = use_counts[node.id]
            cost = costs[node.id]
            # Worth materializing if it is used just once more?
            if cost + node.mat_cost + count * node.reuse_cost < (count + 1) * cost:
                reuse_candidates.add(node.id)

    root_node = dag.root
    combined_choices[root_node.id] = root_node.operations[0]
    combined = ConsolidatedPlan(dag, combined_choices, set())
    materialized, choices, total = _volcano_sh_reference(dag, combined)
    return total, materialized, choices


def optimize_volcano_ru(
    dag: Dag, try_reverse: bool = True, deadline: Optional[float] = None
) -> OptimizationResult:
    """Run Volcano-RU on the DAG (forward and reverse query order).

    With a *deadline*, expiry anywhere — mid-pass or between the two order
    passes — raises :class:`~repro.optimizer.report.BudgetExceeded` (a
    partially explored order set would silently change which plan wins, so a
    budgeted RU is all-or-nothing; the degradation ladder catches it).
    """
    start = time.perf_counter()
    forward = list(range(len(dag.query_roots)))
    orders = [forward]
    if try_reverse and len(forward) > 1:
        orders.append(list(reversed(forward)))

    best: Optional[Tuple[float, Set[int], Dict[int, OperationNode]]] = None
    for order in orders:
        if deadline is not None and time.perf_counter() >= deadline:
            raise BudgetExceeded
        outcome = _run_order(dag, order, deadline)
        if best is None or outcome[0] < best[0]:
            best = outcome
    total, materialized, choices = best
    elapsed = time.perf_counter() - start

    plan = ConsolidatedPlan(dag, choices, materialized)
    return OptimizationResult(
        algorithm="Volcano-RU",
        plan=plan,
        cost=total,
        optimization_time=elapsed,
        dag_equivalence_nodes=dag.num_equivalence_nodes,
        dag_operation_nodes=dag.num_operation_nodes,
        counters={"materialized": len(materialized), "orders_tried": len(orders)},
    )
