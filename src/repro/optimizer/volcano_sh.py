"""The Volcano-SH heuristic (Section 3.2, Figure 2 of the paper).

Volcano-SH starts from the consolidated best plan produced by plain Volcano
optimization and decides, bottom-up and in a cost-based way, which of the
plan's shared nodes to materialize.  The plan structure (join orders,
algorithms) is *not* changed — only materialization decisions are added —
which is what makes the heuristic almost free compared to Volcano.

Key elements reproduced from the paper:

* the conservative materialization test
  ``matcost(e)/(numuses⁻(e)-1) + reusecost(e) < cost(e)`` using the
  ``numuses⁻`` underestimate (number of references to the node in the
  consolidated plan);
* the pre-pass that swaps applicable subsumption derivations into the plan,
  and the final undo of those whose shared source was not materialized;
* the special test for nodes introduced by subsumption derivations, which are
  only worth materializing if they pay for themselves through the savings
  they offer their parents;
* the final accounting ``cost(root) + Σ_{m∈M} (cost(m) + matcost(m))``.

**Dense decision pass.**  :func:`volcano_sh_pass` runs entirely on the shared
:class:`~repro.optimizer.engine.CostEngine` snapshot: the consolidated plan's
choices are copied once into flat id-indexed arrays (``choice_op`` /
``choice_entry``), and reachability, the ``numuses⁻`` reference counts, the
subsumption-swap pre-pass, the bottom-up materialization loop, and the final
undo/accounting are all index loops over ``op_entry_by_op_id`` /
``op_specs`` / ``parent_op_ids`` with no ``EquivalenceNode`` /
``OperationNode`` attribute access on the hot path.  This matters because
Volcano-RU runs the pass once per query order (twice per optimization), and
the pass used to be the largest remaining object-graph walk in its profile.
The previous object-graph formulation is retained verbatim as
:func:`_volcano_sh_reference`; the differential suite asserts byte-identical
materialized sets, operation choices, and costs between the two on every
seeded workload and on randomized generator DAGs (including DAGs with
subsumption derivations).
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, NoReturn, Optional, Set, Tuple

from repro.dag.nodes import Dag, EquivalenceNode, OperationNode
from repro.optimizer.costing import INFINITE_COST, compute_node_costs
from repro.optimizer.engine import CostEngine, CostTableView, get_engine
from repro.optimizer.plans import ConsolidatedPlan, PlanError
from repro.optimizer.report import OptimizationResult
from repro.optimizer.volcano import consolidated_best_plan


def plan_node_costs(
    dag: Dag,
    choices: Dict[int, OperationNode],
    materialized: Set[int],
) -> Mapping[int, float]:
    """Cost of every equivalence node when computed via its *chosen* operation.

    Unlike :func:`repro.optimizer.costing.compute_node_costs` this does not
    minimize over alternatives — Volcano-SH keeps the Volcano plan structure.
    Nodes without a choice (not part of the plan) fall back to the minimum
    over their operations so that subsumption children swapped into the plan
    still get a cost.  The pass runs over the shared
    :class:`~repro.optimizer.engine.CostEngine` snapshot — dense cost and
    effective-cost lists over the flat operation entries, with one
    materialization-membership test per node instead of one per child read —
    and returns a dict-compatible view of the dense table.
    """
    engine = get_engine(dag)
    op_entries = engine.op_entry_by_op_id
    choice_entry: List[Optional[Tuple[float, Tuple[Tuple[int, float], ...]]]] = (
        [None] * engine.num_nodes
    )
    for node_id, operation in choices.items():
        # ``best_operations`` stores None when every alternative is infinite;
        # such nodes fall back to the argmin like any node without a choice.
        if operation is not None:
            choice_entry[node_id] = op_entries[operation.id]
    return CostTableView(_plan_costs(engine, choice_entry, materialized))


def _plan_costs(
    engine: CostEngine,
    choice_entry: List[Optional[Tuple[float, Tuple[Tuple[int, float], ...]]]],
    materialized: Set[int],
    reachable: Optional[bytearray] = None,
) -> List[float]:
    """Dense kernel behind :func:`plan_node_costs`: per-node cost through the
    chosen operation entry (argmin over ``op_specs`` where no entry exists).

    When *reachable* flags are supplied (the Volcano-SH pass does), the sweep
    is restricted to the plan's reachable cone: unreachable nodes are skipped
    outright (their table slots stay ``0.0`` and the pass never reads them),
    and a reachable non-base node without a chosen entry raises
    :class:`~repro.optimizer.plans.PlanError` instead of silently falling
    back to the argmin — a consolidated plan must cover its reachable cone
    (see :func:`_require_choice`).  The restriction is exact: a reachable
    node's chosen entry only references reachable children (the reachability
    walk descends through chosen entries), so every ``effective`` slot the
    cone sweep reads was written by it.  Without *reachable* flags the whole
    DAG is priced, argmin fallback included — that full pricing remains the
    contract of the public :func:`plan_node_costs` (subsumption children
    swapped into the plan still need a cost).
    """
    reuse_cost = engine.reuse_cost
    is_base = engine.is_base
    op_specs = engine.op_specs
    costs: List[float] = [0.0] * engine.num_nodes
    # C(e) = min(cost(e), reusecost(e)) for materialized nodes.
    effective: List[float] = costs if not materialized else [0.0] * engine.num_nodes
    distinct = effective is not costs
    for node_id in engine.topo_order:
        if reachable is not None and not reachable[node_id]:
            continue
        if is_base[node_id]:
            cost = 0.0
        else:
            entry = choice_entry[node_id]
            if entry is None and reachable is not None and reachable[node_id]:
                _require_choice(engine, node_id)
            if entry is not None:
                cost, children = entry
                for child_id, multiplier in children:
                    cost += multiplier * effective[child_id]
            else:
                operations = op_specs[node_id]
                cost = INFINITE_COST
                if operations is not None:
                    for spec in operations:
                        arity = len(spec)
                        if arity == 5:
                            c1, m1, c2, m2, local_cost = spec
                            candidate = (
                                local_cost + m1 * effective[c1] + m2 * effective[c2]
                            )
                        elif arity == 3:
                            c1, m1, local_cost = spec
                            candidate = local_cost + m1 * effective[c1]
                        else:
                            children, candidate = spec
                            for child_id, multiplier in children:
                                candidate += multiplier * effective[child_id]
                        if candidate < cost:
                            cost = candidate
            costs[node_id] = cost
        if distinct:
            if node_id in materialized:
                reuse = reuse_cost[node_id]
                effective[node_id] = reuse if reuse < cost else cost
            else:
                effective[node_id] = cost
    return costs


def _require_choice(engine: CostEngine, node_id: int) -> NoReturn:
    """Raise the reachable-cone invariant violation for *node_id*.

    A consolidated plan assigns a chosen operation to every non-base node
    (:func:`~repro.optimizer.costing.best_operations`), and the reachability
    walk only descends through chosen entries — so a *reachable* non-base
    node without an entry means the plan is malformed (hand-edited choices,
    or a node whose every alternative costed infinite sitting inside the
    plan cone).  This used to be a silent defensive argmin fallback, which
    would price such a node differently from the plan that claimed to
    contain it; ROADMAP flags the checked invariant as the prerequisite for
    sweeping the decision pass over the reachable cone only.
    """
    raise PlanError(
        f"Volcano-SH invariant violated: reachable non-base node {node_id} has "
        "no chosen operation (a consolidated plan must cover its reachable cone)"
    )


def volcano_sh_pass(
    dag: Dag, plan: ConsolidatedPlan
) -> Tuple[Set[int], Dict[int, OperationNode], float]:
    """Run the Volcano-SH materialization pass over a consolidated plan.

    Returns the set of materialized node ids, the (possibly pre-pass adjusted)
    operation choices, and the resulting total cost.  The decisions run on
    flat :class:`~repro.optimizer.engine.CostEngine` arrays (see the module
    docstring) and are byte-identical to :func:`_volcano_sh_reference`.
    """
    engine = get_engine(dag)
    num_nodes = engine.num_nodes
    root_id = engine.root_id
    is_base = engine.is_base
    mat_cost = engine.mat_cost
    reuse_cost = engine.reuse_cost
    op_entries = engine.op_entry_by_op_id
    op_ids = engine.op_ids
    op_is_subsumption = engine.op_is_subsumption
    op_owner = engine.op_owner
    parent_op_ids = engine.parent_op_ids
    created_by_subsumption = engine.created_by_subsumption

    # -- snapshot: plan choices -> flat arrays (the only object traversal) --
    choice_op: List[int] = [-1] * num_nodes
    choice_entry: List[Optional[Tuple[float, Tuple[Tuple[int, float], ...]]]] = (
        [None] * num_nodes
    )
    for node_id, operation in plan.choices.items():
        # None choices (every alternative infinite) stay -1: the node is
        # treated exactly like one without a chosen operation, as before.
        if operation is None:
            continue
        op_id = operation.id
        choice_op[node_id] = op_id
        choice_entry[node_id] = op_entries[op_id]

    reachable = engine.reachable_flags(choice_entry)
    baseline_costs = _plan_costs(engine, choice_entry, set(), reachable)

    # Pre-pass: swap applicable subsumption derivations into the plan.  A swap
    # is only made if, assuming its source does get materialized, the node is
    # no more expensive to obtain than through its original derivation —
    # otherwise the swap could only hurt and would be undone anyway.
    swapped: Dict[int, int] = {}
    for node_id in range(num_nodes):
        if not reachable[node_id] or is_base[node_id]:
            continue
        current = choice_op[node_id]
        if current < 0 or op_is_subsumption[current]:
            continue
        # First subsumption derivation whose source is already in the plan.
        alternative = -1
        for op_id in op_ids[node_id]:
            if not op_is_subsumption[op_id]:
                continue
            for child_id, _multiplier in op_entries[op_id][1]:
                if not reachable[child_id] and not is_base[child_id]:
                    break
            else:
                alternative = op_id
                break
        if alternative < 0:
            continue
        local_cost, children = op_entries[alternative]
        via_materialized = local_cost + sum(
            multiplier * reuse_cost[child_id] for child_id, multiplier in children
        )
        if via_materialized <= baseline_costs[node_id]:
            swapped[node_id] = current
            choice_op[node_id] = alternative
            choice_entry[node_id] = op_entries[alternative]

    if swapped:
        reachable = engine.reachable_flags(choice_entry)
    # numuses⁻: references to each node within the reachable plan (use
    # multipliers of nested-query invocations count as genuine uses).
    numuses: List[int] = [0] * num_nodes
    for node_id in range(num_nodes):
        if not reachable[node_id] or is_base[node_id]:
            continue
        entry = choice_entry[node_id]
        if entry is None:
            continue
        for child_id, multiplier in entry[1]:
            numuses[child_id] += max(1, int(round(multiplier)))

    # Fallback cost table (min over alternatives, nothing materialized) for
    # children that are not part of the plan, e.g. when pricing the regular
    # alternative of a node whose plan derivation is a subsumption derivation.
    # Needed only by the subsumption special test, so computed on first use.
    fallback_costs: Optional[List[float]] = None

    materialized: Set[int] = set()
    mat_flags = bytearray(num_nodes)
    costs: List[float] = [0.0] * num_nodes
    has_cost = bytearray(num_nodes)
    for node_id in engine.topo_order:
        if not reachable[node_id]:
            continue
        if is_base[node_id]:
            has_cost[node_id] = 1
            continue
        entry = choice_entry[node_id]
        if entry is None:
            # Checked invariant (formerly a silent argmin fallback): every
            # reachable non-base node must carry a chosen operation.
            _require_choice(engine, node_id)
        local_cost, children = entry
        cost = local_cost
        for child_id, multiplier in children:
            child_cost = costs[child_id]
            if mat_flags[child_id]:
                reuse = reuse_cost[child_id]
                if reuse < child_cost:
                    child_cost = reuse
            cost += multiplier * child_cost
        costs[node_id] = cost
        has_cost[node_id] = 1

        uses = numuses[node_id]
        if uses <= 1:
            continue
        if not created_by_subsumption[node_id]:
            if mat_cost[node_id] / (uses - 1) + reuse_cost[node_id] < cost:
                materialized.add(node_id)
                mat_flags[node_id] = 1
        else:
            # Nodes introduced by subsumption derivations must pay for
            # themselves through the savings they offer their parents.
            if fallback_costs is None:
                fallback_costs = engine.baseline_costs()
            lhs = cost + mat_cost[node_id] + reuse_cost[node_id] * (uses - 1)
            savings = 0.0
            for parent_op_id in parent_op_ids[node_id]:
                parent_id = op_owner[parent_op_id]
                if choice_op[parent_id] != parent_op_id:
                    continue
                # Cheapest regular (non-subsumption) alternative of the parent.
                original = INFINITE_COST
                for op_id in op_ids[parent_id]:
                    if op_is_subsumption[op_id]:
                        continue
                    op_local, op_children = op_entries[op_id]
                    candidate = op_local
                    for child_id, multiplier in op_children:
                        child_cost = (
                            costs[child_id]
                            if has_cost[child_id]
                            else fallback_costs[child_id]
                        )
                        if mat_flags[child_id]:
                            reuse = reuse_cost[child_id]
                            if reuse < child_cost:
                                child_cost = reuse
                        candidate += multiplier * child_cost
                    if candidate < original:
                        original = candidate
                parent_local, parent_children = op_entries[parent_op_id]
                via_node = parent_local
                for child_id, multiplier in parent_children:
                    if child_id == node_id:
                        child_cost = reuse_cost[node_id]
                    else:
                        child_cost = costs[child_id] if has_cost[child_id] else 0.0
                    via_node += multiplier * child_cost
                if original < INFINITE_COST:
                    savings += max(0.0, original - via_node)
            if lhs < savings:
                materialized.add(node_id)
                mat_flags[node_id] = 1

    # Undo subsumption derivations whose shared source was not materialized.
    undone = False
    for node_id, original in swapped.items():
        chosen = choice_op[node_id]
        if op_is_subsumption[chosen] and not all(
            mat_flags[child_id] or is_base[child_id]
            for child_id, _multiplier in op_entries[chosen][1]
        ):
            choice_op[node_id] = original
            choice_entry[node_id] = op_entries[original]
            undone = True

    if undone:
        reachable = engine.reachable_flags(choice_entry)
    materialized = {node_id for node_id in materialized if reachable[node_id]}
    final_costs = _plan_costs(engine, choice_entry, materialized, reachable)
    total = final_costs[root_id]
    for node_id in sorted(materialized):
        total += final_costs[node_id] + mat_cost[node_id]

    # Volcano-SH only adds sharing on top of the Volcano plan; if the
    # heuristic decisions (made with the numuses underestimate) did not pay
    # off, fall back to the plain Volcano plan rather than return a worse one.
    baseline_total = baseline_costs[root_id]
    if total > baseline_total:
        return set(), dict(plan.choices), baseline_total
    choices = dict(plan.choices)
    op_node_by_id = engine.op_node_by_id
    for node_id in swapped:
        choices[node_id] = op_node_by_id[choice_op[node_id]]
    return materialized, choices, total


# ---------------------------------------------------------------------------
# Reference implementation (object-graph walk), kept as the oracle
# ---------------------------------------------------------------------------

def _subsumption_alternative(
    node: EquivalenceNode, reachable_ids: Set[int]
) -> Optional[OperationNode]:
    """A subsumption derivation of *node* whose source is already in the plan."""
    for operation in node.operations:
        if not operation.is_subsumption:
            continue
        if all(child.id in reachable_ids or child.is_base for child in operation.children):
            return operation
    return None


def _cheapest_regular_operation(
    node: EquivalenceNode,
    costs: Mapping[int, float],
    fallback_costs: Mapping[int, float],
    materialized: Set[int],
) -> float:
    best = INFINITE_COST
    for operation in node.operations:
        if operation.is_subsumption:
            continue
        cost = operation.local_cost
        for child, multiplier in zip(operation.children, operation.child_multipliers):
            child_cost = costs.get(child.id, fallback_costs.get(child.id, INFINITE_COST))
            if child.id in materialized:
                child_cost = min(child_cost, child.reuse_cost)
            cost += multiplier * child_cost
        best = min(best, cost)
    return best


def _volcano_sh_reference(
    dag: Dag, plan: ConsolidatedPlan
) -> Tuple[Set[int], Dict[int, OperationNode], float]:
    """The object-graph formulation of the Volcano-SH pass.

    Kept as the correctness oracle for the dense :func:`volcano_sh_pass`;
    the differential suite asserts byte-identical materialized sets, choices,
    and costs between the two.
    """
    choices = dict(plan.choices)
    reachable = plan.reachable()
    reachable_ids = {node.id for node in reachable}
    baseline_costs = plan_node_costs(dag, plan.choices, set())

    # Pre-pass: swap applicable subsumption derivations into the plan.  A swap
    # is only made if, assuming its source does get materialized, the node is
    # no more expensive to obtain than through its original derivation —
    # otherwise the swap could only hurt and would be undone anyway.
    swapped: Dict[int, OperationNode] = {}
    for node in reachable:
        if node.is_base or node.id not in choices:
            continue
        current = choices[node.id]
        if current.is_subsumption:
            continue
        alternative = _subsumption_alternative(node, reachable_ids)
        if alternative is None:
            continue
        via_materialized = alternative.local_cost + sum(
            multiplier * child.reuse_cost
            for child, multiplier in zip(alternative.children, alternative.child_multipliers)
        )
        if via_materialized <= baseline_costs.get(node.id, INFINITE_COST):
            swapped[node.id] = current
            choices[node.id] = alternative

    working = ConsolidatedPlan(dag, choices, set())
    reachable = working.reachable()
    reachable_ids = {node.id for node in reachable}
    numuses = working.parent_counts()
    # Fallback cost table (min over alternatives, nothing materialized) for
    # children that are not part of the plan, e.g. when pricing the regular
    # alternative of a node whose plan derivation is a subsumption derivation.
    fallback_costs = compute_node_costs(dag)

    materialized: Set[int] = set()
    costs: Dict[int, float] = {}
    for node in sorted(reachable, key=lambda n: n.topo_number):
        if node.is_base:
            costs[node.id] = 0.0
            continue
        operation = choices.get(node.id)
        if operation is None:
            # Not actually part of the plan (defensive); use cheapest op.
            operation = min(
                node.operations,
                key=lambda op: op.local_cost
                + sum(m * costs.get(c.id, 0.0) for c, m in zip(op.children, op.child_multipliers)),
            )
        cost = operation.local_cost
        for child, multiplier in zip(operation.children, operation.child_multipliers):
            child_cost = costs[child.id]
            if child.id in materialized:
                child_cost = min(child_cost, child.reuse_cost)
            cost += multiplier * child_cost
        costs[node.id] = cost

        uses = numuses.get(node.id, 0)
        if uses <= 1:
            continue
        if not node.created_by_subsumption:
            if node.mat_cost / (uses - 1) + node.reuse_cost < cost:
                materialized.add(node.id)
        else:
            # Nodes introduced by subsumption derivations must pay for
            # themselves through the savings they offer their parents.
            lhs = cost + node.mat_cost + node.reuse_cost * (uses - 1)
            savings = 0.0
            for parent_op in node.parents:
                parent = parent_op.equivalence
                if choices.get(parent.id) is not parent_op:
                    continue
                original = _cheapest_regular_operation(parent, costs, fallback_costs, materialized)
                via_node = parent_op.local_cost
                for child, multiplier in zip(parent_op.children, parent_op.child_multipliers):
                    child_cost = node.reuse_cost if child.id == node.id else costs.get(child.id, 0.0)
                    via_node += multiplier * child_cost
                if original < INFINITE_COST:
                    savings += max(0.0, original - via_node)
            if lhs < savings:
                materialized.add(node.id)

    # Undo subsumption derivations whose shared source was not materialized.
    for node_id, original in swapped.items():
        chosen = choices[node_id]
        if chosen.is_subsumption and not all(
            child.id in materialized or child.is_base for child in chosen.children
        ):
            choices[node_id] = original

    final_plan = ConsolidatedPlan(dag, choices, set(materialized))
    reachable_ids = {node.id for node in final_plan.reachable()}
    materialized &= reachable_ids
    final_costs = plan_node_costs(dag, choices, materialized)
    total = final_costs[dag.root.id]
    mat_cost = get_engine(dag).mat_cost
    for node_id in sorted(materialized):
        total += final_costs[node_id] + mat_cost[node_id]

    # Volcano-SH only adds sharing on top of the Volcano plan; if the
    # heuristic decisions (made with the numuses underestimate) did not pay
    # off, fall back to the plain Volcano plan rather than return a worse one.
    baseline_total = baseline_costs[dag.root.id]
    if total > baseline_total:
        return set(), dict(plan.choices), baseline_total
    return materialized, choices, total


def optimize_volcano_sh(dag: Dag, plan: Optional[ConsolidatedPlan] = None) -> OptimizationResult:
    """Run Volcano-SH on the DAG (or on a supplied consolidated plan)."""
    start = time.perf_counter()
    if plan is None:
        plan = consolidated_best_plan(dag)
    materialized, choices, total = volcano_sh_pass(dag, plan)
    elapsed = time.perf_counter() - start
    result_plan = ConsolidatedPlan(dag, choices, materialized)
    return OptimizationResult(
        algorithm="Volcano-SH",
        plan=result_plan,
        cost=total,
        optimization_time=elapsed,
        dag_equivalence_nodes=dag.num_equivalence_nodes,
        dag_operation_nodes=dag.num_operation_nodes,
        counters={"materialized": len(materialized)},
    )
