"""Long-lived optimizer service layer.

One-shot reproduction runs (:func:`repro.api.optimize`) rebuild every AND-OR
DAG from a cold start.  A production multi-query optimizer — the recurring
batch workloads Roy et al. motivate MQO with — re-optimizes heavily
overlapping batches against the *same* catalog over and over.  This package
provides the state that makes those warm rebuilds cheap:

* :class:`repro.service.session.SessionCache` — the catalog-lifetime fragment
  cache consulted by :class:`repro.dag.builder.DagBuilder`;
* :class:`repro.service.session.OptimizerSession` — the public façade: a plan
  cache over whole batches plus ``build_dag``/``optimize`` entry points that
  thread the fragment cache through every build;
* :class:`repro.service.session.SessionCacheLimits` /
  :class:`repro.service.session.BoundedCache` — per-family LRU bounds for
  long-lived deployments;
* :class:`repro.service.session.CacheWarmer` — a background thread that pre-
  populates a session's fragment cache from a queue of anticipated batches.

Since PR 7 every cache key is *content-addressed* (canonical equivalence keys
plus per-relation statistics digests, never ``id()``), so a warm
``SessionCache`` can be pickled with :meth:`OptimizerSession.snapshot_state`
and fanned out to worker processes via :meth:`OptimizerSession.from_snapshot`.

Since PR 9 the layer is *resilient* (see ``docs/RESILIENCE.md``):

* :class:`repro.service.resilience.OptimizeBudget` — deadline-budgeted
  anytime optimization with a documented degradation ladder
  (:class:`~repro.optimizer.report.DegradationLevel`); every budgeted result
  carries a :class:`~repro.optimizer.report.DegradationReport`;
* :class:`repro.service.faults.FaultInjector` — deterministic seeded chaos
  harness over the cache families and snapshot bytes; under any injected
  fault, served plans stay byte-identical to the cold path;
* sealed snapshots — :meth:`OptimizerSession.snapshot_state` payloads carry a
  versioned header plus sha256 checksum, rejected with
  :class:`~repro.service.resilience.SnapshotError` when damaged
  (:meth:`OptimizerSession.from_snapshot_or_cold` falls back to a cold
  session instead of raising).
"""

from repro.service.faults import FaultInjector
from repro.service.resilience import (
    BudgetExceeded,
    CorruptedEntry,
    DegradationLevel,
    DegradationReport,
    OptimizeBudget,
    ServiceWorkerError,
    SnapshotError,
)
from repro.service.session import (
    BoundedCache,
    CacheWarmer,
    OptimizerSession,
    SessionCache,
    SessionCacheLimits,
    SessionCacheStats,
)

__all__ = [
    "BoundedCache",
    "BudgetExceeded",
    "CacheWarmer",
    "CorruptedEntry",
    "DegradationLevel",
    "DegradationReport",
    "FaultInjector",
    "OptimizeBudget",
    "OptimizerSession",
    "ServiceWorkerError",
    "SessionCache",
    "SessionCacheLimits",
    "SessionCacheStats",
    "SnapshotError",
]
