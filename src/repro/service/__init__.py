"""Long-lived optimizer service layer.

One-shot reproduction runs (:func:`repro.api.optimize`) rebuild every AND-OR
DAG from a cold start.  A production multi-query optimizer — the recurring
batch workloads Roy et al. motivate MQO with — re-optimizes heavily
overlapping batches against the *same* catalog over and over.  This package
provides the state that makes those warm rebuilds cheap:

* :class:`repro.service.session.SessionCache` — the catalog-lifetime fragment
  cache consulted by :class:`repro.dag.builder.DagBuilder`;
* :class:`repro.service.session.OptimizerSession` — the public façade: a plan
  cache over whole batches plus ``build_dag``/``optimize`` entry points that
  thread the fragment cache through every build.
"""

from repro.service.session import OptimizerSession, SessionCache

__all__ = ["OptimizerSession", "SessionCache"]
