"""Deterministic fault injection for the service layer (chaos harness).

:class:`FaultInjector` registers hooks into the
:class:`~repro.service.session.BoundedCache` families of a
:class:`~repro.service.session.SessionCache` and, with a seeded RNG, drops
or corrupts entries *mid-workload* — between the moment the builder stored a
fragment and the moment it asks for it back.  The injector exists to prove a
negative: under any schedule of injected cache faults, served plans are
**byte-identical** to the cold ``memoize=False`` reference, because the only
legal reaction to a missing or poisoned fragment is evict-and-recompute
(see :class:`~repro.service.resilience.CorruptedEntry`), never a wrong
answer.  ``tests/test_chaos.py`` runs that oracle over every cache family.

Determinism is load-bearing: a chaos failure must replay.  The RNG is seeded
through sha256 (never Python's process-salted ``hash()``), faults fire as a
pure function of the (deterministic) cache-access sequence, and the schedule
log records ``(family, access index, action)`` tuples — no reprs of
hash-ordered containers — so the same seed produces the same schedule digest
under any ``PYTHONHASHSEED`` (asserted by the hash-seed matrix in
``tests/test_build_determinism.py``).

Snapshot bytes are a second fault surface: :meth:`FaultInjector.corrupt_snapshot`
deterministically truncates or bit-flips a sealed snapshot, which
:meth:`~repro.service.session.OptimizerSession.from_snapshot` must reject
with :class:`~repro.service.resilience.SnapshotError` (fall back cold via
``from_snapshot_or_cold``).  Recipe replay is the third: a corrupted recipe
value never reaches ``_replay_recipe`` (the poison is quarantined at
``get``), and a structurally invalid one fails validation and is quarantined
by the builder.

Usage::

    injector = FaultInjector(seed=7, rate=0.2, mode="mixed")
    with injector.attach(session):
        session.build_dag(batch)       # faults fire inside the build
    print(injector.injected_faults, injector.schedule_digest())
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.service.resilience import CorruptedEntry
from repro.service.session import BoundedCache, OptimizerSession, SessionCache

__all__ = ["FaultInjector"]

#: Fault modes: ``drop`` deletes the entry, ``corrupt`` replaces it with a
#: :class:`CorruptedEntry` poison wrapper, ``mixed`` picks per fault.
FAULT_MODES = ("drop", "corrupt", "mixed")

_SNAPSHOT_MODES = ("truncate", "bitflip")


def _derive_rng(seed: int, scope: str) -> random.Random:
    """A ``random.Random`` seeded via sha256 — never the process-salted
    ``hash()`` — so streams replay under any ``PYTHONHASHSEED``."""
    digest = hashlib.sha256(f"fault-injector:{scope}:{seed}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class FaultInjector:
    """Seeded chaos: drop/corrupt cache entries and damage snapshot bytes.

    One injector owns one deterministic fault schedule.  ``rate`` is the
    per-access fault probability; ``families`` restricts injection to the
    named :meth:`SessionCache._families` keys (``None`` = all eleven);
    ``mode`` picks what a fault does (see :data:`FAULT_MODES`).  Attach to a
    session (or bare :class:`SessionCache`) with :meth:`attach` — also a
    context manager — and read the audit trail from :attr:`schedule`.
    """

    def __init__(
        self,
        seed: int,
        rate: float = 0.1,
        families: Optional[Sequence[str]] = None,
        mode: str = "mixed",
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate!r}")
        if mode not in FAULT_MODES:
            raise ValueError(f"mode must be one of {FAULT_MODES}, got {mode!r}")
        self.seed = seed
        self.rate = rate
        self.mode = mode
        self.families: Optional[Tuple[str, ...]] = (
            tuple(families) if families is not None else None
        )
        self._rng = _derive_rng(seed, "cache")
        self._snapshot_rng = _derive_rng(seed, "snapshot")
        #: Audit log: one ``(family, access index, action)`` tuple per
        #: injected fault, in injection order.  Deliberately free of any
        #: hash-ordered content so its digest is PYTHONHASHSEED-stable.
        self.schedule: List[Tuple[str, int, str]] = []
        self.injected_drops = 0
        self.injected_corruptions = 0
        self.snapshot_corruptions = 0
        self._accesses = 0
        self._attached: List[Tuple[BoundedCache, str]] = []

    # -- lifecycle -------------------------------------------------------------
    def attach(self, target: Union[OptimizerSession, SessionCache]) -> "FaultInjector":
        """Install fault hooks on *target*'s cache families (idempotent-safe:
        refuses a cache that already has a hook)."""
        cache = target.cache if isinstance(target, OptimizerSession) else target
        selected = cache._families()
        if self.families is not None:
            unknown = [name for name in self.families if name not in selected]
            if unknown:
                raise ValueError(f"unknown cache families: {unknown}")
        for family, table in selected.items():
            if self.families is not None and family not in self.families:
                continue
            if table.fault_hook is not None:
                raise ValueError(
                    f"cache family {family!r} already has a fault hook attached"
                )
            table.fault_hook = self._make_hook(family)
            self._attached.append((table, family))
        return self

    def detach(self) -> None:
        """Remove every hook this injector installed."""
        for table, _family in self._attached:
            table.fault_hook = None
        self._attached.clear()

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.detach()

    # -- cache faults ----------------------------------------------------------
    @property
    def injected_faults(self) -> int:
        return self.injected_drops + self.injected_corruptions

    def _make_hook(self, family: str) -> Callable[[BoundedCache, Any], None]:
        def hook(cache: BoundedCache, key: Any) -> None:
            # One RNG draw per hooked access, fired or not: the stream then
            # advances as a pure function of the access sequence, so two runs
            # with the same seed fault the same accesses.
            self._accesses += 1
            if self._rng.random() >= self.rate:
                return
            action = self.mode
            if action == "mixed":
                action = "drop" if self._rng.random() < 0.5 else "corrupt"
            # dict.* primitives on purpose: injection must not refresh LRU
            # recency or trigger capacity eviction accounting.
            if not dict.__contains__(cache, key):
                return  # nothing stored to fault; the draw still advanced
            if action == "drop":
                dict.__delitem__(cache, key)
                self.injected_drops += 1
            else:
                value = dict.__getitem__(cache, key)
                if value.__class__ is CorruptedEntry:
                    return  # already poisoned by an earlier fault
                dict.__setitem__(cache, key, CorruptedEntry(value))
                self.injected_corruptions += 1
            self.schedule.append((family, self._accesses, action))

        return hook

    def schedule_digest(self) -> str:
        """sha256 over the schedule log (stable across processes/hash seeds)."""
        serialized = "\n".join(
            f"{family}:{access}:{action}" for family, access, action in self.schedule
        )
        return hashlib.sha256(serialized.encode()).hexdigest()

    # -- snapshot faults -------------------------------------------------------
    def corrupt_snapshot(self, data: bytes, mode: Optional[str] = None) -> bytes:
        """Deterministically damage sealed snapshot bytes.

        ``mode`` is ``"truncate"``, ``"bitflip"``, or ``None`` (seeded
        choice).  The result must be rejected by
        :meth:`~repro.service.session.OptimizerSession.from_snapshot` — the
        chaos suite asserts it raises
        :class:`~repro.service.resilience.SnapshotError`.
        """
        if mode is None:
            mode = self._snapshot_rng.choice(_SNAPSHOT_MODES)
        if mode not in _SNAPSHOT_MODES:
            raise ValueError(f"mode must be one of {_SNAPSHOT_MODES}, got {mode!r}")
        if not data:
            raise ValueError("cannot corrupt an empty snapshot")
        self.snapshot_corruptions += 1
        if mode == "truncate":
            cut = self._snapshot_rng.randrange(0, len(data))
            return data[:cut]
        index = self._snapshot_rng.randrange(0, len(data))
        bit = 1 << self._snapshot_rng.randrange(0, 8)
        flipped = bytearray(data)
        flipped[index] ^= bit
        return bytes(flipped)
