"""Resilience layer: budgets, degradation ladder, and state integrity.

The service path built in PRs 5–8 assumed a fault-free world: every
``optimize`` call ran to completion no matter how pathological the batch,
snapshots were raw unversioned pickle bytes, and a poisoned cache entry was
unrepresentable.  This module gives the service its degraded-but-correct
story, built on three contracts:

**Deadline budgets** (:class:`OptimizeBudget`).  A budgeted
:meth:`~repro.service.session.OptimizerSession.optimize` call threads an
absolute deadline into the optimizer loops (checked at iteration boundaries
— see ``optimize_greedy``/``run_monotonic_heap``/``optimize_volcano_ru`` —
so an unbudgeted call reads no clock and stays bit-identical to pre-budget
code).  On expiry the call falls down an explicit **degradation ladder**
(:func:`run_ladder`):

1. the requested algorithm, run to completion → ``FULL``;
2. greedy interrupted mid-search keeps its best-so-far materialized set →
   ``ANYTIME_GREEDY`` (byte-identical to a greedy run capped at the
   materialization count reached);
3. Volcano-SH's single decision pass, run when the deadline (plus a bounded
   *grace* allowance — once the deadline has fired, everything further is
   over budget; grace bounds how much further) still permits → ``VOLCANO_SH``;
4. no-sharing per-query Volcano plans → ``NO_SHARING``, the unconditional
   floor: always affordable, always a valid executable plan.

Every rung produces a plan byte-identical to running that rung's algorithm
directly, and every budgeted result carries a
:class:`~repro.optimizer.report.DegradationReport`.

**Fault quarantine** (:class:`CorruptedEntry`).  The cache families of
:class:`~repro.service.session.SessionCache` treat a corrupted entry as a
miss: :meth:`~repro.service.session.BoundedCache.get` detects the poison
wrapper, evicts it (counted in ``quarantined``), and lets the builder
recompute — by content addressing the recomputation is byte-identical to the
never-cached path, which is the invariant the chaos suite
(``tests/test_chaos.py``) enforces under injected faults.  The same
philosophy governs recipe replay: a recipe that fails validation is
quarantined and re-recorded, never raised (see
``DagBuilder._replay_recipe``).

**Snapshot integrity** (:func:`seal_snapshot` / :func:`open_snapshot`).
Session snapshots carry a versioned header with a sha256 payload checksum;
any truncation, bit flip, or foreign payload raises :class:`SnapshotError`
(a :class:`TypeError` subclass, preserving the historical contract) instead
of unpickling garbage.  The documented fall-back is
:meth:`~repro.service.session.OptimizerSession.from_snapshot_or_cold`: a
worker handed damaged bytes starts cold — slower, never wrong.

Fault *injection* lives next door in :mod:`repro.service.faults`.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from time import perf_counter
from typing import Any, List, Optional

from repro.api import Algorithm
from repro.dag.nodes import Dag
from repro.optimizer import GreedyOptions
from repro.optimizer.greedy import optimize_greedy
from repro.optimizer.report import (
    BudgetExceeded,
    DegradationLevel,
    DegradationReport,
    OptimizationResult,
)
from repro.optimizer.volcano import optimize_volcano
from repro.optimizer.volcano_ru import optimize_volcano_ru
from repro.optimizer.volcano_sh import optimize_volcano_sh

__all__ = [
    "BudgetExceeded",
    "CorruptedEntry",
    "DegradationLevel",
    "DegradationReport",
    "OptimizeBudget",
    "ServiceWorkerError",
    "SnapshotError",
    "open_snapshot",
    "run_ladder",
    "seal_snapshot",
]


@dataclass(frozen=True)
class OptimizeBudget:
    """A wall-clock budget for one ``optimize`` call.

    ``deadline_ms`` bounds the whole call (DAG build included; the build
    itself is not interruptible, but a build that eats the budget sends the
    search straight down the ladder).  ``grace_ms`` bounds how far past the
    deadline the Volcano-SH fallback rung may still run — once the deadline
    has fired every further instruction is over budget, so the ladder's
    question is "what is the cheapest acceptable answer", and grace is the
    knob: ``0`` drops expired calls straight to no-sharing plans, ``None``
    (the default) allows half the deadline again for the SH pass, which is
    orders of magnitude cheaper than the full search on every measured
    workload.
    """

    deadline_ms: float
    grace_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.deadline_ms < 0:
            raise ValueError(f"deadline_ms must be >= 0, got {self.deadline_ms!r}")
        if self.grace_ms is not None and self.grace_ms < 0:
            raise ValueError(f"grace_ms must be >= 0, got {self.grace_ms!r}")

    @property
    def resolved_grace_ms(self) -> float:
        return self.deadline_ms * 0.5 if self.grace_ms is None else self.grace_ms

    def deadline_from(self, start: float) -> float:
        """Absolute ``perf_counter`` deadline for a call that began at *start*."""
        return start + self.deadline_ms / 1000.0

    def grace_deadline_from(self, start: float) -> float:
        return start + (self.deadline_ms + self.resolved_grace_ms) / 1000.0


class SnapshotError(TypeError):
    """A session snapshot failed its integrity or format checks.

    Subclasses :class:`TypeError` so pre-header callers that caught the
    foreign-payload ``TypeError`` keep working.  Callers that can rebuild
    state should prefer
    :meth:`~repro.service.session.OptimizerSession.from_snapshot_or_cold`.
    """


class CorruptedEntry:
    """Poison wrapper marking a cache value as corrupted.

    :meth:`~repro.service.session.BoundedCache.get` treats a stored
    ``CorruptedEntry`` as a miss and evicts it (quarantine), so readers can
    never observe the wrapped value; the recompute that follows is
    byte-identical to a cold miss.  Used by
    :class:`~repro.service.faults.FaultInjector` to model partial cache
    corruption without inventing plausible-but-wrong fragment bytes.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any = None) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"CorruptedEntry({self.value!r})"


class ServiceWorkerError(RuntimeError):
    """One or more service worker processes died mid-run.

    Raised by ``benchmarks.harness.measure_service_throughput`` instead of
    hanging on the results queue.  ``failures`` holds one dict per dead
    worker (``worker``, ``exitcode``, ``heartbeat`` — batches served before
    death); ``partial`` carries whatever results the surviving workers
    produced (shape is the raiser's choice).
    """

    def __init__(
        self,
        message: str,
        failures: List[Any],
        partial: Any = None,
    ) -> None:
        super().__init__(message)
        self.failures = failures
        self.partial = partial


# ---------------------------------------------------------------------------
# Snapshot integrity: versioned header + sha256 checksum
# ---------------------------------------------------------------------------

#: Snapshot header layout: magic, format version (u16 big-endian), sha256 of
#: the payload, then the payload itself.
SNAPSHOT_MAGIC = b"RPROSNAP"
SNAPSHOT_VERSION = 1
_HEADER_LEN = len(SNAPSHOT_MAGIC) + 2 + hashlib.sha256().digest_size


def seal_snapshot(payload: bytes) -> bytes:
    """Wrap pickled session state in the versioned, checksummed header."""
    digest = hashlib.sha256(payload).digest()
    return SNAPSHOT_MAGIC + struct.pack(">H", SNAPSHOT_VERSION) + digest + payload


def open_snapshot(data: bytes) -> bytes:
    """Validate a sealed snapshot and return its payload.

    Raises :class:`SnapshotError` on anything short of a byte-perfect
    snapshot: truncated data, missing or wrong magic (foreign payloads,
    including pre-header raw pickles), an unsupported version, or a checksum
    mismatch (bit flips anywhere in the payload).
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SnapshotError(f"snapshot must be bytes, got {type(data).__name__}")
    data = bytes(data)
    if len(data) < _HEADER_LEN:
        raise SnapshotError(
            f"snapshot truncated: {len(data)} bytes is shorter than the "
            f"{_HEADER_LEN}-byte header"
        )
    magic = data[: len(SNAPSHOT_MAGIC)]
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotError(
            f"not a session snapshot (bad magic {magic!r}); "
            "was this produced by OptimizerSession.snapshot_state?"
        )
    offset = len(SNAPSHOT_MAGIC)
    (version,) = struct.unpack_from(">H", data, offset)
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {version} (this build reads "
            f"version {SNAPSHOT_VERSION})"
        )
    offset += 2
    digest_size = hashlib.sha256().digest_size
    expected = data[offset : offset + digest_size]
    payload = data[offset + digest_size :]
    actual = hashlib.sha256(payload).digest()
    if actual != expected:
        raise SnapshotError(
            "snapshot checksum mismatch: payload corrupted in transit "
            f"(expected {expected.hex()[:16]}…, got {actual.hex()[:16]}…)"
        )
    return payload


# ---------------------------------------------------------------------------
# The degradation ladder
# ---------------------------------------------------------------------------

def _report(
    level: DegradationLevel,
    requested: Algorithm,
    served: str,
    budget: OptimizeBudget,
    start: float,
    deadline: float,
) -> DegradationReport:
    now = perf_counter()
    return DegradationReport(
        level=level,
        requested=requested.value,
        served=served,
        budget_ms=budget.deadline_ms,
        grace_ms=budget.resolved_grace_ms,
        elapsed_ms=(now - start) * 1000.0,
        expired=now >= deadline,
    )


def run_ladder(
    dag: Dag,
    algorithm: Algorithm,
    budget: OptimizeBudget,
    start: float,
    greedy_options: Optional[GreedyOptions] = None,
    enable_mqo: bool = True,
) -> OptimizationResult:
    """Run *algorithm* on *dag* under *budget*, degrading on expiry.

    *start* is the ``perf_counter`` timestamp the budget is measured from
    (taken at ``optimize`` entry, before the DAG build).  Rung selection is
    purely "has the deadline (or the grace deadline) fired at rung entry":

    * not expired → run the requested algorithm with a cooperative deadline.
      Greedy interrupted mid-search returns its anytime best-so-far
      (``ANYTIME_GREEDY``); Volcano-RU interrupted raises internally and
      falls through to the next rung.
    * expired (or fell through) but within grace → one Volcano-SH decision
      pass (``VOLCANO_SH``).
    * grace gone too → per-query no-sharing plans (``NO_SHARING``), which
      always run: a budgeted call never returns empty-handed.

    Degraded results are byte-identical to running the fallback algorithm
    directly on the same DAG — the ladder composes complete algorithms, it
    never invents plans.
    """
    if algorithm not in (
        Algorithm.VOLCANO,
        Algorithm.VOLCANO_SH,
        Algorithm.VOLCANO_RU,
        Algorithm.GREEDY,
    ):
        raise ValueError(f"unsupported algorithm for budgeted optimize: {algorithm}")
    deadline = budget.deadline_from(start)
    grace_deadline = budget.grace_deadline_from(start)
    requested = algorithm

    if not enable_mqo:
        # MQO disabled reduces every algorithm to plain Volcano (the
        # Section 6.4 no-overlap configuration) — which is also the ladder
        # floor, so there is nothing to degrade through.
        result = optimize_volcano(dag)
        result.degradation = _report(
            DegradationLevel.FULL, requested, result.algorithm, budget, start, deadline
        )
        return result

    if perf_counter() < deadline:
        if algorithm is Algorithm.GREEDY:
            result = optimize_greedy(dag, greedy_options, deadline=deadline)
            if result.counters.get("deadline_expired"):
                level = DegradationLevel.ANYTIME_GREEDY
            else:
                level = DegradationLevel.FULL
            result.degradation = _report(
                level, requested, result.algorithm, budget, start, deadline
            )
            return result
        if algorithm is Algorithm.VOLCANO_RU:
            try:
                result = optimize_volcano_ru(dag, deadline=deadline)
            except BudgetExceeded:
                pass
            else:
                result.degradation = _report(
                    DegradationLevel.FULL, requested, result.algorithm, budget, start, deadline
                )
                return result
        elif algorithm is Algorithm.VOLCANO_SH:
            result = optimize_volcano_sh(dag)
            result.degradation = _report(
                DegradationLevel.FULL, requested, result.algorithm, budget, start, deadline
            )
            return result
        elif algorithm is Algorithm.VOLCANO:
            result = optimize_volcano(dag)
            result.degradation = _report(
                DegradationLevel.FULL, requested, result.algorithm, budget, start, deadline
            )
            return result

    # Expired at entry, or Volcano-RU fell through: the SH rung runs while
    # the grace allowance lasts...
    if algorithm is not Algorithm.VOLCANO and perf_counter() < grace_deadline:
        result = optimize_volcano_sh(dag)
        level = (
            DegradationLevel.FULL
            if algorithm is Algorithm.VOLCANO_SH
            else DegradationLevel.VOLCANO_SH
        )
        result.degradation = _report(
            level, requested, result.algorithm, budget, start, deadline
        )
        return result

    # ...and the no-sharing floor runs unconditionally.
    result = optimize_volcano(dag)
    level = (
        DegradationLevel.FULL
        if algorithm is Algorithm.VOLCANO
        else DegradationLevel.NO_SHARING
    )
    result.degradation = _report(
        level, requested, result.algorithm, budget, start, deadline
    )
    return result
