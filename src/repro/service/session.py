"""Catalog-lifetime plan cache and warm-rebuild sessions.

The PR 4 builder memo tables are *per build*: a fresh
:class:`~repro.dag.builder.DagBuilder` starts cold, so a service that
re-optimizes overlapping batches (the recurring-workload scenario of the
paper) pays the full DAG-expansion cost on every request.  This module keeps
the memoizable part of that work alive across builds:

:class:`SessionCache` — the **fragment cache** consulted by the builder
before its per-build memos.  Entries are keyed on *canonical equivalence
keys* (the same keys that unify sub-expressions inside one DAG, so they are
stable across builds), interned to dense ids, plus whatever order-sensitive
inputs the cached computation consumed:

* base-table properties per ``(table, alias)``;
* scan-choice entries — derived
  :class:`~repro.cost.estimation.LogicalProperties`, chosen access path and
  cost — per scan key, pushed-down predicate order, and *prune tag* (the
  batch-referenced columns of the table, which drive early projection);
* derived select/project/aggregate entries (properties + operation cost)
  keyed on the **identity** of the child's properties object;
* join :class:`~repro.cost.estimation.LogicalProperties` per join key and
  ordered member properties;
* join-operation cost triples — the
  :func:`~repro.cost.algorithms.choose_join` outcome per
  ``(result, left, right)`` key triple;
* **join recipes**: for a join node whose partition enumeration is a pure
  function of its key (the PR 4 canonical-adjacency condition), the full
  ordered operation list, so a warm rebuild replays it without enumerating
  partitions or re-costing anything;
* weak-join resolution and predicate-implication results for the subsumption
  pass (pure predicate logic, catalog-independent, never evicted).

Identity-keying is what makes warm rebuilds *byte-identical* rather than
merely close: float folds in the estimator are evaluation-order sensitive, so
a cached value is only reused when its inputs are the very objects it was
computed from.  Warm rebuilds reuse cached properties objects bottom-up, so
the identities match all the way to the root; after an invalidation the
affected leaves are recomputed as fresh objects and every dependent fragment
misses automatically.

**Invalidation.**  Every catalog-dependent entry carries the set of base
relations it reads.  :meth:`SessionCache.sync` compares the catalog's epochs
(:attr:`~repro.catalog.catalog.Catalog.statistics_epoch` /
:attr:`~repro.catalog.catalog.Catalog.schema_epoch`) against the last
synchronized state: a statistics-only change evicts exactly the entries
depending on a relation whose
:meth:`~repro.catalog.catalog.Catalog.stats_version` moved, a schema change
clears everything.  Validation happens once per build — never per cache hit.

:class:`OptimizerSession` — the **service façade**: it owns a
:class:`SessionCache`, adds a batch-level plan cache (batch → built DAG and
per-algorithm :class:`~repro.optimizer.report.OptimizationResult`), and
exposes ``build_dag`` / ``optimize`` / ``optimize_all`` mirrors of
:class:`~repro.api.MQOptimizer`.

Correctness is anchored the same way as every other fast path in this repo:
the session-backed builder must produce DAGs byte-identical
(``tests.generators.dag_fingerprint``) to the memo-free reference builder
(``DagBuilder(..., memoize=False)``) on cold builds, warm rebuilds, shifted
overlapping batches, and post-invalidation rebuilds —
``tests/test_session_cache.py`` enforces all four.

Sessions are not thread-safe; use one session per worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.algebra.predicates import Predicate
from repro.api import Algorithm, MQOptimizer, PAPER_ALGORITHMS
from repro.catalog.catalog import Catalog
from repro.cost.estimation import LogicalProperties
from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.dag.builder import DagBuilder, Query, RecipeEntry
from repro.dag.nodes import Dag, JoinOp, ScanOp
from repro.optimizer import GreedyOptions, OptimizationResult


class _DepsInterner:
    """Intern relation-dependency frozensets to ids, with memoized unions.

    The builder annotates every equivalence node with the set of base
    relations under it, recomputed as a union over children for every node of
    every build.  Interning turns those frozensets into ints and makes the
    union of two already-seen sets a single dict lookup.
    """

    __slots__ = ("_ids", "_values", "_unions")

    def __init__(self) -> None:
        self._ids: Dict[FrozenSet[str], int] = {}
        self._values: List[FrozenSet[str]] = []
        self._unions: Dict[Tuple[int, int], int] = {}

    def intern(self, value: FrozenSet[str]) -> int:
        ident = self._ids.get(value)
        if ident is None:
            ident = len(self._values)
            self._ids[value] = ident
            self._values.append(value)
        return ident

    def value(self, ident: int) -> FrozenSet[str]:
        return self._values[ident]

    def union(self, a: int, b: int) -> int:
        if a == b:
            return a
        key = (a, b) if a < b else (b, a)
        cached = self._unions.get(key)
        if cached is None:
            cached = self.intern(self._values[a] | self._values[b])
            self._unions[key] = cached
        return cached


@dataclass
class SessionCacheStats:
    """Hit/miss/eviction counters of one :class:`SessionCache`."""

    hits: int = 0
    misses: int = 0
    entries: int = 0
    builds: int = 0
    stats_invalidations: int = 0
    schema_invalidations: int = 0
    evicted_entries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SessionCache:
    """Catalog-lifetime fragment cache shared by successive DAG builds.

    The cache is bound to one catalog and one cost model;
    :class:`~repro.dag.builder.DagBuilder` refuses a session built against
    different ones, because every cached value bakes their state in.  See the
    module docstring for the entry taxonomy and the invalidation contract.
    """

    def __init__(self, catalog: Catalog, cost_model: CostModel = DEFAULT_COST_MODEL) -> None:
        self.catalog = catalog
        self.cost_model = cost_model
        # Canonical equivalence keys -> dense ids (hashed once per node per
        # build; the fragment caches below are keyed on the ids).
        self._key_ids: Dict[Hashable, int] = {}  # repro-lint: ok(M001) catalog-independent: interns canonical keys by value
        # LogicalProperties -> dense ids, by object identity (see module
        # docstring: identity-keying is the byte-identity mechanism).  The
        # list keeps the objects alive so ids can never be recycled.
        self._props_ids: Dict[int, int] = {}  # repro-lint: ok(M001) identity interner; _props_refs pins the objects, ids never recycle
        self._props_refs: List[LogicalProperties] = []
        self._deps = _DepsInterner()
        self.empty_deps_id = self._deps.intern(frozenset())
        # -- fragment caches (values end with the interned deps id) ----------
        #: (table, alias) -> (props, deps)
        self.base_props: Dict[Tuple[str, str], Tuple[LogicalProperties, int]] = {}
        #: (scan key id, predicate order, prune tag) ->
        #: (props, label, ScanOp, cost, deps)
        self.scans: Dict[Tuple[Any, ...], Tuple[LogicalProperties, str, ScanOp, float, int]] = {}
        #: ("select", child props id, predicate order) /
        #: ("project", child props id, columns) /
        #: ("agg", child props id, agg key id) -> (props, cost, deps)
        self.derived: Dict[Tuple[Any, ...], Tuple[LogicalProperties, float, int]] = {}
        #: (join key id, ordered member props ids) -> (props, deps)
        self.join_props: Dict[Tuple[Any, ...], Tuple[LogicalProperties, int]] = {}
        #: (result kid, left kid, right kid, result/left/right props ids) ->
        #: (JoinOp, cost, deps)
        self.join_ops: Dict[Tuple[Any, ...], Tuple[JoinOp, float, int]] = {}
        #: (join key id, result props id) -> (entries, deps); one entry is
        #: (left kid, left props id, right kid, right props id, JoinOp,
        #: cost), in enumeration order.
        self.join_recipes: Dict[Tuple[int, int], Tuple[Tuple[RecipeEntry, ...], int]] = {}
        # -- catalog-independent caches (never evicted) ----------------------
        #: (n, adjacency bitmasks, predicate bitmasks) -> _BlockShape: the
        #: connected-subset list, applicability, canonicality, and partition
        #: enumeration of a join block — pure combinatorics shared across
        #: blocks and builds (see :class:`repro.dag.builder._BlockShape`).
        self.block_shapes: Dict[Tuple[Any, ...], object] = {}  # repro-lint: ok(M001) pure combinatorics of the shape key; catalog-independent
        #: (shape key, ordered leaf key ids, block predicates) ->
        #: {mask: (join equivalence key, applicable predicates, key id)} —
        #: the canonical identity of every connected sub-set of a block, a
        #: pure function of the leaf keys and predicates (filled lazily).
        self.block_keys: Dict[Tuple[Any, ...], Dict[int, Tuple[Hashable, FrozenSet[Predicate], int]]] = {}  # repro-lint: ok(M001) pure function of leaf keys + predicates; catalog-independent
        #: weak-join memo key -> ordered build plan (sorted weak scans plus
        #: ordered join predicates); pure predicate structure, see
        #: :func:`repro.dag.subsumption._weak_join_node`.
        self.weak_joins: Dict[Hashable, Tuple[Any, ...]] = {}  # repro-lint: ok(M001) pure predicate structure; catalog-independent
        #: (stronger predicate set, weaker predicate set) -> bool
        self.implications: Dict[Tuple[FrozenSet[Predicate], FrozenSet[Predicate]], bool] = {}  # repro-lint: ok(M001) pure predicate logic; never invalidated
        # -- invalidation state ----------------------------------------------
        self._synced_statistics_epoch = catalog.statistics_epoch
        self._synced_schema_epoch = catalog.schema_epoch
        self._synced_versions = catalog.stats_versions()
        #: Bumped by every eviction (sync-driven or manual) so that holders
        #: of derived state — the :class:`OptimizerSession` plan cache — can
        #: notice invalidations performed directly on this object.
        self.generation = 0
        self.stats = SessionCacheStats()

    # -- interning (used by the builder) --------------------------------------
    def key_id(self, key: Hashable) -> int:
        ids = self._key_ids
        ident = ids.get(key)
        if ident is None:
            ident = len(ids)
            ids[key] = ident
        return ident

    def props_id(self, props: LogicalProperties) -> int:
        ident = self._props_ids.get(id(props))
        if ident is None:
            ident = len(self._props_refs)
            self._props_ids[id(props)] = ident
            self._props_refs.append(props)
        return ident

    def deps_id(self, deps: FrozenSet[str]) -> int:
        return self._deps.intern(deps)

    def union_deps(self, a: int, b: int) -> int:
        return self._deps.union(a, b)

    def deps_of(self, deps_id: int) -> FrozenSet[str]:
        return self._deps.value(deps_id)

    # -- invalidation ----------------------------------------------------------
    def sync(self) -> Optional[FrozenSet[str]]:
        """Bring the cache up to date with the catalog.

        Returns the set of relations whose statistics changed since the last
        sync (empty when nothing changed), or ``None`` when a schema change
        forced a full wipe.  Builds must be preceded by a sync;
        :meth:`~repro.dag.builder.DagBuilder.build` calls it itself, so
        direct builder users get it for free and :class:`OptimizerSession`
        merely calls it earlier to also refresh its plan cache.
        """
        catalog = self.catalog
        if catalog.statistics_epoch == self._synced_statistics_epoch:
            return frozenset()
        if catalog.schema_epoch != self._synced_schema_epoch:
            self.clear()
            self.stats.schema_invalidations += 1
            changed: Optional[FrozenSet[str]] = None
        else:
            versions = catalog.stats_versions()
            synced = self._synced_versions
            changed = frozenset(
                name for name, version in versions.items() if synced.get(name) != version
            )
            self._evict(changed)
            self.stats.stats_invalidations += 1
        self._synced_statistics_epoch = catalog.statistics_epoch
        self._synced_schema_epoch = catalog.schema_epoch
        self._synced_versions = catalog.stats_versions()
        return changed

    def clear(self) -> None:
        """Drop every catalog-dependent entry (schema-change semantics)."""
        self.generation += 1
        for cache in self._catalog_dependent_caches():
            self.stats.evicted_entries += len(cache)
            cache.clear()

    def invalidate(self, table: Optional[str] = None) -> None:
        """Manually evict entries depending on *table* (or everything)."""
        if table is None:
            self.clear()
        else:
            self._evict(frozenset((table.lower(),)))

    def _catalog_dependent_caches(self) -> Tuple[Dict[Any, Any], ...]:
        return (
            self.base_props,
            self.scans,
            self.derived,
            self.join_props,
            self.join_ops,
            self.join_recipes,
        )

    def _evict(self, changed: FrozenSet[str]) -> None:
        if not changed:
            return
        self.generation += 1
        deps_value = self._deps.value
        for cache in self._catalog_dependent_caches():
            stale = [
                key for key, entry in cache.items() if deps_value(entry[-1]) & changed
            ]
            self.stats.evicted_entries += len(stale)
            for key in stale:
                del cache[key]

    # -- introspection ---------------------------------------------------------
    def entry_count(self) -> int:
        return sum(len(cache) for cache in self._catalog_dependent_caches()) + len(
            self.weak_joins
        ) + len(self.implications)

    def snapshot(self) -> SessionCacheStats:
        """A copy of the counters with ``entries`` filled in."""
        stats = SessionCacheStats(**vars(self.stats))
        stats.entries = self.entry_count()
        return stats


@dataclass
class _PlanEntry:
    """One plan-cache slot: the built DAG plus per-algorithm results."""

    dag: Dag
    deps: FrozenSet[str]
    results: Dict[Hashable, OptimizationResult] = field(default_factory=dict)


#: Key type of the plan cache: ((query name, expression), ...).
BatchKey = Tuple[Tuple[str, object], ...]


class OptimizerSession:
    """A long-lived multi-query optimizer bound to one catalog.

    Where :class:`~repro.api.MQOptimizer` rebuilds every DAG cold, a session
    keeps two cache layers alive between calls:

    * a **plan cache**: an exact batch seen before (same query names and
      expressions, same catalog epochs) returns its previously built DAG —
      and previously computed optimization results — outright;
    * the :class:`SessionCache` **fragment cache**, which makes rebuilding a
      *different but overlapping* batch cheap by reusing scan choices, join
      costs, derived properties, and whole partition-enumeration recipes.

    Both layers follow the catalog's epochs: statistics changes evict only
    the affected relations' fragments (and the plans touching them), schema
    changes start the session cold.  See the module docstring for the
    invalidation contract and ``benchmarks/harness.py --warm`` for measured
    warm-rebuild speedups.

    Usage::

        session = OptimizerSession(catalog)
        result = session.optimize(batch, Algorithm.GREEDY)   # cold build
        result = session.optimize(batch, Algorithm.GREEDY)   # plan-cache hit
        catalog.update_statistics("orders", row_count=2_000_000)
        result = session.optimize(batch, Algorithm.GREEDY)   # rebuilt fresh
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        enable_subsumption: bool = True,
        enable_mqo: bool = True,
        cache_plans: bool = True,
    ) -> None:
        self.catalog = catalog
        self.cost_model = cost_model
        self.enable_subsumption = enable_subsumption
        self.enable_mqo = enable_mqo
        #: When ``False``, only the fragment cache is used: every call
        #: rebuilds the DAG (warm), which is what the byte-identity tests and
        #: the fragment-level warm-rebuild benchmarks exercise.
        self.cache_plans = cache_plans
        self.cache = SessionCache(catalog, cost_model)
        self._optimizer = MQOptimizer(
            catalog,
            cost_model=cost_model,
            enable_subsumption=enable_subsumption,
            enable_mqo=enable_mqo,
        )
        self._plans: Dict[BatchKey, _PlanEntry] = {}
        self._cache_generation = self.cache.generation
        self.plan_hits = 0
        self.plan_misses = 0

    # -- plan cache ------------------------------------------------------------
    @staticmethod
    def _batch_key(queries: Sequence[Query]) -> BatchKey:
        return tuple((query.name, query.expression) for query in queries)

    def _sync(self) -> None:
        if self.cache.generation != self._cache_generation:
            # Someone invalidated the fragment cache directly (e.g.
            # ``session.cache.invalidate(...)``): the eviction bypassed this
            # façade, so drop every cached plan conservatively.
            self._plans.clear()
        changed = self.cache.sync()
        if changed is None:
            self._plans.clear()
        elif changed:
            stale = [key for key, entry in self._plans.items() if entry.deps & changed]
            for key in stale:
                del self._plans[key]
        self._cache_generation = self.cache.generation

    def _dag_entry(self, queries: Sequence[Query]) -> _PlanEntry:
        self._sync()
        key = self._batch_key(queries)
        if self.cache_plans:
            entry = self._plans.get(key)
            if entry is not None:
                self.plan_hits += 1
                return entry
            self.plan_misses += 1
        builder = DagBuilder(
            self.catalog,
            cost_model=self.cost_model,
            enable_subsumption=self.enable_subsumption and self.enable_mqo,
            session=self.cache,
        )
        dag = builder.build(list(queries))
        entry = _PlanEntry(dag, builder.session_deps())
        if self.cache_plans:
            self._plans[key] = entry
        return entry

    # -- public API ------------------------------------------------------------
    def build_dag(self, queries: Sequence[Query]) -> Dag:
        """Build (or fetch) the combined AND-OR DAG for *queries*.

        Repeated calls with an unchanged catalog reuse cached fragments; with
        :attr:`cache_plans` enabled an exact repeat returns the previously
        built :class:`~repro.dag.nodes.Dag` object itself.
        """
        return self._dag_entry(queries).dag

    def optimize(
        self,
        queries: Sequence[Query],
        algorithm: Union[str, Algorithm] = Algorithm.GREEDY,
        greedy_options: Optional[GreedyOptions] = None,
    ) -> OptimizationResult:
        """Optimize a batch, reusing cached DAGs and results where possible."""
        algorithm = Algorithm.parse(algorithm)
        entry = self._dag_entry(queries)
        result_key = (algorithm, greedy_options)
        if self.cache_plans:
            cached = entry.results.get(result_key)
            if cached is not None:
                self.plan_hits += 1
                return cached
            self.plan_misses += 1
        result = self._optimizer.optimize(
            queries, algorithm, dag=entry.dag, greedy_options=greedy_options
        )
        if self.cache_plans:
            entry.results[result_key] = result
        return result

    def optimize_all(
        self,
        queries: Sequence[Query],
        algorithms: Iterable[Union[str, Algorithm]] = PAPER_ALGORITHMS,
        greedy_options: Optional[GreedyOptions] = None,
    ) -> Dict[str, OptimizationResult]:
        """Run several algorithms on the (shared, possibly cached) DAG."""
        results: Dict[str, OptimizationResult] = {}
        for algorithm in algorithms:
            result = self.optimize(queries, algorithm, greedy_options=greedy_options)
            results[result.algorithm] = result
        return results

    # -- maintenance -----------------------------------------------------------
    def invalidate(self, table: Optional[str] = None) -> None:
        """Manually drop cached state for *table* (or the whole session)."""
        if table is None:
            self.cache.clear()
            self._plans.clear()
        else:
            name = table.lower()
            self.cache.invalidate(name)
            stale = [key for key, entry in self._plans.items() if name in entry.deps]
            for key in stale:
                del self._plans[key]
        # The plan cache was evicted in step with the fragment cache here, so
        # the next _sync must not treat the generation bump as an external
        # invalidation and wipe the surviving plans.
        self._cache_generation = self.cache.generation

    def cache_stats(self) -> SessionCacheStats:
        """Fragment-cache counters (plan-cache hits are separate fields)."""
        return self.cache.snapshot()
