"""Catalog-lifetime plan cache, warm-rebuild sessions, and the service path.

The PR 4 builder memo tables are *per build*: a fresh
:class:`~repro.dag.builder.DagBuilder` starts cold, so a service that
re-optimizes overlapping batches (the recurring-workload scenario of the
paper) pays the full DAG-expansion cost on every request.  This module keeps
the memoizable part of that work alive across builds:

:class:`SessionCache` — the **fragment cache** consulted by the builder
before its per-build memos.  Entries are keyed on *canonical equivalence
keys* (the same keys that unify sub-expressions inside one DAG, so they are
stable across builds), interned to dense ids, plus whatever order-sensitive
inputs the cached computation consumed:

* base-table properties per ``(table, alias, statistics digest)``;
* scan-choice entries — derived
  :class:`~repro.cost.estimation.LogicalProperties`, chosen access path and
  cost — per scan key, pushed-down predicate order, *prune tag* (the
  batch-referenced columns of the table, which drive early projection), and
  statistics digest;
* derived select/project/aggregate entries (properties + operation cost)
  keyed on the **content** of the child's properties object;
* join :class:`~repro.cost.estimation.LogicalProperties` per join key and
  ordered member properties;
* join-operation cost triples — the
  :func:`~repro.cost.algorithms.choose_join` outcome per
  ``(result, left, right)`` key triple;
* **join recipes**: for a join node whose partition enumeration is a pure
  function of its key (the PR 4 canonical-adjacency condition), the full
  ordered operation list, so a warm rebuild replays it without enumerating
  partitions or re-costing anything;
* weak-join resolution and predicate-implication results for the subsumption
  pass (pure predicate logic, catalog-independent, never invalidated).

**Content addressing** (PR 7) is what makes warm rebuilds *byte-identical*
rather than merely close: float folds in the estimator are evaluation-order
sensitive, so a cached value may only be reused when its inputs would fold to
bit-identical results.  Properties objects are interned by
:meth:`~repro.cost.estimation.LogicalProperties.content_key` — IEEE-754 bit
patterns of every statistic plus column insertion order — so two properties
with the same content id are interchangeable in every pure fold, and leaf
entries additionally embed the owning relation's statistics digest
(:meth:`~repro.catalog.schema.Table.stats_digest`).  Every downstream key is
derived from those leaf contents, so a cached fragment can never alias a
pre-mutation snapshot, and — unlike the identity-keyed scheme this replaced
(see ``tests/analysis_fixtures/historical_pr7.py``) — the whole cache
pickles: keys mean the same thing in any process, which is what enables the
multi-worker service path below.

**Invalidation.**  Every catalog-dependent entry carries the set of base
relations it reads.  :meth:`SessionCache.sync` runs once per build (never
per cache hit) and compares the catalog's per-relation statistics *digests*
(:meth:`~repro.catalog.catalog.Catalog.stats_digests`) against the last
synchronized snapshot — not just the mutation epochs, so even statistics
swapped in behind the catalog's back are caught.  A statistics change evicts
exactly the entries depending on a changed relation; a schema change
(:attr:`~repro.catalog.catalog.Catalog.schema_epoch`) clears everything.

**Bounds.**  Each cache family is a :class:`BoundedCache` — a dict with an
optional LRU ``maxsize`` (:class:`SessionCacheLimits`).  Content addressing
is what makes LRU eviction safe: an evicted fragment is recomputed to the
same content, hence the same interned ids, so surviving dependent entries
(recipes included) still replay byte-identically.  Unbounded by default;
long-lived services pass explicit limits (``SessionCacheLimits.bounded()``).

:class:`OptimizerSession` — the **service façade**: it owns a
:class:`SessionCache`, adds a batch-level plan cache (batch → built DAG and
per-algorithm :class:`~repro.optimizer.report.OptimizationResult`), and
exposes ``build_dag`` / ``optimize`` / ``optimize_all`` mirrors of
:class:`~repro.api.MQOptimizer`.  For multi-process deployments,
:meth:`OptimizerSession.snapshot_state` pickles the fragment cache and
:meth:`OptimizerSession.from_snapshot` rebuilds a warm session from those
bytes in another process; :class:`CacheWarmer` is a background thread that
drains a queue of *anticipated* batches through the session (the
queue-driven cache-population pattern of PartitionCache's pcache-observer),
so fragments are warm before a client asks.

Correctness is anchored the same way as every other fast path in this repo:
the session-backed builder must produce DAGs byte-identical
(``tests.generators.dag_fingerprint``) to the memo-free reference builder
(``DagBuilder(..., memoize=False)``) on cold builds, warm rebuilds, shifted
overlapping batches, post-invalidation rebuilds, and rebuilds from a pickled
snapshot in a different process — ``tests/test_session_cache.py`` enforces
all of them.

A session serializes its own calls with an internal lock, so a foreground
caller and a :class:`CacheWarmer` can share one session; for parallelism use
one session (or one worker process seeded via snapshot) per worker.
"""

from __future__ import annotations

import pickle
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.algebra.predicates import Predicate
from repro.api import Algorithm, MQOptimizer, PAPER_ALGORITHMS
from repro.catalog.catalog import Catalog
from repro.cost.estimation import LogicalProperties, PropsContentKey
from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.dag.builder import DagBuilder, Query, RecipeEntry
from repro.dag.nodes import Dag, JoinOp, ScanOp
from repro.optimizer import GreedyOptions, OptimizationResult
from repro.optimizer.report import DegradationLevel
from repro.service.resilience import (
    CorruptedEntry,
    OptimizeBudget,
    SnapshotError,
    open_snapshot,
    run_ladder,
    seal_snapshot,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.execution.result_cache import ResultCache

_MISSING: Any = object()


def _restore_bounded(
    maxsize: Optional[int],
    evictions: int,
    quarantined: int,
    items: List[Tuple[Any, Any]],
) -> "BoundedCache":
    """Unpickle helper for :class:`BoundedCache` (module-level for pickle)."""
    cache = BoundedCache(maxsize)
    for key, value in items:
        dict.__setitem__(cache, key, value)
    cache.evictions = evictions
    cache.quarantined = quarantined
    return cache


class BoundedCache(Dict[Any, Any]):
    """A dict with an optional LRU bound, used for every cache family.

    With ``maxsize=None`` (the default) this is a plain dict with near-zero
    overhead on the hot paths.  With a bound, :meth:`get`/:meth:`setdefault`
    refresh recency (delete + reinsert, exploiting dict insertion order) and
    :meth:`__setitem__` evicts the least-recently-used entry once full,
    counting evictions in :attr:`evictions`.  Eviction order is pure
    insertion/access order — no hash-order dependence — and pickling
    preserves entries, order, bound, and the fault counters.

    **Fault containment** (PR 9): a stored
    :class:`~repro.service.resilience.CorruptedEntry` poison wrapper is
    treated by :meth:`get` as a miss — the entry is evicted on sight
    (counted in :attr:`quarantined`) and the caller recomputes, which by
    content addressing is byte-identical to a cold miss.  A chaos harness
    (or an operator reproducing an incident) can set :attr:`fault_hook`, a
    callable invoked with ``(cache, key)`` before every lookup; hooks are
    deliberately not pickled — a snapshot never transports an injector.
    """

    def __init__(self, maxsize: Optional[int] = None) -> None:
        super().__init__()
        self.maxsize = maxsize
        self.evictions = 0
        #: Poisoned entries evicted on read (see class docstring).
        self.quarantined = 0
        #: Chaos hook: called as ``fault_hook(cache, key)`` before lookups.
        self.fault_hook: Optional[Callable[["BoundedCache", Any], None]] = None

    def get(self, key: Any, default: Any = None) -> Any:
        hook = self.fault_hook
        if hook is not None:
            hook(self, key)
        if self.maxsize is None:
            value = dict.get(self, key, _MISSING)
        else:
            value = dict.pop(self, key, _MISSING)
            if value is not _MISSING:
                dict.__setitem__(self, key, value)
        if value is _MISSING:
            return default
        if value.__class__ is CorruptedEntry:
            dict.__delitem__(self, key)
            self.quarantined += 1
            return default
        return value

    def setdefault(self, key: Any, default: Any = None) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            self[key] = default
            return default
        return value

    def __setitem__(self, key: Any, value: Any) -> None:
        maxsize = self.maxsize
        if maxsize is not None and len(self) >= maxsize and key not in self:
            dict.__delitem__(self, next(iter(self)))
            self.evictions += 1
        dict.__setitem__(self, key, value)

    def __reduce__(self) -> Tuple[Any, ...]:
        return (
            _restore_bounded,
            (self.maxsize, self.evictions, self.quarantined, list(self.items())),
        )


@dataclass(frozen=True)
class SessionCacheLimits:
    """Per-family LRU bounds for a :class:`SessionCache`.

    ``None`` means unbounded (the default everywhere: a single catalog's
    fragment universe is finite and warm-rebuild benchmarks want maximal
    reuse).  Long-lived services serving many distinct batches should pass
    explicit bounds — :meth:`bounded` is a ready-made profile.
    ``max_interned`` guards the id interners, which grow monotonically even
    when the entry caches are bounded: when the interned-key count passes the
    guard at a sync point, the session performs a counted full reset
    (:attr:`SessionCacheStats.interner_resets`) and starts cold.
    """

    base_props: Optional[int] = None
    scans: Optional[int] = None
    derived: Optional[int] = None
    join_props: Optional[int] = None
    join_ops: Optional[int] = None
    join_recipes: Optional[int] = None
    results: Optional[int] = None
    block_shapes: Optional[int] = None
    block_keys: Optional[int] = None
    weak_joins: Optional[int] = None
    implications: Optional[int] = None
    max_interned: Optional[int] = None

    @classmethod
    def bounded(cls, scale: int = 1) -> "SessionCacheLimits":
        """A bounded profile sized for a long-lived service (``scale``×)."""
        return cls(
            base_props=256 * scale,
            scans=1_024 * scale,
            derived=4_096 * scale,
            join_props=4_096 * scale,
            join_ops=8_192 * scale,
            join_recipes=2_048 * scale,
            results=512 * scale,
            block_shapes=256 * scale,
            block_keys=1_024 * scale,
            weak_joins=2_048 * scale,
            implications=8_192 * scale,
            max_interned=65_536 * scale,
        )


@dataclass
class SessionCacheStats:
    """Hit/miss/eviction counters of one :class:`SessionCache`.

    ``evicted_entries`` counts *invalidation* evictions (catalog changes and
    manual ``invalidate`` calls); ``lru_evictions`` counts capacity evictions
    from bounded families.  ``entries``, ``lru_evictions``, and
    ``quarantined`` are filled by :meth:`SessionCache.snapshot` (they are
    derived from the cache tables, not maintained incrementally);
    ``recipe_quarantines`` counts join recipes the builder evicted after a
    failed replay validation (self-healing: the recipe is re-recorded from
    the live enumeration).
    """

    hits: int = 0
    misses: int = 0
    entries: int = 0
    builds: int = 0
    stats_invalidations: int = 0
    schema_invalidations: int = 0
    evicted_entries: int = 0
    lru_evictions: int = 0
    interner_resets: int = 0
    quarantined: int = 0
    recipe_quarantines: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SessionCache:
    """Catalog-lifetime fragment cache shared by successive DAG builds.

    The cache is bound to one catalog and one cost model;
    :class:`~repro.dag.builder.DagBuilder` refuses a session built against
    different ones, because every cached value bakes their state in.  See the
    module docstring for the entry taxonomy, the content-addressing contract,
    and the invalidation rules.  The whole object pickles (the catalog
    travels with it); see :meth:`OptimizerSession.snapshot_state`.
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        limits: Optional[SessionCacheLimits] = None,
    ) -> None:
        self.catalog = catalog
        self.cost_model = cost_model
        self.limits = limits or SessionCacheLimits()
        # Canonical equivalence keys -> dense ids (hashed once per node per
        # build; the fragment caches below are keyed on the ids).
        self._key_ids: Dict[Hashable, int] = {}  # repro-lint: ok(M001) catalog-independent: interns canonical keys by value
        # LogicalProperties content keys -> dense ids.  Content addressing:
        # two properties objects with equal content keys fold to bit-identical
        # results everywhere, so they share one id — across builds, across
        # processes, and across recomputation after an LRU eviction.
        self._props_ids: Dict[PropsContentKey, int] = {}  # repro-lint: ok(M001) content interner; ids are stable because keys are values, never object identities
        # Relation statistics digests -> dense ids, embedded in leaf cache
        # keys so a leaf entry can never be served for different statistics.
        self._digest_ids: Dict[str, int] = {}  # repro-lint: ok(M001) content interner over catalog digests; stale leaf keys simply stop being looked up
        self._deps = _DepsInterner()
        self.empty_deps_id = self._deps.intern(frozenset())
        limits_ = self.limits
        # -- fragment caches (values end with the interned deps id) ----------
        #: (table, alias, stats digest id) -> (props, deps)
        self.base_props: BoundedCache = BoundedCache(limits_.base_props)
        #: (scan key id, predicate order, prune tag, stats digest id) ->
        #: (props, label, ScanOp, cost, deps)
        self.scans: BoundedCache = BoundedCache(limits_.scans)
        #: ("select", child props id, predicate order) /
        #: ("project", child props id, columns) /
        #: ("agg", child props id, agg key id) -> (props, cost, deps)
        self.derived: BoundedCache = BoundedCache(limits_.derived)
        #: (join key id, ordered member props ids) -> (props, deps)
        self.join_props: BoundedCache = BoundedCache(limits_.join_props)
        #: (result kid, left kid, right kid, result/left/right props ids) ->
        #: (JoinOp, cost, deps)
        self.join_ops: BoundedCache = BoundedCache(limits_.join_ops)
        #: (join key id, result props id) -> (entries, deps); one entry is
        #: (left kid, left props id, right kid, right props id, JoinOp,
        #: cost), in enumeration order.
        self.join_recipes: BoundedCache = BoundedCache(limits_.join_recipes)
        #: executed-result digest -> (ResultCacheEntry, deps); the backing
        #: store of :class:`repro.execution.result_cache.ResultCache` —
        #: rows actually computed by the executor, content-addressed by the
        #: physical subtree that produced them (catalog statistics digests
        #: included), offered back to later builds as base derivations.
        self.results: BoundedCache = BoundedCache(limits_.results)
        # -- catalog-independent caches (never *invalidated*; LRU only) ------
        #: (n, adjacency bitmasks, predicate bitmasks) -> _BlockShape: the
        #: connected-subset list, applicability, canonicality, and partition
        #: enumeration of a join block — pure combinatorics shared across
        #: blocks and builds (see :class:`repro.dag.builder._BlockShape`).
        self.block_shapes: BoundedCache = BoundedCache(limits_.block_shapes)  # repro-lint: ok(M001) pure combinatorics of the shape key; catalog-independent
        #: (shape key, ordered leaf key ids, block predicates) ->
        #: {mask: (join equivalence key, applicable predicates, key id)} —
        #: the canonical identity of every connected sub-set of a block, a
        #: pure function of the leaf keys and predicates (filled lazily).
        self.block_keys: BoundedCache = BoundedCache(limits_.block_keys)  # repro-lint: ok(M001) pure function of leaf keys + predicates; catalog-independent
        #: weak-join memo key -> ordered build plan (sorted weak scans plus
        #: ordered join predicates); pure predicate structure, see
        #: :func:`repro.dag.subsumption._weak_join_node`.
        self.weak_joins: BoundedCache = BoundedCache(limits_.weak_joins)  # repro-lint: ok(M001) pure predicate structure; catalog-independent
        #: (stronger predicate set, weaker predicate set) -> bool
        self.implications: BoundedCache = BoundedCache(limits_.implications)  # repro-lint: ok(M001) pure predicate logic; never invalidated
        # -- invalidation state ----------------------------------------------
        self._synced_schema_epoch = catalog.schema_epoch
        self._synced_digests = catalog.stats_digests()
        #: Bumped by every eviction (sync-driven or manual) so that holders
        #: of derived state — the :class:`OptimizerSession` plan cache — can
        #: notice invalidations performed directly on this object.
        self.generation = 0
        self.stats = SessionCacheStats()

    # -- interning (used by the builder) --------------------------------------
    def key_id(self, key: Hashable) -> int:
        ids = self._key_ids
        ident = ids.get(key)
        if ident is None:
            ident = len(ids)
            ids[key] = ident
        return ident

    def props_id(self, props: LogicalProperties) -> int:
        ids = self._props_ids
        key = props.content_key()
        ident = ids.get(key)
        if ident is None:
            ident = len(ids)
            ids[key] = ident
        return ident

    def table_digest_id(self, table: str) -> int:
        """Dense id of *table*'s current statistics digest (leaf key part)."""
        ids = self._digest_ids
        digest = self.catalog.table(table).stats_digest()
        ident = ids.get(digest)
        if ident is None:
            ident = len(ids)
            ids[digest] = ident
        return ident

    def deps_id(self, deps: FrozenSet[str]) -> int:
        return self._deps.intern(deps)

    def union_deps(self, a: int, b: int) -> int:
        return self._deps.union(a, b)

    def deps_of(self, deps_id: int) -> FrozenSet[str]:
        return self._deps.value(deps_id)

    def interned_count(self) -> int:
        """Total interned ids (keys, properties contents, digests, deps)."""
        return (
            len(self._key_ids)
            + len(self._props_ids)
            + len(self._digest_ids)
            + len(self._deps._values)
        )

    # -- invalidation ----------------------------------------------------------
    def sync(self) -> Optional[FrozenSet[str]]:
        """Bring the cache up to date with the catalog.

        Returns the set of relations whose statistics changed since the last
        sync (empty when nothing changed), or ``None`` when a schema change
        forced a full wipe.  Unlike the epoch fast path this replaced, the
        comparison is against per-relation statistics *content digests* on
        every call — so a table swapped into the catalog behind its back (no
        epoch bump) is treated exactly like a declared update.  The digests
        are memoized per table object, so an unchanged catalog costs one
        string comparison per relation.  Builds must be preceded by a sync;
        :meth:`~repro.dag.builder.DagBuilder.build` calls it itself, so
        direct builder users get it for free and :class:`OptimizerSession`
        merely calls it earlier to also refresh its plan cache.
        """
        catalog = self.catalog
        max_interned = self.limits.max_interned
        if max_interned is not None and self.interned_count() > max_interned:
            self.reset()
        if catalog.schema_epoch != self._synced_schema_epoch:
            self.clear()
            self.stats.schema_invalidations += 1
            changed: Optional[FrozenSet[str]] = None
            digests = catalog.stats_digests()
        else:
            digests = catalog.stats_digests()
            synced = self._synced_digests
            if digests == synced:
                return frozenset()
            names = set(digests)
            names.update(synced)
            changed = frozenset(
                name for name in names if digests.get(name) != synced.get(name)
            )
            self._evict(changed)
            self.stats.stats_invalidations += 1
        self._synced_schema_epoch = catalog.schema_epoch
        self._synced_digests = digests
        return changed

    def clear(self) -> None:
        """Drop every catalog-dependent entry (schema-change semantics)."""
        self.generation += 1
        for cache in self._catalog_dependent_caches():
            self.stats.evicted_entries += len(cache)
            cache.clear()

    def reset(self) -> None:
        """Start cold: drop the entry caches *and* the id interners.

        The interners grow monotonically (every distinct canonical key,
        properties content, and digest ever seen), so a bounded session needs
        a pressure valve: :meth:`sync` calls this when
        :attr:`SessionCacheLimits.max_interned` is exceeded.  Interned ids
        are embedded in cache keys and values, so everything keyed on them —
        the catalog-dependent families and ``block_keys`` — is dropped too;
        the purely predicate-keyed caches (``block_shapes``, ``weak_joins``,
        ``implications``) survive.
        """
        self.generation += 1
        self.stats.interner_resets += 1
        for cache in self._catalog_dependent_caches():
            self.stats.evicted_entries += len(cache)
            cache.clear()
        self.stats.evicted_entries += len(self.block_keys)
        self.block_keys.clear()
        self._key_ids.clear()
        self._props_ids.clear()
        self._digest_ids.clear()
        self._deps = _DepsInterner()
        self.empty_deps_id = self._deps.intern(frozenset())

    def invalidate(self, table: Optional[str] = None) -> None:
        """Manually evict entries depending on *table* (or everything)."""
        if table is None:
            self.clear()
        else:
            self._evict(frozenset((table.lower(),)))

    def _catalog_dependent_caches(self) -> Tuple[Dict[Any, Any], ...]:
        return (
            self.base_props,
            self.scans,
            self.derived,
            self.join_props,
            self.join_ops,
            self.join_recipes,
            self.results,
        )

    def _evict(self, changed: FrozenSet[str]) -> None:
        if not changed:
            return
        self.generation += 1
        deps_value = self._deps.value
        for cache in self._catalog_dependent_caches():
            stale = [
                key for key, entry in cache.items() if deps_value(entry[-1]) & changed
            ]
            self.stats.evicted_entries += len(stale)
            for key in stale:
                del cache[key]

    # -- introspection ---------------------------------------------------------
    def entry_count(self) -> int:
        return sum(len(cache) for cache in self._catalog_dependent_caches()) + len(
            self.weak_joins
        ) + len(self.implications)

    def family_sizes(self) -> Dict[str, int]:
        """Current entry count per cache family (bounded families stay
        under their configured ``maxsize`` by construction)."""
        return {name: len(cache) for name, cache in self._families().items()}

    def lru_evictions(self) -> int:
        """Total capacity evictions across every bounded family."""
        return sum(cache.evictions for cache in self._families().values())

    def quarantined_count(self) -> int:
        """Total poisoned entries evicted on read, across every family."""
        return sum(cache.quarantined for cache in self._families().values())

    def _families(self) -> Dict[str, BoundedCache]:
        return {
            "base_props": self.base_props,
            "scans": self.scans,
            "derived": self.derived,
            "join_props": self.join_props,
            "join_ops": self.join_ops,
            "join_recipes": self.join_recipes,
            "results": self.results,
            "block_shapes": self.block_shapes,
            "block_keys": self.block_keys,
            "weak_joins": self.weak_joins,
            "implications": self.implications,
        }

    def snapshot(self) -> SessionCacheStats:
        """A copy of the counters with derived fields filled in."""
        stats = SessionCacheStats(**vars(self.stats))
        stats.entries = self.entry_count()
        stats.lru_evictions = self.lru_evictions()
        stats.quarantined = self.quarantined_count()
        return stats


class _DepsInterner:
    """Intern relation-dependency frozensets to ids, with memoized unions.

    The builder annotates every equivalence node with the set of base
    relations under it, recomputed as a union over children for every node of
    every build.  Interning turns those frozensets into ints and makes the
    union of two already-seen sets a single dict lookup.
    """

    __slots__ = ("_ids", "_values", "_unions")

    def __init__(self) -> None:
        self._ids: Dict[FrozenSet[str], int] = {}
        self._values: List[FrozenSet[str]] = []
        self._unions: Dict[Tuple[int, int], int] = {}

    def intern(self, value: FrozenSet[str]) -> int:
        ident = self._ids.get(value)
        if ident is None:
            ident = len(self._values)
            self._ids[value] = ident
            self._values.append(value)
        return ident

    def value(self, ident: int) -> FrozenSet[str]:
        return self._values[ident]

    def union(self, a: int, b: int) -> int:
        if a == b:
            return a
        key = (a, b) if a < b else (b, a)
        cached = self._unions.get(key)
        if cached is None:
            cached = self.intern(self._values[a] | self._values[b])
            self._unions[key] = cached
        return cached

    def __getstate__(self) -> Tuple[Any, ...]:
        return (self._ids, self._values, self._unions)

    def __setstate__(self, state: Tuple[Any, ...]) -> None:
        self._ids, self._values, self._unions = state


@dataclass
class _PlanEntry:
    """One plan-cache slot: the built DAG plus per-algorithm results."""

    dag: Dag
    deps: FrozenSet[str]
    results: Dict[Hashable, OptimizationResult] = field(default_factory=dict)


#: Key type of the plan cache: ((query name, expression), ...).
BatchKey = Tuple[Tuple[str, object], ...]


class OptimizerSession:
    """A long-lived multi-query optimizer bound to one catalog.

    Where :class:`~repro.api.MQOptimizer` rebuilds every DAG cold, a session
    keeps two cache layers alive between calls:

    * a **plan cache**: an exact batch seen before (same query names and
      expressions, same catalog statistics) returns its previously built DAG
      — and previously computed optimization results — outright; bounded by
      ``max_plans`` (LRU) when given;
    * the :class:`SessionCache` **fragment cache**, which makes rebuilding a
      *different but overlapping* batch cheap by reusing scan choices, join
      costs, derived properties, and whole partition-enumeration recipes.

    Both layers follow the catalog's statistics digests: statistics changes
    evict only the affected relations' fragments (and the plans touching
    them), schema changes start the session cold.  See the module docstring
    for the invalidation contract and ``benchmarks/harness.py --warm`` for
    measured warm-rebuild speedups.

    Calls are serialized by an internal re-entrant lock, so a background
    :class:`CacheWarmer` can share the session with a foreground caller.
    For process-level parallelism, see :meth:`snapshot_state` /
    :meth:`from_snapshot` and ``benchmarks/harness.py --service``.

    Usage::

        session = OptimizerSession(catalog)
        result = session.optimize(batch, Algorithm.GREEDY)   # cold build
        result = session.optimize(batch, Algorithm.GREEDY)   # plan-cache hit
        catalog.update_statistics("orders", row_count=2_000_000)
        result = session.optimize(batch, Algorithm.GREEDY)   # rebuilt fresh
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        enable_subsumption: bool = True,
        enable_mqo: bool = True,
        cache_plans: bool = True,
        limits: Optional[SessionCacheLimits] = None,
        max_plans: Optional[int] = None,
        result_cache: bool = False,
    ) -> None:
        self.catalog = catalog
        self.cost_model = cost_model
        self.enable_subsumption = enable_subsumption
        self.enable_mqo = enable_mqo
        #: When ``False``, only the fragment cache is used: every call
        #: rebuilds the DAG (warm), which is what the byte-identity tests and
        #: the fragment-level warm-rebuild benchmarks exercise.
        self.cache_plans = cache_plans
        self.max_plans = max_plans
        self.cache = SessionCache(catalog, cost_model, limits=limits)
        #: Cross-batch executed-result store (``None`` when disabled): the
        #: façade over this session's ``results`` family.  Enable it, hand
        #: it to an :class:`~repro.execution.Executor`, and every DAG built
        #: here injects previously executed intermediates as base
        #: derivations (:mod:`repro.execution.result_cache`).
        self.result_cache: Optional["ResultCache"] = None
        if result_cache:
            # Imported lazily: repro.execution imports the DAG layer, which
            # this module sits above.
            from repro.execution.result_cache import ResultCache

            self.result_cache = ResultCache(self.cache)
        self._optimizer = MQOptimizer(
            catalog,
            cost_model=cost_model,
            enable_subsumption=enable_subsumption,
            enable_mqo=enable_mqo,
        )
        self._plans: BoundedCache = BoundedCache(max_plans)
        self._cache_generation = self.cache.generation
        self._lock = threading.RLock()
        self.plan_hits = 0
        self.plan_misses = 0
        #: Set by :meth:`from_snapshot_or_cold` when the snapshot was
        #: rejected and this session started cold instead.
        self.restore_error: Optional[SnapshotError] = None

    # -- multi-worker state sharing -------------------------------------------
    def snapshot_state(self, include_plans: bool = False) -> bytes:
        """Serialize the fragment cache (catalog included) for other workers.

        Content-addressed keys are what make the snapshot meaningful
        elsewhere: interned ids are dense ints whose meaning is pinned by the
        content values stored next to them, not by any ``id()`` of this
        process.  By default the plan cache is *not* included — workers
        rebuild plans cheaply through the warm fragments.  With
        ``include_plans=True`` the cached plans travel too: a DAG now pickles
        through its arena — a handful of flat id/float/flag columns (see
        :meth:`repro.dag.arena.DagArena.__getstate__`) rather than a pointer
        graph with one ``__reduce__`` record per node — which is what makes
        whole-plan snapshots small enough to fan out.  The pickled payload is
        sealed in a versioned header with a sha256 checksum
        (:func:`~repro.service.resilience.seal_snapshot`), so damaged bytes
        are rejected at restore time instead of unpickling garbage.  Restore
        with :meth:`from_snapshot` (both payload formats are recognized).
        """
        with self._lock:
            if not include_plans:
                payload = pickle.dumps(self.cache, protocol=pickle.HIGHEST_PROTOCOL)
            else:
                payload = pickle.dumps(
                    ("session-state", self.cache, self._plans),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            return seal_snapshot(payload)

    @classmethod
    def from_snapshot(cls, data: bytes, **options: Any) -> "OptimizerSession":
        """A new session primed with a pickled fragment cache.

        The bytes must carry the :meth:`snapshot_state` integrity header;
        truncated, bit-flipped, or foreign payloads raise
        :class:`~repro.service.resilience.SnapshotError` (a
        :class:`TypeError` subclass — the historical foreign-payload
        contract), and :meth:`from_snapshot_or_cold` is the documented
        fall-back for callers that can rebuild state.  Both payload formats
        are accepted: a bare :class:`SessionCache` (the default
        :meth:`snapshot_state`) or the tagged
        ``("session-state", cache, plans)`` tuple produced with
        ``include_plans=True``, in which case the plan cache is restored as
        well.  The snapshot carries its own catalog and cost model (and cache
        limits), so the restored session is self-contained; *options* are
        forwarded to the constructor (``cache_plans``, ``max_plans``,
        ``enable_subsumption``, ``enable_mqo``).  A snapshot transports
        *content*, not accounting: hit/miss/eviction counters restart at
        zero so every worker reports its own traffic, not its donor's.
        """
        payload = open_snapshot(data)
        try:
            state = pickle.loads(payload)
        except Exception as exc:  # checksum passed but the pickle is foreign
            raise SnapshotError(f"snapshot payload failed to unpickle: {exc}") from exc
        plans: Optional[BoundedCache] = None
        if (
            isinstance(state, tuple)
            and len(state) == 3
            and state[0] == "session-state"
        ):
            cache, plans = state[1], state[2]
            if not isinstance(plans, BoundedCache):
                raise SnapshotError(
                    f"snapshot plan cache is not a BoundedCache: {type(plans)!r}"
                )
        else:
            cache = state
        if not isinstance(cache, SessionCache):
            raise SnapshotError(
                f"snapshot does not contain a SessionCache: {type(cache)!r}"
            )
        cache.stats = SessionCacheStats()
        for family in cache._families().values():
            family.evictions = 0
            family.quarantined = 0
        session = cls(cache.catalog, cost_model=cache.cost_model, **options)
        session.cache = cache
        session._cache_generation = cache.generation
        if session.result_cache is not None:
            # Rebind the façade to the restored cache (the constructor bound
            # it to the fresh one that was just replaced); the restored
            # ``results`` family — cached rows included — keeps serving.
            from repro.execution.result_cache import ResultCache

            session.result_cache = ResultCache(cache)
        if plans is not None:
            session._plans = plans
        return session

    @classmethod
    def from_snapshot_or_cold(
        cls,
        data: bytes,
        catalog: Catalog,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        **options: Any,
    ) -> "OptimizerSession":
        """Restore from *data*, falling back to a cold session on damage.

        The self-healing deployment path: a worker handed corrupted snapshot
        bytes (truncation in transit, a flipped bit on disk) starts from a
        cold cache against *catalog* instead of crashing — strictly slower,
        never wrong, since every warm entry is merely a byte-identical
        shortcut for work the cold path recomputes.  The triggering
        :class:`~repro.service.resilience.SnapshotError` (or ``None`` on a
        clean restore) is kept in :attr:`restore_error` for observability.
        """
        try:
            # The snapshot carries its own catalog and cost model.
            session = cls.from_snapshot(data, **options)
        except SnapshotError as exc:
            session = cls(catalog, cost_model=cost_model, **options)
            session.restore_error = exc
        return session

    # -- plan cache ------------------------------------------------------------
    @staticmethod
    def _batch_key(queries: Sequence[Query]) -> BatchKey:
        return tuple((query.name, query.expression) for query in queries)

    def _sync(self) -> None:
        if self.cache.generation != self._cache_generation:
            # Someone invalidated the fragment cache directly (e.g.
            # ``session.cache.invalidate(...)``): the eviction bypassed this
            # façade, so drop every cached plan conservatively.
            self._plans.clear()
        changed = self.cache.sync()
        if changed is None:
            self._plans.clear()
        elif changed:
            stale = [key for key, entry in self._plans.items() if entry.deps & changed]
            for key in stale:
                del self._plans[key]
        self._cache_generation = self.cache.generation

    def _dag_entry(self, queries: Sequence[Query]) -> _PlanEntry:
        self._sync()
        key = self._batch_key(queries)
        if self.cache_plans:
            entry = self._plans.get(key)
            if entry is not None:
                self.plan_hits += 1
                return entry
            self.plan_misses += 1
        builder = DagBuilder(
            self.catalog,
            cost_model=self.cost_model,
            enable_subsumption=self.enable_subsumption and self.enable_mqo,
            session=self.cache,
            result_cache=self.result_cache,
        )
        dag = builder.build(list(queries))
        entry = _PlanEntry(dag, builder.session_deps())
        if self.cache_plans:
            self._plans[key] = entry
        return entry

    # -- public API ------------------------------------------------------------
    def build_dag(self, queries: Sequence[Query]) -> Dag:
        """Build (or fetch) the combined AND-OR DAG for *queries*.

        Repeated calls with an unchanged catalog reuse cached fragments; with
        :attr:`cache_plans` enabled an exact repeat returns the previously
        built :class:`~repro.dag.nodes.Dag` object itself.
        """
        with self._lock:
            return self._dag_entry(queries).dag

    def optimize(
        self,
        queries: Sequence[Query],
        algorithm: Union[str, Algorithm] = Algorithm.GREEDY,
        greedy_options: Optional[GreedyOptions] = None,
        budget: Optional[OptimizeBudget] = None,
    ) -> OptimizationResult:
        """Optimize a batch, reusing cached DAGs and results where possible.

        With a *budget*, the call runs under a wall-clock deadline and
        degrades gracefully on expiry (see
        :func:`repro.service.resilience.run_ladder`); the returned result
        carries a :class:`~repro.optimizer.report.DegradationReport`.  Only
        ``FULL`` (undegraded) results enter the plan cache — a degraded plan
        is a budget artifact, not the batch's answer — while cached full
        results are served to budgeted calls outright (they are instant and
        of maximal quality).  Without a *budget* the behavior — results,
        counters, cached objects — is bit-identical to pre-budget code.
        """
        algorithm = Algorithm.parse(algorithm)
        with self._lock:
            start = time.perf_counter()
            entry = self._dag_entry(queries)
            result_key = (algorithm, greedy_options)
            if self.cache_plans:
                cached = entry.results.get(result_key)
                if cached is not None:
                    self.plan_hits += 1
                    return self._adopt_cached_reads(cached)
                self.plan_misses += 1
            if budget is None:
                result = self._optimizer.optimize(
                    queries, algorithm, dag=entry.dag, greedy_options=greedy_options
                )
                if self.cache_plans:
                    entry.results[result_key] = result
                return self._adopt_cached_reads(result)
            result = run_ladder(
                entry.dag,
                algorithm,
                budget,
                start,
                greedy_options=greedy_options,
                enable_mqo=self.enable_mqo,
            )
            report = result.degradation
            if (
                self.cache_plans
                and report is not None
                and report.level is DegradationLevel.FULL
            ):
                entry.results[result_key] = result
            return self._adopt_cached_reads(result)

    def _adopt_cached_reads(self, result: OptimizationResult) -> OptimizationResult:
        """Swap injected cached reads into the chosen plan (result-cache on).

        Runs after the optimization search so the search itself stays
        bit-identical to a cache-off run; see
        :func:`repro.execution.result_cache.adopt_cached_reads`.  Idempotent,
        so plan-cache hits can pass through here again safely.
        """
        if self.result_cache is not None:
            from repro.execution.result_cache import adopt_cached_reads

            adopt_cached_reads(result.plan, self.result_cache)
        return result

    def optimize_all(
        self,
        queries: Sequence[Query],
        algorithms: Iterable[Union[str, Algorithm]] = PAPER_ALGORITHMS,
        greedy_options: Optional[GreedyOptions] = None,
    ) -> Dict[str, OptimizationResult]:
        """Run several algorithms on the (shared, possibly cached) DAG."""
        results: Dict[str, OptimizationResult] = {}
        for algorithm in algorithms:
            result = self.optimize(queries, algorithm, greedy_options=greedy_options)
            results[result.algorithm] = result
        return results

    # -- maintenance -----------------------------------------------------------
    def invalidate(self, table: Optional[str] = None) -> None:
        """Manually drop cached state for *table* (or the whole session)."""
        with self._lock:
            if table is None:
                self.cache.clear()
                self._plans.clear()
            else:
                name = table.lower()
                self.cache.invalidate(name)
                stale = [key for key, entry in self._plans.items() if name in entry.deps]
                for key in stale:
                    del self._plans[key]
            # The plan cache was evicted in step with the fragment cache here,
            # so the next _sync must not treat the generation bump as an
            # external invalidation and wipe the surviving plans.
            self._cache_generation = self.cache.generation

    def cache_stats(self) -> SessionCacheStats:
        """Fragment-cache counters (plan-cache hits are separate fields)."""
        return self.cache.snapshot()


class CacheWarmer:
    """Background cache-population worker (the pcache-observer pattern).

    A request-log observer, a scheduler, or any component that can
    *anticipate* batches enqueues them here; a daemon thread drains the queue
    through :meth:`OptimizerSession.build_dag`, so the session's fragment
    (and plan) caches are warm before a client submits the real request.
    The session's internal lock serializes the warmer against foreground
    calls, and correctness is unaffected either way: warming only populates
    caches whose reuse is byte-identical by construction.

    A raising batch never kills the drain thread.  Each failed batch is
    retried with bounded exponential backoff (``attempts`` tries total,
    sleeping ``backoff_s * 2**i`` between them — transient failures like a
    catalog mid-update are expected in a live service) before it is counted
    into :attr:`errors`; the most recent exception is kept in
    :attr:`last_error` for observability either way, and :attr:`retries`
    counts the extra attempts made.

    Usage::

        warmer = CacheWarmer(session)
        warmer.enqueue(anticipated_batch)
        ...
        warmer.close()   # drain outstanding batches, stop the thread
    """

    def __init__(
        self,
        session: OptimizerSession,
        attempts: int = 3,
        backoff_s: float = 0.01,
    ) -> None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts!r}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s!r}")
        self.session = session
        self.attempts = attempts
        self.backoff_s = backoff_s
        self.warmed = 0
        self.errors = 0
        self.retries = 0
        self.last_error: Optional[BaseException] = None
        self._queue: "queue.Queue[Optional[List[Query]]]" = queue.Queue()
        self._thread = threading.Thread(
            target=self._drain, name="repro-cache-warmer", daemon=True
        )
        self._thread.start()

    def enqueue(self, queries: Sequence[Query]) -> None:
        """Schedule *queries* to be built in the background."""
        self._queue.put(list(queries))

    def pending(self) -> int:
        """Batches enqueued but not yet warmed (approximate, by nature)."""
        return self._queue.qsize()

    def _drain(self) -> None:
        while True:
            batch = self._queue.get()
            try:
                if batch is None:
                    return
                for attempt in range(self.attempts):
                    try:
                        self.session.build_dag(batch)
                        self.warmed += 1
                        break
                    except Exception as exc:
                        self.last_error = exc
                        if attempt + 1 < self.attempts:
                            self.retries += 1
                            time.sleep(self.backoff_s * (2 ** attempt))
                else:
                    self.errors += 1
            finally:
                self._queue.task_done()

    def flush(self) -> None:
        """Block until every batch enqueued so far has been processed."""
        self._queue.join()

    def close(self) -> None:
        """Drain outstanding batches, then stop the worker thread."""
        self._queue.put(None)
        self._thread.join()
