"""Workloads used in the paper's performance study (Section 6).

* :mod:`repro.workloads.tpcd_queries` — structurally faithful forms of the
  stand-alone TPC-D queries Q2 (correlated and decorrelated), Q11 and Q15, and
  of the batched queries Q3, Q5, Q7, Q9, Q10.
* :mod:`repro.workloads.batch` — the batched composite queries BQ1..BQ5 and
  the "no overlap" renamed batch of Section 6.4.
* :mod:`repro.workloads.scaleup` — the PSP chain queries SQ1..SQ18 and the
  scale-up composites CQ1..CQ5 of Section 6.2.
* :mod:`repro.workloads.nested` — helpers for parameterized-query batches.
"""

from repro.workloads import batch, nested, scaleup, tpcd_queries

__all__ = ["tpcd_queries", "batch", "scaleup", "nested"]
