"""The batched TPC-D workload (Experiment 2) and the no-overlap batch (§6.4).

``BQ_i`` consists of the first *i* of the queries Q3, Q5, Q7, Q9, Q10, each
repeated twice with different selection constants.  The no-overlap batch
renames every base relation per query so that the workload has no common
sub-expressions at all, which is used to measure the pure overhead of the
multi-query machinery.
"""

from __future__ import annotations

from typing import Dict, List

from repro.algebra.expressions import Aggregate, Expression, Join, Project, Relation, Select
from repro.algebra.nested import CorrelatedSubqueryFilter
from repro.catalog.catalog import Catalog
from repro.catalog.tpcd import date_day
from repro.dag.builder import Query
from repro.workloads import tpcd_queries as tq


def _query_pairs() -> List[List[Query]]:
    """The five (query, repeated-with-different-constant) pairs of Experiment 2."""
    return [
        [tq.q3(segment="BUILDING", date=date_day(1995, 3, 15)),
         tq.q3(segment="AUTOMOBILE", date=date_day(1995, 6, 30))],
        [tq.q5(region="ASIA", start_year=1994),
         tq.q5(region="EUROPE", start_year=1995)],
        [tq.q7(nation1="FRANCE", nation2="GERMANY", start_year=1995),
         tq.q7(nation1="GERMANY", nation2="FRANCE", start_year=1995)],
        [tq.q9(max_size=20), tq.q9(max_size=35)],
        [tq.q10(start_date=date_day(1993, 10, 1), returnflag="R"),
         tq.q10(start_date=date_day(1994, 1, 1), returnflag="R")],
    ]


def batched_queries(i: int) -> List[Query]:
    """Composite query ``BQ_i`` (1 ≤ i ≤ 5)."""
    if not 1 <= i <= 5:
        raise ValueError("BQ index must be between 1 and 5")
    queries: List[Query] = []
    for pair in _query_pairs()[:i]:
        queries.extend(pair)
    # Make query names unique within the batch.
    renamed = []
    for index, query in enumerate(queries):
        renamed.append(Query(f"{query.name}#{index % 2 + 1}", query.expression))
    return renamed


def all_batched_workloads() -> Dict[str, List[Query]]:
    """``{"BQ1": [...], ..., "BQ5": [...]}`` as used by the Figure 8 benchmark."""
    return {f"BQ{i}": batched_queries(i) for i in range(1, 6)}


# ---------------------------------------------------------------------------
# The no-overlap batch of Section 6.4
# ---------------------------------------------------------------------------

def _rename_tables(expression: Expression, suffix: str) -> Expression:
    """Rewrite every base relation ``t`` to ``t<suffix>`` (aliases preserved)."""
    if isinstance(expression, Relation):
        return Relation(f"{expression.table}{suffix}", expression.name)
    if isinstance(expression, Select):
        return Select(_rename_tables(expression.child, suffix), expression.predicate)
    if isinstance(expression, Project):
        return Project(_rename_tables(expression.child, suffix), expression.columns)
    if isinstance(expression, Join):
        return Join(
            _rename_tables(expression.left, suffix),
            _rename_tables(expression.right, suffix),
            expression.predicate,
        )
    if isinstance(expression, Aggregate):
        return Aggregate(
            _rename_tables(expression.child, suffix),
            expression.group_by,
            expression.aggregates,
            expression.alias,
        )
    if isinstance(expression, CorrelatedSubqueryFilter):
        return CorrelatedSubqueryFilter(
            _rename_tables(expression.outer, suffix),
            _rename_tables(expression.invariant, suffix),
            expression.correlation,
            expression.aggregate,
            expression.outer_column,
            expression.op,
            expression.invariant_alias,
        )
    raise TypeError(f"cannot rename tables in {type(expression).__name__}")


def no_overlap_batch(catalog: Catalog) -> (List[Query], Catalog):
    """The Section 6.4 workload with all overlaps removed by renaming.

    Returns the renamed queries and a catalog extended with the renamed
    tables (same statistics).  The expected behaviour: the sharability
    detection finds no sharable node and Greedy returns the plain Volcano
    plan with only the DAG-expansion overhead.
    """
    base = [tq.q3(), tq.q5(), tq.q7(), tq.q9(), tq.q10()]
    renamed_queries: List[Query] = []
    extended = catalog
    for index, query in enumerate(base):
        suffix = f"_q{index}"
        extended = extended.renamed_copy(suffix)
        renamed_queries.append(
            Query(f"{query.name}{suffix}", _rename_tables(query.expression, suffix))
        )
    return renamed_queries, extended
