"""Parameterized-query batches (Section 5 of the paper).

Parameterized queries take parameter values used in selection predicates
(stored procedures are the common example); multiple invocations with
different parameters form a batch whose invariant parts can be shared.  The
helper here simply instantiates a query template for each parameter value and
returns the batch, which the ordinary multi-query machinery then optimizes —
the paper's point is precisely that no special-case code is needed.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.dag.builder import Query


def parameterized_batch(
    template: Callable[..., Query], parameter_values: Iterable, name: Optional[str] = None
) -> List[Query]:
    """Instantiate *template* once per parameter value.

    ``template`` is any callable returning a :class:`~repro.dag.builder.Query`
    (for example :func:`repro.workloads.tpcd_queries.q3`); each element of
    *parameter_values* is passed to it (tuples/dicts are unpacked).
    """
    queries: List[Query] = []
    for index, value in enumerate(parameter_values):
        if isinstance(value, dict):
            query = template(**value)
        elif isinstance(value, (tuple, list)):
            query = template(*value)
        else:
            query = template(value)
        prefix = name or query.name
        queries.append(Query(f"{prefix}[{index}]", query.expression))
    return queries
