"""The scale-up workload of Section 6.2.

Component query ``SQ_i`` is a *pair* of chain queries over the five
consecutive relations ``PSP_i .. PSP_{i+4}`` with join condition
``PSP_j.SP = PSP_{j+1}.P`` (j = i .. i+3); one member of the pair has the
selection ``PSP_i.NUM >= a_i`` and the other ``PSP_i.NUM >= b_i`` with
``a_i != b_i``.

Composite query ``CQ_i`` consists of ``SQ_1 .. SQ_{4i-2}``, so it touches
``4i + 2`` relations and has ``32i - 16`` join predicates and ``8i - 4``
selection predicates; ``CQ_5`` is on 22 relations with 144 join predicates and
36 selections, exactly as in the paper.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.algebra import Join, Relation, Select, col, eq, ge
from repro.dag.builder import Query

#: Chain length of every component query (five relations, per the paper).
CHAIN_LENGTH = 5


def _chain_query(start: int, threshold: int, name: str) -> Query:
    """One chain query over ``PSP_start .. PSP_{start+4}``."""
    first = Select(
        Relation(f"psp{start}"), ge(col(f"psp{start}", "num"), threshold)
    )
    expression = first
    for j in range(start, start + CHAIN_LENGTH - 1):
        predicate = eq(col(f"psp{j}", "sp"), col(f"psp{j + 1}", "p"))
        expression = Join(expression, Relation(f"psp{j + 1}"), predicate)
    return Query(name, expression)


def component_query(i: int, seed: int = 42) -> List[Query]:
    """``SQ_i``: the pair of chain queries starting at relation ``PSP_i``."""
    if i < 1:
        raise ValueError("component query index must be >= 1")
    rng = random.Random(seed + i)
    a = rng.randint(100, 500)
    b = a + rng.randint(1, 400)
    return [
        _chain_query(i, a, f"SQ{i}a"),
        _chain_query(i, b, f"SQ{i}b"),
    ]


def scaleup_queries(i: int, seed: int = 42) -> List[Query]:
    """Composite query ``CQ_i`` (1 ≤ i ≤ 5): component queries SQ1..SQ(4i-2)."""
    if not 1 <= i <= 5:
        raise ValueError("CQ index must be between 1 and 5")
    queries: List[Query] = []
    for component in range(1, 4 * i - 2 + 1):
        queries.extend(component_query(component, seed=seed))
    return queries


def all_scaleup_workloads(seed: int = 42) -> Dict[str, List[Query]]:
    """``{"CQ1": [...], ..., "CQ5": [...]}`` as used by the Figure 9/10 benches."""
    return {f"CQ{i}": scaleup_queries(i, seed=seed) for i in range(1, 6)}


def relations_required(i: int) -> int:
    """Number of PSP relations referenced by ``CQ_i`` (= 4i + 2)."""
    return 4 * i + 2
