"""TPC-D queries used in the paper's experiments, in algebraic form.

The queries preserve the join graphs, selections, aggregations and — for Q2,
Q11 and Q15 — the nested/view structure that creates the common
sub-expressions the paper's algorithms exploit.  Arithmetic inside aggregate
expressions (e.g. ``sum(l_extendedprice * (1 - l_discount))``) is simplified
to the base column, which does not affect the optimizer in any way (the cost
model sees only cardinalities and widths).

Every query takes its selection constants as keyword arguments so that the
batched workload (Section 6.1, Experiment 2) can repeat a query with two
different constants.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.algebra import (
    Aggregate,
    AggregateFunction,
    Join,
    Relation,
    Select,
    and_,
    col,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)
from repro.algebra.expressions import Expression
from repro.algebra.nested import CorrelatedSubqueryFilter
from repro.catalog.tpcd import date_day
from repro.dag.builder import Query


def _join_all(*parts: Any) -> Expression:
    """Left-deep join of the given expressions/predicates.

    ``parts`` alternates expressions and the predicate joining the next
    expression; the first element is an expression.
    """
    expression = parts[0]
    index = 1
    while index < len(parts):
        predicate = parts[index]
        right = parts[index + 1]
        expression = Join(expression, right, predicate)
        index += 2
    return expression


# ---------------------------------------------------------------------------
# Q2 — minimum-cost supplier (correlated nested query)
# ---------------------------------------------------------------------------

def _q2_outer(size: int, region: str) -> Expression:
    part = Select(Relation("part"), eq(col("part", "p_size"), size))
    partsupp = Relation("partsupp")
    supplier = Relation("supplier")
    nation = Relation("nation")
    region_rel = Select(Relation("region"), eq(col("region", "r_name"), region))
    return _join_all(
        part,
        eq(col("part", "p_partkey"), col("partsupp", "ps_partkey")),
        partsupp,
        eq(col("supplier", "s_suppkey"), col("partsupp", "ps_suppkey")),
        supplier,
        eq(col("supplier", "s_nationkey"), col("nation", "n_nationkey")),
        nation,
        eq(col("nation", "n_regionkey"), col("region", "r_regionkey")),
        region_rel,
    )


def _q2_invariant(region: str) -> Expression:
    partsupp = Relation("partsupp")
    supplier = Relation("supplier")
    nation = Relation("nation")
    region_rel = Select(Relation("region"), eq(col("region", "r_name"), region))
    return _join_all(
        partsupp,
        eq(col("supplier", "s_suppkey"), col("partsupp", "ps_suppkey")),
        supplier,
        eq(col("supplier", "s_nationkey"), col("nation", "n_nationkey")),
        nation,
        eq(col("nation", "n_regionkey"), col("region", "r_regionkey")),
        region_rel,
    )


def q2(size: int = 15, region: str = "EUROPE") -> Query:
    """TPC-D Q2 with correlated evaluation of the nested sub-query."""
    outer = _q2_outer(size, region)
    invariant = _q2_invariant(region)
    expression = CorrelatedSubqueryFilter(
        outer=outer,
        invariant=invariant,
        correlation=(eq(col("partsupp", "ps_partkey"), col("part", "p_partkey")),),
        aggregate=AggregateFunction("min", col("partsupp", "ps_supplycost"), "min_supplycost"),
        outer_column=col("partsupp", "ps_supplycost"),
        op="=",
    )
    return Query("Q2", expression)


def q2_modified(size: int = 15, region: str = "EUROPE") -> Query:
    """The Q2 variant of Section 6.1 with an inequality correlation predicate.

    The paper uses this variant (``PS_PARTKEY != P_PARTKEY`` and ``not in``)
    to show the benefit of multi-query optimization when decorrelation is not
    applicable.
    """
    outer = _q2_outer(size, region)
    invariant = _q2_invariant(region)
    expression = CorrelatedSubqueryFilter(
        outer=outer,
        invariant=invariant,
        correlation=(ne(col("partsupp", "ps_partkey"), col("part", "p_partkey")),),
        aggregate=AggregateFunction("min", col("partsupp", "ps_supplycost"), "min_supplycost"),
        outer_column=col("partsupp", "ps_supplycost"),
        op="=",
    )
    return Query("Q2-mod", expression)


def q2_decorrelated(size: int = 15, region: str = "EUROPE") -> List[Query]:
    """Q2-D: the (manually) decorrelated version of Q2 — a batch of queries.

    The first query computes the per-part minimum supply cost over the
    invariant join; the second joins the outer query with that result.  The
    invariant join is a common sub-expression of the two queries, which is
    where multi-query optimization pays off.
    """
    view = Aggregate(
        _q2_invariant(region),
        group_by=(col("partsupp", "ps_partkey"),),
        aggregates=(AggregateFunction("min", col("partsupp", "ps_supplycost"), "min_supplycost"),),
        alias="minps",
    )
    outer = _q2_outer(size, region)
    main = Join(
        outer,
        view,
        and_(
            eq(col("partsupp", "ps_partkey"), col("minps", "ps_partkey")),
            eq(col("partsupp", "ps_supplycost"), col("minps", "min_supplycost")),
        ),
    )
    return [Query("Q2-D/view", view), Query("Q2-D/main", main)]


# ---------------------------------------------------------------------------
# Q11 — important stock identification (shared join, two aggregations)
# ---------------------------------------------------------------------------

def q11(nation: str = "GERMANY") -> Query:
    """TPC-D Q11: the partsupp/supplier/nation join feeds two aggregations."""
    def shared_join() -> Expression:
        return _join_all(
            Relation("partsupp"),
            eq(col("partsupp", "ps_suppkey"), col("supplier", "s_suppkey")),
            Relation("supplier"),
            eq(col("supplier", "s_nationkey"), col("nation", "n_nationkey")),
            Select(Relation("nation"), eq(col("nation", "n_name"), nation)),
        )

    by_part = Aggregate(
        shared_join(),
        group_by=(col("partsupp", "ps_partkey"),),
        aggregates=(AggregateFunction("sum", col("partsupp", "ps_supplycost"), "value"),),
        alias="bypart",
    )
    total = Aggregate(
        shared_join(),
        group_by=(),
        aggregates=(AggregateFunction("sum", col("partsupp", "ps_supplycost"), "total_value"),),
        alias="total",
    )
    expression = Join(by_part, total, gt(col("bypart", "value"), col("total", "total_value")))
    return Query("Q11", expression)


# ---------------------------------------------------------------------------
# Q15 — top supplier (view referenced twice)
# ---------------------------------------------------------------------------

def q15(start_year: int = 1996) -> Query:
    """TPC-D Q15: the ``revenue`` view is used both directly and under max()."""
    start = date_day(start_year, 1, 1)
    end = date_day(start_year, 4, 1)

    def revenue_view() -> Expression:
        filtered = Select(
            Relation("lineitem"),
            and_(
                ge(col("lineitem", "l_shipdate"), start),
                lt(col("lineitem", "l_shipdate"), end),
            ),
        )
        return Aggregate(
            filtered,
            group_by=(col("lineitem", "l_suppkey"),),
            aggregates=(AggregateFunction("sum", col("lineitem", "l_extendedprice"), "total_revenue"),),
            alias="revenue",
        )

    max_revenue = Aggregate(
        revenue_view(),
        group_by=(),
        aggregates=(AggregateFunction("max", col("revenue", "total_revenue"), "max_revenue"),),
        alias="maxrev",
    )
    expression = _join_all(
        Relation("supplier"),
        eq(col("supplier", "s_suppkey"), col("revenue", "l_suppkey")),
        revenue_view(),
        eq(col("revenue", "total_revenue"), col("maxrev", "max_revenue")),
        max_revenue,
    )
    return Query("Q15", expression)


# ---------------------------------------------------------------------------
# The batched queries: Q3, Q5, Q7, Q9, Q10
# ---------------------------------------------------------------------------

def q3(segment: str = "BUILDING", date: int = date_day(1995, 3, 15)) -> Query:
    """TPC-D Q3: shipping priority."""
    customer = Select(Relation("customer"), eq(col("customer", "c_mktsegment"), segment))
    orders = Select(Relation("orders"), lt(col("orders", "o_orderdate"), date))
    lineitem = Select(Relation("lineitem"), gt(col("lineitem", "l_shipdate"), date))
    joined = _join_all(
        customer,
        eq(col("customer", "c_custkey"), col("orders", "o_custkey")),
        orders,
        eq(col("lineitem", "l_orderkey"), col("orders", "o_orderkey")),
        lineitem,
    )
    expression = Aggregate(
        joined,
        group_by=(col("lineitem", "l_orderkey"), col("orders", "o_orderdate")),
        aggregates=(AggregateFunction("sum", col("lineitem", "l_extendedprice"), "revenue"),),
        alias="q3",
    )
    return Query("Q3", expression)


def q5(region: str = "ASIA", start_year: int = 1994) -> Query:
    """TPC-D Q5: local supplier volume."""
    start = date_day(start_year, 1, 1)
    end = date_day(start_year + 1, 1, 1)
    orders = Select(
        Relation("orders"),
        and_(ge(col("orders", "o_orderdate"), start), lt(col("orders", "o_orderdate"), end)),
    )
    region_rel = Select(Relation("region"), eq(col("region", "r_name"), region))
    joined = _join_all(
        Relation("customer"),
        eq(col("customer", "c_custkey"), col("orders", "o_custkey")),
        orders,
        eq(col("lineitem", "l_orderkey"), col("orders", "o_orderkey")),
        Relation("lineitem"),
        and_(
            eq(col("lineitem", "l_suppkey"), col("supplier", "s_suppkey")),
            eq(col("customer", "c_nationkey"), col("supplier", "s_nationkey")),
        ),
        Relation("supplier"),
        eq(col("supplier", "s_nationkey"), col("nation", "n_nationkey")),
        Relation("nation"),
        eq(col("nation", "n_regionkey"), col("region", "r_regionkey")),
        region_rel,
    )
    expression = Aggregate(
        joined,
        group_by=(col("nation", "n_name"),),
        aggregates=(AggregateFunction("sum", col("lineitem", "l_extendedprice"), "revenue"),),
        alias="q5",
    )
    return Query("Q5", expression)


def q7(nation1: str = "FRANCE", nation2: str = "GERMANY", start_year: int = 1995) -> Query:
    """TPC-D Q7: volume shipping (two nation instances — a self reference)."""
    start = date_day(start_year, 1, 1)
    end = date_day(start_year + 1, 12, 31)
    lineitem = Select(
        Relation("lineitem"),
        and_(ge(col("lineitem", "l_shipdate"), start), le(col("lineitem", "l_shipdate"), end)),
    )
    n1 = Select(Relation("nation", "n1"), eq(col("n1", "n_name"), nation1))
    n2 = Select(Relation("nation", "n2"), eq(col("n2", "n_name"), nation2))
    joined = _join_all(
        Relation("supplier"),
        eq(col("supplier", "s_suppkey"), col("lineitem", "l_suppkey")),
        lineitem,
        eq(col("orders", "o_orderkey"), col("lineitem", "l_orderkey")),
        Relation("orders"),
        eq(col("customer", "c_custkey"), col("orders", "o_custkey")),
        Relation("customer"),
        eq(col("supplier", "s_nationkey"), col("n1", "n_nationkey")),
        n1,
        eq(col("customer", "c_nationkey"), col("n2", "n_nationkey")),
        n2,
    )
    expression = Aggregate(
        joined,
        group_by=(col("n1", "n_name"), col("n2", "n_name")),
        aggregates=(AggregateFunction("sum", col("lineitem", "l_extendedprice"), "revenue"),),
        alias="q7",
    )
    return Query("Q7", expression)


def q9(max_size: int = 20) -> Query:
    """TPC-D Q9: product type profit measure (size filter instead of LIKE)."""
    part = Select(Relation("part"), lt(col("part", "p_size"), max_size))
    joined = _join_all(
        part,
        eq(col("part", "p_partkey"), col("lineitem", "l_partkey")),
        Relation("lineitem"),
        and_(
            eq(col("partsupp", "ps_partkey"), col("lineitem", "l_partkey")),
            eq(col("partsupp", "ps_suppkey"), col("lineitem", "l_suppkey")),
        ),
        Relation("partsupp"),
        eq(col("supplier", "s_suppkey"), col("lineitem", "l_suppkey")),
        Relation("supplier"),
        eq(col("orders", "o_orderkey"), col("lineitem", "l_orderkey")),
        Relation("orders"),
        eq(col("supplier", "s_nationkey"), col("nation", "n_nationkey")),
        Relation("nation"),
    )
    expression = Aggregate(
        joined,
        group_by=(col("nation", "n_name"),),
        aggregates=(AggregateFunction("sum", col("lineitem", "l_extendedprice"), "profit"),),
        alias="q9",
    )
    return Query("Q9", expression)


def q10(start_date: int = date_day(1993, 10, 1), returnflag: str = "R") -> Query:
    """TPC-D Q10: returned item reporting."""
    orders = Select(
        Relation("orders"),
        and_(
            ge(col("orders", "o_orderdate"), start_date),
            lt(col("orders", "o_orderdate"), start_date + 90),
        ),
    )
    lineitem = Select(Relation("lineitem"), eq(col("lineitem", "l_returnflag"), returnflag))
    joined = _join_all(
        Relation("customer"),
        eq(col("customer", "c_custkey"), col("orders", "o_custkey")),
        orders,
        eq(col("lineitem", "l_orderkey"), col("orders", "o_orderkey")),
        lineitem,
        eq(col("customer", "c_nationkey"), col("nation", "n_nationkey")),
        Relation("nation"),
    )
    expression = Aggregate(
        joined,
        group_by=(col("customer", "c_custkey"), col("nation", "n_name")),
        aggregates=(AggregateFunction("sum", col("lineitem", "l_extendedprice"), "revenue"),),
        alias="q10",
    )
    return Query("Q10", expression)


def standalone_workloads() -> Dict[str, List[Query]]:
    """The four stand-alone workloads of Experiment 1 (Figure 6), by name."""
    return {
        "Q2": [q2()],
        "Q2-D": q2_decorrelated(),
        "Q11": [q11()],
        "Q15": [q15()],
    }
