"""C001: id()-keyed cache without a strong reference pinning the object."""


class PropsCache:
    def __init__(self):
        self._ids = {}

    def props_id(self, props) -> int:
        # The object can be collected and its id recycled by a different
        # object, silently aliasing two cache entries.
        key = id(props)
        if key not in self._ids:
            self._ids[key] = len(self._ids)
        return self._ids[key]
