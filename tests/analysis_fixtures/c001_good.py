"""C001 fix: a companion strong reference keeps every id() alive."""


class PropsCache:
    def __init__(self):
        self._ids = {}
        self._refs = []

    def props_id(self, props) -> int:
        key = id(props)
        if key not in self._ids:
            self._ids[key] = len(self._ids)
            self._refs.append(props)  # pins the object: ids never recycle
        return self._ids[key]
