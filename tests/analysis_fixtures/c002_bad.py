"""C002: mutating documented frozen / copy-on-write structures."""


def widen(props, ref, stat):
    # `columns` dictionaries are shared copy-on-write between properties
    # instances; writing through one mutates them all.
    props.columns[ref] = stat
    return props


def escape_hatch(instance, value):
    object.__setattr__(instance, "cached", value)
    return instance


def bulk_update(props, extra):
    props.columns.update(extra)
    return props
