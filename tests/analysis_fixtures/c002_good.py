"""C002 fixes: copy instead of mutating shared frozen state."""


def widen(props, make_props, ref, stat):
    columns = dict(props.columns)
    columns[ref] = stat
    return make_props(props.rows, columns)


class Memoized:
    # object.__setattr__ inside __init__/__post_init__ is the sanctioned
    # frozen-dataclass initialization idiom and is not flagged.
    def __init__(self, value):
        object.__setattr__(self, "value", value)
