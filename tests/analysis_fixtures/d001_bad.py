"""D001: unordered iterables materialized in hash order."""

from typing import FrozenSet


def key_from_set(relations: FrozenSet[str]) -> tuple:
    return tuple(relations)  # hash order leaks into the key


def listcomp_over_set(columns: FrozenSet[str]) -> list:
    return [c.upper() for c in columns]


def join_names(aliases: FrozenSet[str]) -> str:
    return ", ".join(aliases)


def tie_break(costs: FrozenSet[float]) -> float:
    return min(costs, key=lambda c: round(c, 6))  # key= ties resolve in hash order


def appended(tables: FrozenSet[str]) -> list:
    out = []
    for table in tables:
        out.append(table)
    return out
