"""D001 fixes: sort before materializing."""

from typing import FrozenSet


def key_from_set(relations: FrozenSet[str]) -> tuple:
    return tuple(sorted(relations))


def listcomp_over_set(columns: FrozenSet[str]) -> list:
    return [c.upper() for c in sorted(columns)]


def join_names(aliases: FrozenSet[str]) -> str:
    return ", ".join(sorted(aliases))


def tie_break(costs: FrozenSet[float]) -> float:
    return min(sorted(costs), key=lambda c: round(c, 6))


def appended(tables: FrozenSet[str]) -> list:
    out = []
    for table in sorted(tables):
        out.append(table)
    return out


def membership_is_fine(tables: FrozenSet[str], name: str) -> bool:
    # Reading a set without materializing its order is not a finding.
    return name in tables and len(tables) > 1
