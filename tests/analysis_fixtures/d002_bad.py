"""D002: order-sensitive float folds over unordered sources."""

from typing import FrozenSet


def selectivity_product(selectivities: FrozenSet[float]) -> float:
    product = 1.0
    for s in selectivities:
        product *= s  # float * is not associative: result varies with hash order
    return product


def cost_sum(costs: FrozenSet[float]) -> float:
    return sum(costs)  # float + is not associative either
