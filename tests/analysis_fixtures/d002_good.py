"""D002 fixes: fix a canonical fold order first."""

from typing import FrozenSet


def selectivity_product(selectivities: FrozenSet[float]) -> float:
    product = 1.0
    for s in sorted(selectivities):
        product *= s
    return product


def cost_sum(costs: FrozenSet[float]) -> float:
    return sum(sorted(costs))
