"""Verbatim reduction of the PR 2 hash-seed bug (``_join_properties``).

The join selectivity was folded over a ``frozenset`` of predicates; float
multiplication is not associative, so the estimated row count — and through
it materialization costs and near-tie plan choices — varied with
``PYTHONHASHSEED``.  Fixed by folding in sorted predicate order.
"""


def _join_properties(estimator, cross, predicates):
    # ``predicates`` arrives as frozenset(conjuncts) from the block splitter.
    predicates = frozenset(predicates)
    selectivity = 1.0
    for predicate in predicates:
        selectivity *= estimator.predicate_selectivity(predicate, cross)
    return cross.with_rows(cross.rows * selectivity)
