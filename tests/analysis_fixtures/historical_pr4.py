"""Verbatim reduction of the PR 4 hash-seed bug (subsumption residuals).

The residual conjuncts of a subsumption selection were star-unpacked out of
a set difference straight into ``and_``; conjunct order is part of the
resulting ``Conjunction`` (and hence of operator keys and labels), so the
DAG fingerprint varied with ``PYTHONHASHSEED``.  Fixed by sorting the
residual conjuncts before building the predicate.
"""


def residual_predicate(and_, stronger_conjuncts, weaker_conjuncts):
    residual = frozenset(stronger_conjuncts) - frozenset(weaker_conjuncts)
    return and_(*residual)
