"""Verbatim reduction of the PR 7 identity-keying bug (session caches).

``SessionCache.props_id`` interned ``LogicalProperties`` objects by
``id(props)``.  The shipped variant kept a companion list pinning every
object (which silences C001's direct target, id recycling after GC), yet the
deeper aliasing class remained: a fragment keyed through the identity of a
*pre-mutation* properties object kept hitting after the statistics it
captured were swapped behind the catalog's back, and the ids were
meaningless in any other process, so a populated cache could never be
pickled and shared.  PR 7 replaced identity keys with content-addressed ones
(``LogicalProperties.content_key`` + per-relation statistics digests).  The
reduction below drops the pinning list so the lint rule fires on the raw
pattern itself.
"""


class SessionCache:
    def __init__(self):
        self._props_ids = {}

    def props_id(self, props):
        ident = self._props_ids.get(id(props))
        if ident is None:
            ident = len(self._props_ids)
            self._props_ids[id(props)] = ident
        return ident
