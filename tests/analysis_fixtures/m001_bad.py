"""M001: cache attribute missing from the class's invalidation registry.

``SessionCache`` is registered in ``[tool.repro-lint.registries]`` as owning
``_catalog_dependent_caches``; every dict/set-valued attribute its __init__
creates must appear there (or carry a justified suppression).
"""


class SessionCache:
    def __init__(self, catalog):
        self.catalog = catalog
        self.scans = {}
        self.derived = {}
        self.orphan = {}  # never registered: survives invalidation, goes stale

    def _catalog_dependent_caches(self):
        return (self.scans, self.derived)
