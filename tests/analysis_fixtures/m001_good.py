"""M001 fixes: every cache is registered, or justifies why it need not be."""


class SessionCache:
    def __init__(self, catalog):
        self.catalog = catalog
        self.scans = {}
        self.derived = {}
        self.implications = {}  # repro-lint: ok(M001) pure predicate logic; never invalidated

    def _catalog_dependent_caches(self):
        return (self.scans, self.derived)


class UnregisteredClass:
    # Classes outside [tool.repro-lint.registries] are not cache owners;
    # their dict attributes are plain state, not findings.
    def __init__(self):
        self.state = {}
