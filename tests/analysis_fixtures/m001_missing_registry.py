"""M001: a registered cache-owning class with no registry method at all."""


class SessionCache:
    def __init__(self, catalog):
        self.catalog = catalog
        self.scans = {}
