"""M001: a result-cache attribute missing from the invalidation registry.

``ResultCache`` is registered in ``[tool.repro-lint.registries]`` as owning
``clear``: every dict/set-valued attribute its ``__init__`` creates must be
wiped there (or carry a justified suppression).  An interner that survives
``clear`` would keep serving tokens derived from evicted entries — exactly
the stale-shortcut class of bug the rule exists for.
"""


class ResultCache:
    def __init__(self, session):
        self.session = session
        self._pred_tokens = {}
        self._stale_digests = {}  # never cleared: outlives a full wipe

    def clear(self):
        self._pred_tokens.clear()
