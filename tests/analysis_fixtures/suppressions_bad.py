"""Suppression meta-rules: bare, unknown and unused suppressions."""

from typing import FrozenSet


def bare(relations: FrozenSet[str]) -> tuple:
    return tuple(relations)  # repro-lint: ok(D001)


def unknown(relations: FrozenSet[str]) -> tuple:
    return tuple(relations)  # repro-lint: ok(D999) no such rule


def unused(relations: FrozenSet[str]) -> tuple:
    return tuple(sorted(relations))  # repro-lint: ok(D001) already sorted, nothing to silence
