"""Well-formed, justified, used suppressions silence their finding."""

from typing import FrozenSet


def trailing(relations: FrozenSet[str]) -> tuple:
    return tuple(relations)  # repro-lint: ok(D001) feeds a commutative bitmask OR only


def standalone(relations: FrozenSet[str]) -> tuple:
    # repro-lint: ok(D001) consumed order-insensitively by the caller
    return tuple(relations)
