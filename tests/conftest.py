"""Shared fixtures for the test suite."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro import MQOptimizer
from repro.catalog import Catalog, psp_catalog, tpcd_catalog
from repro.catalog.schema import make_table


@pytest.fixture(scope="session")
def tpcd() -> Catalog:
    return tpcd_catalog(1.0)


@pytest.fixture(scope="session")
def psp() -> Catalog:
    return psp_catalog()


@pytest.fixture(scope="session")
def tiny_catalog() -> Catalog:
    """A small generic catalog (tables r, s, t, p) used by unit tests."""
    catalog = Catalog()
    catalog.add_table(
        make_table(
            "r",
            10_000,
            [("a", 8, 10_000), ("b", 8, 100), ("v", 8, 1_000)],
            primary_key="a",
            numeric_bounds={"v": (0, 1_000), "b": (0, 100)},
        )
    )
    catalog.add_table(
        make_table(
            "s",
            20_000,
            [("a", 8, 10_000), ("c", 8, 500), ("w", 8, 1_000)],
            primary_key="a",
            numeric_bounds={"w": (0, 1_000)},
        )
    )
    catalog.add_table(
        make_table(
            "t",
            5_000,
            [("c", 8, 500), ("d", 8, 50)],
            primary_key="c",
        )
    )
    catalog.add_table(
        make_table(
            "p",
            1_000,
            [("d", 8, 50), ("e", 8, 1_000)],
            primary_key="d",
        )
    )
    return catalog


@pytest.fixture(scope="session")
def medium_catalog() -> Catalog:
    """Like ``tiny_catalog`` but with table sizes large enough that sharing
    intermediate results actually pays off (used by the optimizer tests)."""
    catalog = Catalog()
    catalog.add_table(
        make_table(
            "r",
            500_000,
            [("a", 8, 500_000), ("b", 8, 100), ("v", 8, 1_000)],
            primary_key="a",
            numeric_bounds={"v": (0, 1_000), "b": (0, 100)},
        )
    )
    catalog.add_table(
        make_table(
            "s",
            1_000_000,
            [("a", 8, 500_000), ("c", 8, 50_000), ("w", 8, 1_000)],
            primary_key="a",
            numeric_bounds={"w": (0, 1_000)},
        )
    )
    catalog.add_table(
        make_table("t", 250_000, [("c", 8, 50_000), ("d", 8, 5_000)], primary_key="c")
    )
    catalog.add_table(
        make_table("p", 50_000, [("d", 8, 5_000), ("e", 8, 50_000)], primary_key="d")
    )
    return catalog


@pytest.fixture(scope="session")
def tiny_optimizer(tiny_catalog) -> MQOptimizer:
    return MQOptimizer(tiny_catalog)


@pytest.fixture(scope="session")
def tpcd_optimizer(tpcd) -> MQOptimizer:
    return MQOptimizer(tpcd)


@pytest.fixture(scope="session")
def psp_optimizer(psp) -> MQOptimizer:
    return MQOptimizer(psp)
