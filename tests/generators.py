"""Seeded random AND-OR DAG workload generator for property/differential tests.

The optimizer package keeps growing pairs of equivalent-by-construction code
paths — the array engine vs. the reference object-graph recurrence, the
incremental cost state vs. from-scratch recomputation, incremental Volcano-RU
vs. its per-query re-costing reference.  The tier-1 workloads exercise them on
a handful of realistic DAGs; :func:`random_dag` generates *thousands* of small
adversarial ones: AND/OR DAGs with shared sub-expressions (children are drawn
from a common pool, so multiple parents share nodes), nested-query use
multipliers > 1, and randomized materialization/reuse-cost annotations that
make sharing profitable for some nodes and a trap for others.

Generation is fully deterministic in the seed: node keys are tuples, children
are drawn with ``random.Random(seed)``, and no hash-order iteration is
involved, so a failing seed reproduces exactly.

The DAGs are structurally faithful to the builder's output: dense equivalence
node ids, a pseudo-root whose single operation (use multiplier 1) combines
every query root, every non-base node has at least one operation, and
``validate()`` passes.  Multi-query structure arises naturally: every
parentless derived node becomes a query root.
"""

from __future__ import annotations

import random
from typing import List

from repro.algebra import (
    Aggregate,
    AggregateFunction,
    Join,
    Relation,
    Select,
    and_,
    col,
    eq,
    ge,
    le,
    or_,
)
from repro.cost.estimation import LogicalProperties
from repro.dag.builder import Query
from repro.dag.nodes import Dag, EquivalenceNode, Operator


class _GenOp(Operator):
    """Distinct operator instance per operation (no accidental signature
    dedup in ``Dag.add_operation``)."""

    __slots__ = ("tag",)

    def __init__(self, tag: str) -> None:
        self.tag = tag
        self.name = tag

    def describe(self) -> str:
        return self.tag


def random_dag(
    seed: int,
    min_base: int = 2,
    max_base: int = 4,
    min_derived: int = 3,
    max_derived: int = 14,
    max_operations_per_node: int = 3,
) -> Dag:
    """A small random AND-OR DAG, deterministic in *seed*.

    Roughly mirrors the shape of the builder's output on tiny batches:
    2-4 base tables, 3-14 derived equivalence nodes with 1-3 alternative
    operations each, operation children drawn from every node built so far
    (which is what creates shared sub-expressions), occasional use
    multipliers > 1 (nested-query invocations), and materialization/reuse
    costs drawn so that materializing is profitable for some nodes only.
    """
    rng = random.Random(seed)
    dag = Dag()

    bases: List[EquivalenceNode] = []
    for index in range(rng.randint(min_base, max_base)):
        node = dag.equivalence(
            ("base", index),
            LogicalProperties(rows=float(rng.choice([100, 1_000, 10_000]))),
            label=f"t{index}",
            is_base=True,
            base_table=f"t{index}",
        )
        bases.append(node)

    pool: List[EquivalenceNode] = list(bases)
    derived: List[EquivalenceNode] = []
    for index in range(rng.randint(min_derived, max_derived)):
        node = dag.equivalence(
            ("derived", index),
            LogicalProperties(rows=float(rng.randint(1, 5_000))),
            label=f"d{index}",
        )
        for op_index in range(rng.randint(1, max_operations_per_node)):
            arity = min(rng.choice([1, 2, 2, 2, 3]), len(pool))
            children = rng.sample(pool, arity)
            multipliers = tuple(
                float(rng.choice([1.0] * 6 + [2.0, 5.0, 20.0])) for _ in children
            )
            local_cost = float(rng.randint(1, 200))
            dag.add_operation(
                node, _GenOp(f"op{index}.{op_index}"), children, local_cost, multipliers
            )
        # Materialization is a genuine trade-off: reuse is usually (not
        # always) cheaper than the node's local costs, and the
        # materialization cost is sometimes prohibitive.
        node.mat_cost = float(rng.randint(0, 60))
        node.reuse_cost = float(rng.randint(0, 40))
        pool.append(node)
        derived.append(node)

    query_roots = [node for node in derived if not node.parents]
    if not query_roots:  # pragma: no cover - rng.sample makes this unreachable
        query_roots = [derived[-1]]
    root = dag.equivalence(
        ("root",), LogicalProperties(rows=1.0), label="root"
    )
    dag.add_operation(
        root,
        _GenOp("no-op"),
        query_roots,
        0.0,
        tuple(1.0 for _ in query_roots),
    )
    dag.set_root(root, query_roots)
    dag.validate()
    return dag


def random_subsumption_dag(seed: int) -> Dag:
    """A :func:`random_dag` augmented with subsumption derivations.

    The plain generator never sets ``is_subsumption`` / ``created_by_
    subsumption``, so Volcano-SH's swap pre-pass, special materialization
    test, and final undo are dead code on its output.  This variant
    post-processes the random DAG (the base structure for a given *seed* is
    byte-identical to ``random_dag(seed)``, so pinned seeds elsewhere are
    unaffected) with its own deterministic rng: a few shared "weaker" source
    nodes are created (flagged ``created_by_subsumption``), each derived from
    earlier nodes, and one or more existing derived nodes get a flagged
    subsumption derivation from the source.  Sources only ever reference
    nodes created before every one of their consumers, which keeps the DAG
    acyclic (an operation in the base generator never references a
    later-created node).  Costs are randomized so that across seeds the swap
    is sometimes taken outright by Volcano, sometimes swapped in and kept,
    sometimes swapped in and undone, and the source is sometimes worth
    materializing under the pay-for-itself test and sometimes not.
    """
    dag = random_dag(seed)
    rng = random.Random((seed << 1) ^ 0xD06)
    nodes = dag.equivalence_nodes()
    consumers_pool = [
        node for node in nodes if not node.is_base and node is not dag.root
    ]
    for group in range(rng.randint(1, 3)):
        count = min(rng.randint(1, 3), len(consumers_pool))
        if not count:
            break
        consumers = rng.sample(consumers_pool, count)
        limit = min(node.id for node in consumers)
        pool = [node for node in nodes if node.id < limit]
        if not pool:
            continue
        arity = min(rng.choice([1, 2]), len(pool))
        children = rng.sample(pool, arity)
        source = dag.equivalence(
            ("subsumption-source", group),
            LogicalProperties(rows=float(rng.randint(1, 5_000))),
            label=f"w{group}",
        )
        source.created_by_subsumption = True
        dag.add_operation(
            source,
            _GenOp(f"weak{group}"),
            children,
            float(rng.randint(1, 120)),
            tuple(1.0 for _ in children),
        )
        source.mat_cost = float(rng.randint(0, 60))
        source.reuse_cost = float(rng.randint(0, 40))
        for consumer in consumers:
            dag.add_operation(
                consumer,
                _GenOp(f"sub{group}.{consumer.id}"),
                [source],
                float(rng.randint(1, 60)),
                (1.0,),
                is_subsumption=True,
            )
    dag.validate()
    return dag


def subsumption_undo_dag() -> Dag:
    """A fixed DAG on which the Volcano-SH pre-pass swap must be undone.

    Shape (labels in parentheses)::

        root ── no-op ──> X, Y
        X (consumer):  regular op over b1, local 55
                       subsumption op over S, local 10   [is_subsumption]
        Y (witness):   op over S, local 5
        S (source):    op over b0, local 50              [created_by_subsumption]
                       mat_cost 1000, reuse_cost 1

    Plain Volcano picks X's regular derivation (55 < 10 + 50) while Y keeps
    ``S`` in the plan, so the pre-pass condition holds for X
    (``10 + 1·reuse(S) = 11 ≤ 55``) and the swap is made.  The source's
    pay-for-itself test then fails spectacularly (``mat_cost`` 1000 against
    savings of 93), ``S`` is not materialized, and the final undo must
    revert X's choice to the regular derivation — leaving the plan exactly
    where Volcano put it.
    """
    dag = Dag()
    b0 = dag.equivalence(
        ("base", 0), LogicalProperties(rows=100.0), label="b0",
        is_base=True, base_table="b0",
    )
    b1 = dag.equivalence(
        ("base", 1), LogicalProperties(rows=100.0), label="b1",
        is_base=True, base_table="b1",
    )
    source = dag.equivalence(("S",), LogicalProperties(rows=50.0), label="S")
    source.created_by_subsumption = True
    dag.add_operation(source, _GenOp("weak"), [b0], 50.0, (1.0,))
    source.mat_cost = 1000.0
    source.reuse_cost = 1.0

    consumer = dag.equivalence(("X",), LogicalProperties(rows=10.0), label="X")
    dag.add_operation(consumer, _GenOp("regular"), [b1], 55.0, (1.0,))
    dag.add_operation(
        consumer, _GenOp("residual"), [source], 10.0, (1.0,), is_subsumption=True
    )
    witness = dag.equivalence(("Y",), LogicalProperties(rows=10.0), label="Y")
    dag.add_operation(witness, _GenOp("use-S"), [source], 5.0, (1.0,))

    root = dag.equivalence(("root",), LogicalProperties(rows=1.0), label="root")
    dag.add_operation(root, _GenOp("no-op"), [consumer, witness], 0.0, (1.0, 1.0))
    dag.set_root(root, [consumer, witness])
    dag.validate()
    return dag


def random_query_workload(seed: int, max_queries: int = 4) -> List[Query]:
    """A randomized overlapping *query batch* (for the builder oracle).

    Unlike :func:`random_dag`, which fabricates AND-OR DAGs directly, this
    generator produces actual algebra expressions over the PSP catalog so the
    full ``DagBuilder`` pipeline runs: join-space expansion (including blocks
    left deliberately disconnected, which exercises the artificial
    cross-product edges where the memoized builder must *not* hash-cons),
    repeated tables within one block (canonical ``#k`` aliases), predicates
    spanning more than two relations (disjunctions), overlapping range and
    equality selections (selection/disjunction subsumption), and occasional
    aggregations.  Deterministic in *seed*: every random draw goes through one
    ``random.Random`` and no hash-order iteration is involved.
    """
    rng = random.Random(seed ^ 0xB11D)
    thresholds = (100, 250, 400, 700)
    queries: List[Query] = []
    for q in range(rng.randint(2, max_queries)):
        k = rng.randint(2, 5)
        tables = [rng.randint(1, 6) for _ in range(k)]
        aliases: List[str] = []
        occurrences = {}
        relations: List[Relation] = []
        for table in tables:
            occ = occurrences.get(table, 0)
            occurrences[table] = occ + 1
            alias = f"psp{table}" if occ == 0 else f"psp{table}x{occ}"
            aliases.append(alias)
            relations.append(Relation(f"psp{table}", alias))

        expression = relations[0]
        for i in range(1, k):
            if rng.random() < 0.75:
                j = rng.randrange(i)
                predicate = eq(col(aliases[j], "sp"), col(aliases[i], "p"))
            else:
                predicate = None  # disconnected: forces a cross-product edge
            if predicate is None:
                expression = Join(expression, relations[i])
            else:
                expression = Join(expression, relations[i], predicate)

        extras = []
        if k >= 3 and rng.random() < 0.3:
            a, b, c = rng.sample(aliases, 3)
            extras.append(
                or_(eq(col(a, "sp"), col(b, "p")), eq(col(a, "sp"), col(c, "p")))
            )
        for alias in aliases:
            if rng.random() < 0.5:
                comparison = rng.choice((ge, le, eq))
                extras.append(comparison(col(alias, "num"), rng.choice(thresholds)))
        if extras:
            expression = Select(expression, and_(*extras))

        # Aggregate only over aliases the canonical renaming leaves unchanged
        # (single-occurrence tables keep their table name), so the group-by
        # columns still resolve in the block's output.
        stable = [a for a, t in zip(aliases, tables) if tables.count(t) == 1]
        if stable and rng.random() < 0.3:
            target = rng.choice(stable)
            expression = Aggregate(
                expression,
                group_by=(col(target, "num"),),
                aggregates=(AggregateFunction("sum", col(target, "p"), "total"),),
                alias=f"agg{q}",
            )
        queries.append(Query(f"R{seed}.{q}", expression))
    return queries


def dag_fingerprint(dag: Dag) -> str:
    """A canonical, hash-order-independent serialization of a built DAG.

    Covers everything the optimizers consume: equivalence keys, logical
    properties (rows, per-column stats), materialization/reuse costs,
    topological numbers, and the full operation list (operator payload,
    children, multipliers, local costs, subsumption flags).  Two DAGs with
    equal fingerprints are byte-identical as far as every algorithm in
    :mod:`repro.optimizer` is concerned; frozensets inside keys are sorted by
    their canonical token so the fingerprint is stable across
    ``PYTHONHASHSEED`` values.
    """

    def token(value) -> str:
        if isinstance(value, tuple):
            return "(" + ",".join(token(v) for v in value) + ")"
        if isinstance(value, frozenset):
            return "{" + ",".join(sorted(token(v) for v in value)) + "}"
        return f"{type(value).__name__}:{value!r}"

    parts = []
    for node in dag.equivalence_nodes():
        stats = "|".join(
            f"{ref!r}={stat.distinct!r}:{stat.width}:{stat.low!r}:{stat.high!r}"
            for ref, stat in sorted(
                node.properties.columns.items(), key=lambda item: repr(item[0])
            )
        )
        operations = ";".join(
            "~".join(
                (
                    str(op.id),
                    repr(op.operator),
                    ",".join(str(child.id) for child in op.children),
                    ",".join(repr(m) for m in op.child_multipliers),
                    repr(op.local_cost),
                    str(op.is_subsumption),
                )
            )
            for op in node.operations
        )
        parts.append(
            "\x1e".join(
                (
                    str(node.id),
                    token(node.key),
                    node.label,
                    repr(node.properties.rows),
                    stats,
                    repr(node.mat_cost),
                    repr(node.reuse_cost),
                    str(node.topo_number),
                    str(node.is_base),
                    str(node.base_table),
                    str(node.scan_alias),
                    str(node.created_by_subsumption),
                    operations,
                )
            )
        )
    roots = ",".join(str(node.id) for node in dag.query_roots)
    header = f"root={dag.root.id if dag.root else None};queries={roots};names={dag.query_names!r}"
    return header + "\x1d" + "\x1d".join(parts)


def random_materialization_sets(
    dag: Dag, rng: random.Random, count: int = 4
) -> List[set]:
    """A few random subsets of the non-base nodes, for cost-table probes."""
    candidates = [
        node.id
        for node in dag.equivalence_nodes()
        if not node.is_base and node is not dag.root
    ]
    sets = [set()]
    for _ in range(count - 1):
        if not candidates:
            break
        size = rng.randint(1, len(candidates))
        sets.append(set(rng.sample(candidates, size)))
    return sets
