"""Tests for the determinism & cache-safety linter (``repro.analysis``).

Three layers:

* **Fixture corpus** — every rule has known-bad / known-good snippets under
  ``tests/analysis_fixtures/``, including verbatim reductions of the two
  historical hash-seed bugs (PR 2 selectivity fold, PR 4 residual conjuncts)
  that the D-rules were distilled from.
* **Suppression grammar** — only well-formed, justified suppressions of
  known rules silence a finding; bare/unknown/unused suppressions are
  themselves errors (S001/S002/S003).
* **Self-gate** — the linter must exit clean over ``src tests benchmarks``,
  and the checked-in ``[tool.repro-lint]`` pyproject table must mirror the
  in-code defaults exactly (3.10 interpreters have no ``tomllib`` and fall
  back to the defaults; results may not depend on the interpreter).
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import LintConfig, RULES, discover_files, lint_paths, lint_source
from repro.analysis.config import config_from_mapping, find_pyproject, load_config

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "analysis_fixtures")
CONFIG = LintConfig()


def lint_fixture(name):
    path = os.path.join(FIXTURES, name)
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path, CONFIG)


def rule_lines(findings):
    return {(f.rule, f.line) for f in findings}


class TestFixtureCorpus:
    @pytest.mark.parametrize(
        "name, expected",
        [
            (
                "d001_bad.py",
                {("D001", 7), ("D001", 11), ("D001", 15), ("D001", 19), ("D001", 24)},
            ),
            ("d002_bad.py", {("D002", 9), ("D002", 14)}),
            ("c001_bad.py", {("C001", 11)}),
            ("c002_bad.py", {("C002", 7), ("C002", 12), ("C002", 17)}),
            ("m001_bad.py", {("M001", 14)}),
            ("m001_missing_registry.py", {("M001", 4)}),
            ("result_cache_bad.py", {("M001", 15)}),
        ],
    )
    def test_known_bad(self, name, expected):
        assert rule_lines(lint_fixture(name)) == expected

    @pytest.mark.parametrize(
        "name",
        [
            "d001_good.py",
            "d002_good.py",
            "c001_good.py",
            "c002_good.py",
            "m001_good.py",
            "suppressions_good.py",
        ],
    )
    def test_known_good(self, name):
        assert lint_fixture(name) == []

    def test_pr2_selectivity_fold_is_caught(self):
        """The PR 2 hash-seed bug (frozenset selectivity product) is D002."""
        findings = lint_fixture("historical_pr2.py")
        assert rule_lines(findings) == {("D002", 15)}

    def test_pr4_residual_conjuncts_are_caught(self):
        """The PR 4 hash-seed bug (and_(*set_difference)) is D001."""
        findings = lint_fixture("historical_pr4.py")
        assert rule_lines(findings) == {("D001", 13)}

    def test_pr7_identity_keyed_cache_is_caught(self):
        """The PR 7 aliasing bug (id()-keyed session fragments) is C001.

        The reduction drops the pinning list the shipped code had, so both
        ``id(props)`` key sites fire; the class also trips M001 because a
        class named ``SessionCache`` is a registered cache owner and the
        reduction has no invalidation registry — historically accurate, as
        the identity interner's invalidation story is what was broken.
        """
        findings = lint_fixture("historical_pr7.py")
        assert rule_lines(findings) == {("C001", 22), ("C001", 25), ("M001", 17)}

    def test_suppression_meta_rules(self):
        findings = rule_lines(lint_fixture("suppressions_bad.py"))
        # Bare and unknown-rule suppressions do not silence their D001...
        assert ("S001", 7) in findings and ("D001", 7) in findings
        assert ("S002", 11) in findings and ("D001", 11) in findings
        # ...and a suppression with nothing to silence is itself an error.
        assert ("S003", 15) in findings


class TestSuppressionGrammar:
    def lint(self, source):
        return lint_source(textwrap.dedent(source), "inline.py", CONFIG)

    def test_trailing_suppression_silences(self):
        findings = self.lint(
            """\
            def f(relations: frozenset) -> tuple:
                return tuple(relations)  # repro-lint: ok(D001) feeds a commutative fold
            """
        )
        assert findings == []

    def test_standalone_suppression_covers_next_line(self):
        findings = self.lint(
            """\
            def f(relations: frozenset) -> tuple:
                # repro-lint: ok(D001) consumed order-insensitively
                return tuple(relations)
            """
        )
        assert findings == []

    def test_multi_rule_suppression(self):
        findings = self.lint(
            """\
            def f(costs: frozenset) -> tuple:
                # repro-lint: ok(D001, D002) both folds are commutative here
                return tuple(costs), sum(costs)
            """
        )
        assert findings == []

    def test_suppression_does_not_leak_past_next_line(self):
        findings = self.lint(
            """\
            def f(relations: frozenset) -> tuple:
                # repro-lint: ok(D001) covers only the next line
                x = 1
                return tuple(relations), x
            """
        )
        assert {f.rule for f in findings} == {"S003", "D001"}

    def test_malformed_marker_is_s001(self):
        findings = self.lint(
            """\
            def f(relations: frozenset) -> tuple:
                return tuple(relations)  # repro-lint: silence this please
            """
        )
        assert {f.rule for f in findings} == {"S001", "D001"}

    def test_syntax_error_is_e999(self):
        findings = self.lint("def broken(:\n")
        assert [f.rule for f in findings] == ["E999"]


class TestConfig:
    def test_defaults_match_checked_in_pyproject_table(self):
        """The pyproject table must mirror the in-code defaults exactly.

        3.10 interpreters have no ``tomllib`` and silently use the defaults;
        lint results may not depend on which interpreter ran the linter.
        """
        tomllib = pytest.importorskip("tomllib")
        with open(os.path.join(REPO_ROOT, "pyproject.toml"), "rb") as handle:
            table = tomllib.load(handle)["tool"]["repro-lint"]
        assert config_from_mapping(table) == LintConfig()

    def test_load_config_reads_pyproject(self):
        assert load_config(start=REPO_ROOT) == LintConfig()

    def test_find_pyproject_walks_up(self):
        assert find_pyproject(FIXTURES) == os.path.join(REPO_ROOT, "pyproject.toml")

    def test_overrides(self):
        config = config_from_mapping(
            {
                "exclude": ["*/vendored/*"],
                "set_returning": ["members"],
                "frozen_attributes": ["stats"],
                "registries": {"MyCache": "registry"},
            }
        )
        assert config.exclude == ("*/vendored/*",)
        assert config.set_returning == frozenset({"members"})
        assert config.frozen_attributes == frozenset({"stats"})
        assert config.registries == {"MyCache": "registry"}

    @pytest.mark.parametrize(
        "table",
        [
            {"exclude": "not-a-list"},
            {"set_returning": [1, 2]},
            {"registries": {"MyCache": 3}},
        ],
    )
    def test_bad_tables_raise(self, table):
        with pytest.raises(ValueError):
            config_from_mapping(table)

    def test_custom_set_returning_taints_calls(self):
        config = LintConfig(set_returning=frozenset({"members"}))
        findings = lint_source(
            "def f(group):\n    return tuple(group.members())\n", "inline.py", config
        )
        assert [f.rule for f in findings] == ["D001"]


class TestEngine:
    def test_discovery_excludes_fixture_corpus(self):
        files = discover_files([os.path.join(REPO_ROOT, "tests")], CONFIG)
        assert not any("analysis_fixtures" in f for f in files)
        assert any(f.endswith("test_analysis.py") for f in files)

    def test_findings_are_sorted_and_deterministic(self):
        findings, _ = lint_paths([FIXTURES], LintConfig(exclude=()))
        assert findings == sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
        )
        again, _ = lint_paths([FIXTURES], LintConfig(exclude=()))
        assert findings == again

    def test_self_gate_repo_is_clean(self):
        """Acceptance gate: the linter exits 0 over src tests benchmarks."""
        findings, checked = lint_paths(
            [os.path.join(REPO_ROOT, d) for d in ("src", "tests", "benchmarks")],
            load_config(start=REPO_ROOT),
        )
        assert checked > 50
        assert findings == [], "\n".join(f.format() for f in findings)


class TestCli:
    def run_cli(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    def test_clean_tree_exits_zero(self):
        result = self.run_cli("src", "tests", "benchmarks")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout

    @pytest.fixture()
    def no_exclude_config(self, tmp_path):
        config = tmp_path / "pyproject.toml"
        config.write_text("[tool.repro-lint]\nexclude = []\n")
        return str(config)

    def test_findings_exit_one_and_name_rule_and_location(self, no_exclude_config):
        bad = os.path.join("tests", "analysis_fixtures", "d001_bad.py")
        result = self.run_cli("--config", no_exclude_config, bad)
        assert result.returncode == 1
        assert "d001_bad.py:7:12: D001" in result.stdout

    def test_json_format(self, no_exclude_config):
        bad = os.path.join("tests", "analysis_fixtures", "d002_bad.py")
        result = self.run_cli("--config", no_exclude_config, "--format", "json", bad)
        assert result.returncode == 1
        report = json.loads(result.stdout)
        assert report["files_checked"] == 1
        assert [(f["rule"], f["line"]) for f in report["findings"]] == [
            ("D002", 9),
            ("D002", 14),
        ]

    def test_list_rules(self):
        result = self.run_cli("--list-rules")
        assert result.returncode == 0
        for rule in RULES:
            assert rule in result.stdout
