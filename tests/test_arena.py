"""Arena-backed DAG store: structure, dedup, pickling, and session snapshots.

The struct-of-arrays :class:`repro.dag.arena.DagArena` (PR 8) replaced the
pointer object graph as the DAG's single source of truth.  This suite locks
down the arena-specific contracts the differential oracle in
``test_differential.py`` does not cover directly:

* **column integrity** — the flat parallel columns stay mutually aligned,
  the adjacency lists are the exact inverse of ``op_owner``/``op_children``,
  and the lazily synced cost-kernel tables (``op_entry``/``op_spec``) cover
  every operation with the values the columns pin down;
* **canonical façades** — ``eq_view``/``op_view`` return *the* view object
  for an id (``is``-stable), and every façade property mirrors its column;
* **interned dedup** — ``by_key`` and ``op_signatures`` are exactly the
  inverted primary columns, and no duplicate ``(owner, operator, children)``
  signature survives a build;
* **fingerprint identity vs. the reference builder** — the memoized arena
  builder and the memo-free reference twin agree byte-for-byte on every
  seeded workload family and on randomized batches (fingerprint-only here;
  the full four-algorithm identity check runs in ``test_differential.py``);
* **arena-native pickling** — a built DAG round-trips through ``pickle`` to
  an equal fingerprint and a working optimizer input, and the flat-column
  format is strictly smaller than the historical one-record-per-node
  pointer-graph payload;
* **hash-seed independence** — pickle round-trips performed in interpreters
  with different ``PYTHONHASHSEED`` values restore to one identical
  fingerprint;
* **whole-session snapshots** — ``snapshot_state(include_plans=True)``
  ships the plan cache: the restored session serves a repeated batch from
  its plan cache (no rebuild) with identical cost, materialized set, and
  fingerprint, while the default snapshot still restores fragments only.
"""

import os
import pickle
import subprocess
import sys

import pytest

from repro.workloads.scaleup import scaleup_queries
from tests.generators import dag_fingerprint, random_query_workload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ---------------------------------------------------------------------------
# Column / view / dedup integrity
# ---------------------------------------------------------------------------

class TestArenaStructure:
    def test_columns_adjacency_and_kernel_tables_aligned(self, psp_optimizer):
        dag = psp_optimizer.build_dag(scaleup_queries(2))
        arena = dag.arena
        n, m = arena.num_equivalences, arena.num_operations
        assert n > 0 and m > 0
        eq_columns = (
            arena.eq_key,
            arena.eq_label,
            arena.eq_props,
            arena.eq_mat_cost,
            arena.eq_reuse_cost,
            arena.eq_topo,
            arena.eq_is_base,
            arena.eq_base_table,
            arena.eq_scan_alias,
            arena.eq_created_by_subsumption,
            arena.eq_op_ids,
            arena.eq_parent_ops,
        )
        assert all(len(column) == n for column in eq_columns)
        op_columns = (
            arena.op_operator,
            arena.op_children,
            arena.op_multipliers,
            arena.op_owner,
            arena.op_local_cost,
            arena.op_is_subsumption,
        )
        assert all(len(column) == m for column in op_columns)

        # The lazily synced cost-kernel tables cover every operation once
        # synced, with exactly the values the primary columns pin down, and
        # syncing again is a no-op.
        arena.sync_op_tables()
        assert len(arena.op_entry) == len(arena.op_spec) == m
        arena.sync_op_tables()
        assert len(arena.op_entry) == m
        for op_id in range(m):
            local_cost, entry_children = arena.op_entry[op_id]
            assert local_cost == arena.op_local_cost[op_id]
            assert entry_children == tuple(
                zip(arena.op_children[op_id], arena.op_multipliers[op_id])
            )

        # Adjacency is the exact inverse of op_owner / op_children.
        owner_index = [[] for _ in range(n)]
        parent_index = [[] for _ in range(n)]
        for op_id in range(m):
            owner_index[arena.op_owner[op_id]].append(op_id)
            for child_id in arena.op_children[op_id]:
                parent_index[child_id].append(op_id)
        assert [list(ops) for ops in arena.eq_op_ids] == owner_index
        assert [list(ops) for ops in arena.eq_parent_ops] == parent_index

    def test_views_are_canonical_and_mirror_columns(self, psp_optimizer):
        dag = psp_optimizer.build_dag(scaleup_queries(1))
        arena = dag.arena
        for eq_id in range(arena.num_equivalences):
            view = arena.eq_view(eq_id)
            assert view is arena.eq_view(eq_id)
            assert view.id == eq_id
            assert view.key == arena.eq_key[eq_id]
            assert view.properties is arena.eq_props[eq_id]
            assert view.mat_cost == arena.eq_mat_cost[eq_id]
            assert view.reuse_cost == arena.eq_reuse_cost[eq_id]
            assert view.topo_number == arena.eq_topo[eq_id]
            assert view.is_base == arena.eq_is_base[eq_id]
            assert view.base_table == arena.eq_base_table[eq_id]
            assert [op.id for op in view.operations] == list(arena.eq_op_ids[eq_id])
            assert [op.id for op in view.parents] == list(arena.eq_parent_ops[eq_id])
        for op_id in range(arena.num_operations):
            op = arena.op_view(op_id)
            assert op is arena.op_view(op_id)
            assert op.id == op_id
            assert op.equivalence is arena.eq_view(arena.op_owner[op_id])
            assert tuple(child.id for child in op.children) == arena.op_children[op_id]
            assert op.child_multipliers == arena.op_multipliers[op_id]
            assert op.local_cost == arena.op_local_cost[op_id]
            assert op.is_subsumption == arena.op_is_subsumption[op_id]

    def test_interned_dedup_tables_invert_the_columns(self, psp_optimizer):
        dag = psp_optimizer.build_dag(scaleup_queries(2))
        arena = dag.arena
        assert arena.by_key == {key: i for i, key in enumerate(arena.eq_key)}
        signatures = {
            (arena.op_owner[i], arena.op_operator[i], arena.op_children[i]): i
            for i in range(arena.num_operations)
        }
        # No duplicate signature survived the build.  The interned table is a
        # *consistent subset* of the inverted columns: operations appended
        # through the memo-guarded replay path (`append_operation`) skip the
        # probe, so they are absent live — but never contradicted.  (After a
        # pickle round-trip `__setstate__` rebuilds the table in full.)
        assert len(signatures) == arena.num_operations
        assert all(
            signatures[signature] == op_id
            for signature, op_id in arena.op_signatures.items()
        )
        clone = pickle.loads(pickle.dumps(dag, protocol=pickle.HIGHEST_PROTOCOL))
        assert clone.arena.op_signatures == signatures


# ---------------------------------------------------------------------------
# Memoized arena builder vs. the memo-free reference twin (fingerprints)
# ---------------------------------------------------------------------------

class TestArenaReferenceFingerprints:
    def test_seeded_workload_families(self, tpcd_optimizer, psp_optimizer):
        from tests.test_differential import _seeded_builder_workloads

        for name, optimizer, queries in _seeded_builder_workloads(
            tpcd_optimizer, psp_optimizer
        ):
            memo = dag_fingerprint(optimizer.build_dag(queries))
            reference = dag_fingerprint(optimizer._build_reference(queries))
            assert memo == reference, name

    def test_random_query_batches(self, psp_optimizer):
        for seed in range(40):
            queries = random_query_workload(seed)
            memo = dag_fingerprint(psp_optimizer.build_dag(queries))
            reference = dag_fingerprint(psp_optimizer._build_reference(queries))
            assert memo == reference, seed


# ---------------------------------------------------------------------------
# Arena-native pickling
# ---------------------------------------------------------------------------

def _pointer_graph_payload(dag):
    """The historical pickle shape: one record per node, one per operation.

    Before the arena, a DAG pickled as an object graph — every equivalence
    node a dict of attributes holding a list of operation records, each with
    its own attribute dict, *including* the adjacency both directions carried
    as real attributes (each node its ``parents`` list, each operation its
    owning ``equivalence``).  This rebuilds that shape with ids in place of
    object references — a favorable variant of the old format (no class
    records, no per-object ``__reduce__`` framing) — so the size comparison
    below has a faithful baseline.  The arena omits the adjacency entirely:
    it is derived, rebuilt by ``__setstate__``.
    """
    arena = dag.arena
    nodes = {}
    for eq_id in range(arena.num_equivalences):
        nodes[eq_id] = {
            "key": arena.eq_key[eq_id],
            "label": arena.eq_label[eq_id],
            "properties": arena.eq_props[eq_id],
            "materialization_cost": arena.eq_mat_cost[eq_id],
            "reuse_cost": arena.eq_reuse_cost[eq_id],
            "topological_number": arena.eq_topo[eq_id],
            "is_base": arena.eq_is_base[eq_id],
            "base_table": arena.eq_base_table[eq_id],
            "scan_alias": arena.eq_scan_alias[eq_id],
            "created_by_subsumption": arena.eq_created_by_subsumption[eq_id],
            "parents": list(arena.eq_parent_ops[eq_id]),
            "operations": [
                {
                    "equivalence": arena.op_owner[op_id],
                    "operator": arena.op_operator[op_id],
                    "children": list(arena.op_children[op_id]),
                    "multipliers": list(arena.op_multipliers[op_id]),
                    "local_cost": arena.op_local_cost[op_id],
                    "is_subsumption": arena.op_is_subsumption[op_id],
                }
                for op_id in arena.eq_op_ids[eq_id]
            ],
        }
    return {
        "nodes": nodes,
        "root": dag.root.id,
        "query_roots": [node.id for node in dag.query_roots],
        "query_names": list(dag.query_names),
    }


#: Runs inside a fresh interpreter per hash seed; prints one digest per line.
#: Each digest is the fingerprint of a DAG that went through a full pickle
#: round-trip *inside that interpreter*, so both the arena snapshot format
#: and its restoration are exercised under every hash seed.
_PICKLE_SUBPROCESS_SCRIPT = """\
import hashlib, pickle, sys
sys.path.insert(0, "src")
sys.path.insert(0, ".")
from repro import MQOptimizer
from repro.catalog import psp_catalog
from repro.workloads.scaleup import scaleup_queries
from tests.generators import dag_fingerprint, random_query_workload

optimizer = MQOptimizer(psp_catalog())
for label, queries in (
    ("CQ2", scaleup_queries(2)),
    ("R11", random_query_workload(11)),
    ("R23", random_query_workload(23)),
):
    dag = optimizer.build_dag(queries)
    clone = pickle.loads(pickle.dumps(dag, protocol=pickle.HIGHEST_PROTOCOL))
    fingerprint = dag_fingerprint(clone)
    assert fingerprint == dag_fingerprint(dag), label
    print(label, hashlib.sha256(fingerprint.encode()).hexdigest())
"""


class TestArenaPickle:
    def test_roundtrip_restores_equal_fingerprint_and_optimizes(self, psp_optimizer):
        from repro.optimizer.volcano_sh import optimize_volcano_sh

        dag = psp_optimizer.build_dag(scaleup_queries(3))
        clone = pickle.loads(pickle.dumps(dag, protocol=pickle.HIGHEST_PROTOCOL))
        assert clone is not dag
        assert dag_fingerprint(clone) == dag_fingerprint(dag)
        original = optimize_volcano_sh(dag)
        restored = optimize_volcano_sh(clone)
        assert restored.cost == original.cost
        assert restored.plan.materialized == original.plan.materialized
        assert restored.counters == original.counters

    def test_flat_columns_pickle_smaller_than_pointer_graph(self, psp_optimizer):
        dag = psp_optimizer.build_dag(scaleup_queries(3))
        arena_bytes = len(pickle.dumps(dag, protocol=pickle.HIGHEST_PROTOCOL))
        graph_bytes = len(
            pickle.dumps(
                _pointer_graph_payload(dag), protocol=pickle.HIGHEST_PROTOCOL
            )
        )
        assert arena_bytes < graph_bytes, (arena_bytes, graph_bytes)

    def test_pickle_roundtrip_identical_across_hashseeds(self):
        outputs = {}
        for hashseed in ("0", "1", "99"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            result = subprocess.run(
                [sys.executable, "-c", _PICKLE_SUBPROCESS_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                cwd=REPO_ROOT,
                check=True,
            )
            outputs[hashseed] = result.stdout
        assert outputs["0"].strip(), "subprocess produced no digests"
        assert len(set(outputs.values())) == 1, outputs


# ---------------------------------------------------------------------------
# Whole-session snapshots (fragments + plan cache)
# ---------------------------------------------------------------------------

class TestSessionPlanSnapshot:
    def test_include_plans_roundtrip_serves_from_plan_cache(self):
        from repro import Algorithm, OptimizerSession
        from repro.catalog import psp_catalog

        donor = OptimizerSession(psp_catalog())
        queries = scaleup_queries(2)
        original = donor.optimize(queries, Algorithm.GREEDY)
        donor_fingerprint = dag_fingerprint(donor.build_dag(queries))

        bare = donor.snapshot_state()
        full = donor.snapshot_state(include_plans=True)
        assert len(full) > len(bare), "plan cache did not travel"

        restored = OptimizerSession.from_snapshot(full)
        assert restored.plan_hits == 0 and restored.plan_misses == 0
        served = restored.optimize(queries, Algorithm.GREEDY)
        # Both layers hit: the cached DAG entry and the cached result.
        assert restored.plan_hits == 2, (restored.plan_hits, restored.plan_misses)
        assert restored.plan_misses == 0
        assert served.cost == original.cost
        assert served.plan.materialized == original.plan.materialized
        assert served.plan.explain() == original.plan.explain()
        assert dag_fingerprint(restored.build_dag(queries)) == donor_fingerprint

        # The default (fragment-only) snapshot restores no plans: the same
        # batch misses the plan cache and is rebuilt through warm fragments.
        fragments_only = OptimizerSession.from_snapshot(bare)
        rebuilt = fragments_only.optimize(queries, Algorithm.GREEDY)
        assert fragments_only.plan_hits == 0
        assert fragments_only.plan_misses == 2
        assert rebuilt.cost == original.cost
        assert dag_fingerprint(fragments_only.build_dag(queries)) == donor_fingerprint

    def test_snapshot_rejects_foreign_payloads(self):
        from repro import OptimizerSession

        with pytest.raises(TypeError):
            OptimizerSession.from_snapshot(pickle.dumps({"not": "a cache"}))
        with pytest.raises(TypeError):
            OptimizerSession.from_snapshot(
                pickle.dumps(("session-state", None, {"not": "a BoundedCache"}))
            )
