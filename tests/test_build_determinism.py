"""DAG construction determinism.

The memoized builder (PR 4) caches join choices, weak-join nodes, and
partition enumerations keyed on equivalence-node identity; nothing in those
caches may depend on object addresses or hash iteration order.  Two guarantees
are locked down here:

* **Consecutive builds** of the same batch (fresh builder each time, as
  ``MQOptimizer.build_dag`` always creates one) produce byte-identical DAGs —
  node keys, properties, operation lists, costs, topological numbers.
* **``PYTHONHASHSEED`` independence**: separate interpreter processes with
  different hash seeds produce identical canonical fingerprints, for the
  memoized builder, the reference builder, session-backed (cold and warm)
  builds, a restored pickled session snapshot (the PR 7 content-addressed
  cache, including its interned-key count and per-relation statistics
  digests), and the execution layer — per-query rows in exact row and column
  order plus work accounting, for a Volcano and a greedy plan.  (PR 2 fixed
  the selectivity-product hash-order leak in ``_join_properties``; PR 4
  fixed the residual-conjunct order of subsumption selections, which this
  test would catch regressing.)  Since PR 10 the matrix also covers the
  cross-batch result cache: its content-address keys, hit/miss/injection/
  serve counters, the fingerprints of DAGs carrying injected cached-read
  nodes, and the rows it serves.

The fingerprints come from :func:`tests.generators.dag_fingerprint`, which
sorts every frozenset by a canonical token so the serialization itself is
hash-order independent.
"""

import os
import subprocess
import sys

from repro import MQOptimizer
from repro.catalog import psp_catalog
from repro.workloads.scaleup import scaleup_queries
from tests.generators import dag_fingerprint, random_query_workload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Runs inside a fresh interpreter per hash seed; prints one digest per line.
_SUBPROCESS_SCRIPT = """\
import hashlib, sys
sys.path.insert(0, "src")
sys.path.insert(0, ".")
from repro import MQOptimizer, OptimizerSession
from repro.catalog import psp_catalog
from repro.workloads.scaleup import scaleup_queries
from tests.generators import dag_fingerprint, random_query_workload

optimizer = MQOptimizer(psp_catalog())
for seed in (0, 3, 7):
    queries = random_query_workload(seed)
    for memoize in (True, False):
        fingerprint = dag_fingerprint(optimizer.build_dag(queries, memoize=memoize))
        print(seed, memoize, hashlib.sha256(fingerprint.encode()).hexdigest())
fingerprint = dag_fingerprint(optimizer.build_dag(scaleup_queries(2)))
print("CQ2", hashlib.sha256(fingerprint.encode()).hexdigest())
# Session-backed cold and warm builds (the catalog-lifetime fragment cache of
# repro.service.session) must be hash-seed independent too.
session = OptimizerSession(optimizer.catalog, cache_plans=False)
for label in ("session-cold", "session-warm"):
    fingerprint = dag_fingerprint(session.build_dag(scaleup_queries(2)))
    print(label, hashlib.sha256(fingerprint.encode()).hexdigest())
# Executor + operator outputs (repro.execution) must be hash-seed independent
# as well: the exact per-query rows, in their exact order, with their exact
# (insertion-ordered) column order, plus the work accounting.
from repro import Algorithm
from repro.catalog import psp_catalog as _psp
from repro.execution import Executor, generate_psp_data
from repro.workloads.scaleup import component_query
exec_catalog = _psp(relation_count=6)
executor = Executor(generate_psp_data(relation_count=6, rows_per_table=300), exec_catalog)
exec_optimizer = MQOptimizer(exec_catalog)
for algorithm in (Algorithm.VOLCANO, Algorithm.GREEDY):
    result = executor.run(exec_optimizer.optimize(component_query(1), algorithm).plan)
    serialized = repr([
        [[(str(col), row[col]) for col in row] for row in rows]
        for rows in result.per_query_rows
    ])
    print(
        "exec", algorithm.name,
        hashlib.sha256(serialized.encode()).hexdigest(),
        result.stats.rows_scanned, result.stats.rows_materialized,
        result.stats.reuses, round(result.simulated_seconds, 9),
    )
# Content-addressed session snapshots (PR 7) must be process-portable: a
# pickled warm fragment cache restored in this interpreter rebuilds the same
# bytes, interns the same number of content keys, and the per-relation
# statistics digests it syncs against are themselves hash-seed independent.
donor = OptimizerSession(optimizer.catalog, cache_plans=False)
donor.build_dag(scaleup_queries(2))
restored = OptimizerSession.from_snapshot(donor.snapshot_state(), cache_plans=False)
fingerprint = dag_fingerprint(restored.build_dag(scaleup_queries(2)))
print("snapshot", hashlib.sha256(fingerprint.encode()).hexdigest(),
      restored.cache.interned_count(), restored.cache_stats().hits > 0)
for name, digest in sorted(optimizer.catalog.stats_digests().items()):
    print("digest", name, digest)
# Chaos determinism (PR 9): a seeded FaultInjector must fire the same fault
# schedule — and the faulted builds must produce the same bytes — under any
# hash seed.  The schedule digest covers (family, access index, action)
# tuples; the build fingerprints prove the faults changed nothing served.
from repro.service import FaultInjector
chaos_session = OptimizerSession(optimizer.catalog, cache_plans=False)
injector = FaultInjector(seed=2024, rate=0.3)
with injector.attach(chaos_session):
    for round_index in range(2):
        fingerprint = dag_fingerprint(chaos_session.build_dag(scaleup_queries(2)))
        print("chaos-build", round_index,
              hashlib.sha256(fingerprint.encode()).hexdigest())
print("chaos-schedule", injector.schedule_digest(), injector.injected_faults)
# Fixed input on purpose: this digests the corrupt_snapshot RNG stream, not
# the (process-local) pickle bytes of a real snapshot.
corrupted = injector.corrupt_snapshot(bytes(range(256)))
print("chaos-snapshot", hashlib.sha256(corrupted).hexdigest())
# Cross-batch result cache (PR 10): the content-address cache keys, the
# hit/miss/injection/serve counters, the fingerprints of DAGs carrying
# injected cached-read nodes, and the served rows must all be hash-seed
# independent.  Batch 3 repeats batch 1's component, so it mixes warm-DAG
# reuse with execution-time digest serves.
rc_session = OptimizerSession(exec_catalog, cache_plans=False, result_cache=True)
rc_executor = Executor(
    generate_psp_data(relation_count=6, rows_per_table=300),
    exec_catalog, result_cache=rc_session.result_cache,
)
for batch_index, component in enumerate((1, 2, 1)):
    queries = component_query(component)
    result = rc_executor.run(rc_session.optimize(queries, "greedy").plan)
    serialized = repr([
        [[(str(col), row[col]) for col in row] for row in rows]
        for rows in result.per_query_rows
    ])
    print("rc-rows", batch_index,
          hashlib.sha256(serialized.encode()).hexdigest(),
          result.stats.blocks_read)
    fingerprint = dag_fingerprint(rc_session.build_dag(queries))
    print("rc-dag", batch_index, hashlib.sha256(fingerprint.encode()).hexdigest())
rc = rc_session.result_cache
print("rc-counters", rc.hits, rc.misses, rc.stores, rc.exact_injections,
      rc.covering_injections, rc.adoptions, rc.exec_serves, rc.injected_serves)
for digest in sorted(rc_session.cache.results.keys()):
    print("rc-key", digest)
"""


class TestBuildDeterminism:
    def test_consecutive_builds_identical(self):
        optimizer = MQOptimizer(psp_catalog())
        for seed in (0, 1, 5, 9):
            queries = random_query_workload(seed)
            first = dag_fingerprint(optimizer.build_dag(queries))
            second = dag_fingerprint(optimizer.build_dag(queries))
            assert first == second, seed

    def test_consecutive_reference_builds_identical(self):
        optimizer = MQOptimizer(psp_catalog())
        for seed in (0, 5):
            queries = random_query_workload(seed)
            first = dag_fingerprint(optimizer._build_reference(queries))
            second = dag_fingerprint(optimizer._build_reference(queries))
            assert first == second, seed

    def test_fingerprint_distinguishes_workloads(self):
        """Sanity for the oracle itself: different batches must not collide."""
        optimizer = MQOptimizer(psp_catalog())
        a = dag_fingerprint(optimizer.build_dag(random_query_workload(0)))
        b = dag_fingerprint(optimizer.build_dag(random_query_workload(1)))
        c = dag_fingerprint(optimizer.build_dag(scaleup_queries(1)))
        assert len({a, b, c}) == 3

    def test_builds_identical_across_hashseeds(self):
        outputs = {}
        for hashseed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            result = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                cwd=REPO_ROOT,
                check=True,
            )
            outputs[hashseed] = result.stdout
        assert outputs["0"].strip(), "subprocess produced no digests"
        assert len(set(outputs.values())) == 1, outputs
