"""Tests for the catalog substrate, the cost model and cardinality estimation."""

import pytest
from hypothesis import given, strategies as st

from repro.algebra import Aggregate, AggregateFunction, col, eq, ge, lt, or_
from repro.catalog import Catalog, psp_catalog, tpcd_catalog
from repro.catalog.catalog import CatalogError
from repro.catalog.schema import Column, Index, Table, make_table
from repro.cost import CostModel, Estimator
from repro.cost.model import Cost


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("x", (Column("a"), Column("a")), 10)

    def test_tuple_width(self):
        table = make_table("x", 10, [("a", 4, 10), ("b", 12, 5)])
        assert table.tuple_width == 16

    def test_distinct_defaults_to_row_count(self):
        table = make_table("x", 10, [("a", 4, None)])
        assert table.distinct("a") == 10

    def test_distinct_capped_by_rows(self):
        table = make_table("x", 10, [("a", 4, 500)])
        assert table.distinct("a") == 10

    def test_clustered_index_from_primary_key(self):
        table = make_table("x", 10, [("a", 4, 10)], primary_key="a")
        assert table.clustered_index() == Index("x", "a", clustered=True)
        assert table.has_index("a")
        assert not table.has_index("b")

    def test_index_on_prefers_clustered(self):
        table = Table(
            "x",
            (Column("a"),),
            10,
            (Index("x", "a", clustered=False), Index("x", "a", clustered=True)),
        )
        assert table.index_on("a").clustered


class TestCatalog:
    def test_lookup_is_case_insensitive(self, tpcd):
        assert tpcd.table("LINEITEM").name == "lineitem"

    def test_unknown_table_raises(self, tpcd):
        with pytest.raises(CatalogError):
            tpcd.table("nope")

    def test_unknown_column_raises(self, tpcd):
        with pytest.raises(CatalogError):
            tpcd.column("lineitem", "nope")

    def test_contains_and_len(self, tiny_catalog):
        assert "r" in tiny_catalog
        assert "unknown" not in tiny_catalog
        assert len(tiny_catalog) == 4

    def test_renamed_copy_adds_tables_with_same_stats(self, tiny_catalog):
        renamed = tiny_catalog.renamed_copy("_x")
        assert renamed.table("r_x").row_count == tiny_catalog.table("r").row_count
        assert renamed.table("r").row_count == tiny_catalog.table("r").row_count


class TestTpcdCatalog:
    def test_row_counts_scale_linearly(self):
        one = tpcd_catalog(1.0)
        ten = tpcd_catalog(10.0)
        assert one.table("lineitem").row_count == 6_000_000
        assert ten.table("lineitem").row_count == 60_000_000
        assert one.table("region").row_count == ten.table("region").row_count == 5

    def test_all_tables_have_clustered_pk(self):
        catalog = tpcd_catalog(1.0)
        for table in catalog:
            assert table.clustered_index() is not None

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            tpcd_catalog(0)


class TestPspCatalog:
    def test_relation_count_and_schema(self):
        catalog = psp_catalog()
        assert len(catalog) == 22
        table = catalog.table("psp7")
        assert table.column_names() == ("p", "sp", "num")
        assert 20_000 <= table.row_count <= 40_000

    def test_deterministic(self):
        assert [t.row_count for t in psp_catalog()] == [t.row_count for t in psp_catalog()]

    def test_no_indexes(self):
        assert all(not t.indexes for t in psp_catalog())


class TestCostModel:
    def setup_method(self):
        self.model = CostModel()

    def test_paper_constants(self):
        assert self.model.block_size == 4096
        assert self.model.seek_time == pytest.approx(0.010)
        assert self.model.read_time_per_block == pytest.approx(0.002)
        assert self.model.write_time_per_block == pytest.approx(0.004)
        assert self.model.memory_blocks == 6 * 1024 * 1024 // 4096

    def test_blocks(self):
        assert self.model.blocks(0, 100) == 1
        assert self.model.blocks(40, 100) == 1
        assert self.model.blocks(41, 100) == 2

    def test_cost_addition_and_total(self):
        cost = Cost(1.0, 0.5) + Cost(2.0, 0.25)
        assert cost.total == pytest.approx(3.75)

    def test_write_more_expensive_than_read(self):
        blocks = 1000
        assert self.model.sequential_write(blocks).total > self.model.sequential_read(blocks).total

    def test_in_memory_sort_has_no_io(self):
        assert self.model.external_sort(100, 1000).io == 0.0

    def test_external_sort_has_io(self):
        blocks = self.model.memory_blocks * 10
        assert self.model.external_sort(blocks, blocks * 40).io > 0.0

    def test_with_memory_changes_spill_threshold(self):
        big = self.model.with_memory(128 * 1024 * 1024)
        blocks = self.model.memory_blocks * 4
        assert big.external_sort(blocks, 1000).io == 0.0
        assert self.model.external_sort(blocks, 1000).io > 0.0

    def test_materialization_and_reuse_costs(self):
        mat = self.model.materialization_cost(10_000, 100)
        reuse = self.model.reuse_cost(10_000, 100)
        assert mat.total > reuse.total > 0

    @given(rows=st.integers(1, 10**7), width=st.integers(4, 512))
    def test_reuse_cheaper_than_materialization(self, rows, width):
        model = CostModel()
        assert model.reuse_cost(rows, width).total <= model.materialization_cost(rows, width).total

    @given(rows=st.lists(st.integers(1, 10**6), min_size=2, max_size=2).map(sorted))
    def test_scan_cost_monotone_in_rows(self, rows):
        model = CostModel()
        small, large = rows
        assert (
            model.sequential_read(model.blocks(small, 64)).total
            <= model.sequential_read(model.blocks(large, 64)).total
        )


class TestEstimator:
    def test_base_properties(self, tiny_catalog):
        estimator = Estimator(tiny_catalog)
        props = estimator.base_properties("r")
        assert props.rows == 10_000
        assert props.distinct(col("r", "b")) == 100

    def test_equality_selectivity(self, tiny_catalog):
        estimator = Estimator(tiny_catalog)
        props = estimator.base_properties("r")
        assert estimator.predicate_selectivity(eq(col("r", "b"), 7), props) == pytest.approx(0.01)

    def test_range_selectivity_uses_bounds(self, tiny_catalog):
        estimator = Estimator(tiny_catalog)
        props = estimator.base_properties("r")
        selectivity = estimator.predicate_selectivity(lt(col("r", "v"), 250), props)
        assert 0.2 < selectivity < 0.3

    def test_disjunction_selectivity(self, tiny_catalog):
        estimator = Estimator(tiny_catalog)
        props = estimator.base_properties("r")
        single = estimator.predicate_selectivity(eq(col("r", "b"), 1), props)
        double = estimator.predicate_selectivity(or_(eq(col("r", "b"), 1), eq(col("r", "b"), 2)), props)
        assert single < double <= 2 * single + 1e-9

    def test_join_cardinality(self, tiny_catalog):
        estimator = Estimator(tiny_catalog)
        r = estimator.base_properties("r")
        s = estimator.base_properties("s")
        joined = estimator.join(r, s, [eq(col("r", "a"), col("s", "a"))])
        assert joined.rows == pytest.approx(r.rows * s.rows / 10_000)

    def test_aggregate_groups_capped_by_half_rows(self, tiny_catalog):
        estimator = Estimator(tiny_catalog)
        r = estimator.base_properties("r")
        aggregated = estimator.aggregate(
            r, (col("r", "a"),), (AggregateFunction("sum", col("r", "v"), "total"),), "agg"
        )
        assert aggregated.rows == pytest.approx(r.rows / 2)
        assert col("agg", "total") in aggregated.columns

    def test_global_aggregate_has_one_row(self, tiny_catalog):
        estimator = Estimator(tiny_catalog)
        r = estimator.base_properties("r")
        aggregated = estimator.aggregate(r, (), (AggregateFunction("count", None, "n"),), "agg")
        assert aggregated.rows == 1.0

    @given(value=st.integers(-100, 1200))
    def test_selectivity_always_in_unit_interval(self, value, tiny_catalog):
        estimator = Estimator(tiny_catalog)
        props = estimator.base_properties("r")
        for predicate in (lt(col("r", "v"), value), ge(col("r", "v"), value), eq(col("r", "v"), value)):
            selectivity = estimator.predicate_selectivity(predicate, props)
            assert 0.0 <= selectivity <= 1.0

    def test_apply_predicate_never_below_one_row(self, tiny_catalog):
        estimator = Estimator(tiny_catalog)
        props = estimator.base_properties("t")
        filtered = estimator.apply_predicate(props, eq(col("t", "c"), 1))
        assert filtered.rows >= 1.0
