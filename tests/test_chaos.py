"""Chaos suite: injected faults must never change a served plan.

The fault model (``docs/RESILIENCE.md``) says every cache in the service
layer is a *byte-identical shortcut*: any entry may vanish or turn to poison
at any moment and the only observable consequence is recomputation.  This
module enforces that with a differential oracle — workloads are served
through a session while a seeded :class:`~repro.service.faults.FaultInjector`
drops and corrupts entries mid-build, and every produced DAG must fingerprint
identically to the memo-free reference builder
(``DagBuilder(..., memoize=False)``), per cache family and across all of
them at once.

Determinism of the chaos itself is tested too (a failure that cannot replay
cannot be debugged): identical seeds produce identical fault schedules, and
the hash-seed matrix in ``tests/test_build_determinism.py`` extends the same
check across ``PYTHONHASHSEED`` values.

The service-process drills live at the end: a worker SIGKILLed mid-run must
surface as a typed :class:`~repro.service.resilience.ServiceWorkerError`
(exit code, heartbeat, partial results) instead of hanging the collector, and
a corrupted snapshot must be rejected, not restored wrong.
"""

import importlib.util
import os
import sys

import pytest

from repro.api import MQOptimizer
from repro.catalog import psp_catalog
from repro.dag.builder import DagBuilder
from repro.service import (
    FaultInjector,
    OptimizerSession,
    ServiceWorkerError,
    SnapshotError,
)
from repro.workloads.scaleup import scaleup_queries

from tests.generators import dag_fingerprint, random_query_workload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ALL_FAMILIES = (
    "base_props",
    "scans",
    "derived",
    "join_props",
    "join_ops",
    "join_recipes",
    "results",
    "block_shapes",
    "block_keys",
    "weak_joins",
    "implications",
)


def _workloads():
    batches = [scaleup_queries(i) for i in (1, 2, 3)]
    batches += [random_query_workload(seed) for seed in (3, 7)]
    return batches


def _cold_fingerprints(catalog, batches):
    return [
        dag_fingerprint(DagBuilder(catalog, memoize=False).build(list(queries)))
        for queries in batches
    ]


class TestDeterministicSchedules:
    def _run(self, seed):
        session = OptimizerSession(psp_catalog(), cache_plans=False)
        injector = FaultInjector(seed, rate=0.25)
        with injector.attach(session):
            for queries in _workloads():
                session.build_dag(queries)
        return injector

    def test_same_seed_same_schedule(self):
        a, b = self._run(42), self._run(42)
        assert a.schedule == b.schedule
        assert a.schedule_digest() == b.schedule_digest()
        assert a.injected_faults == b.injected_faults > 0

    def test_different_seed_different_schedule(self):
        a, b = self._run(42), self._run(43)
        assert a.schedule_digest() != b.schedule_digest()

    def test_corrupt_snapshot_is_deterministic(self):
        session = OptimizerSession(psp_catalog())
        session.build_dag(scaleup_queries(1))
        data = session.snapshot_state()
        one = FaultInjector(9).corrupt_snapshot(data)
        two = FaultInjector(9).corrupt_snapshot(data)
        assert one == two != data


class TestFaultInjectorContract:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FaultInjector(1, rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(1, mode="meteor")
        session = OptimizerSession(psp_catalog())
        with pytest.raises(ValueError, match="unknown cache families"):
            FaultInjector(1, families=["no_such_family"]).attach(session)

    def test_refuses_double_attach(self):
        session = OptimizerSession(psp_catalog())
        first = FaultInjector(1).attach(session)
        try:
            with pytest.raises(ValueError, match="already has a fault hook"):
                FaultInjector(2).attach(session)
        finally:
            first.detach()
        # After detach the slot is free again.
        FaultInjector(3).attach(session).detach()

    def test_corrupt_snapshot_rejects_unknown_mode_and_empty_data(self):
        injector = FaultInjector(1)
        with pytest.raises(ValueError):
            injector.corrupt_snapshot(b"x", mode="shred")
        with pytest.raises(ValueError):
            injector.corrupt_snapshot(b"")


class TestByteIdentityUnderFaults:
    """The oracle: faulted warm builds == memo-free cold builds, exactly."""

    @pytest.mark.parametrize("mode", ["drop", "corrupt", "mixed"])
    def test_all_families_mixed_workloads(self, mode):
        catalog = psp_catalog()
        batches = _workloads()
        cold = _cold_fingerprints(catalog, batches)
        session = OptimizerSession(catalog, cache_plans=False)
        injector = FaultInjector(seed=101, rate=0.3, mode=mode)
        with injector.attach(session):
            # Two serving rounds: the first populates (and faults) the cache,
            # the second rebuilds through the damaged warm state.
            for _round in range(2):
                for queries, expected in zip(batches, cold):
                    assert dag_fingerprint(session.build_dag(queries)) == expected
        assert injector.injected_faults > 0, "chaos run injected nothing"

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_each_family_at_full_fault_rate(self, family):
        # rate=1.0 on one family: every read of it faults — the family is
        # effectively unusable, and the plans must not care.
        catalog = psp_catalog()
        batches = [scaleup_queries(2), random_query_workload(5)]
        cold = _cold_fingerprints(catalog, batches)
        session = OptimizerSession(catalog, cache_plans=False)
        injector = FaultInjector(seed=7, rate=1.0, families=[family], mode="mixed")
        with injector.attach(session):
            for _round in range(2):
                for queries, expected in zip(batches, cold):
                    assert dag_fingerprint(session.build_dag(queries)) == expected

    def test_optimize_costs_match_one_shot_reference(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog, cache_plans=True)
        reference = MQOptimizer(catalog)
        injector = FaultInjector(seed=23, rate=0.3)
        with injector.attach(session):
            for queries in _workloads():
                for algorithm in ("greedy", "volcano-ru"):
                    warm = session.optimize(queries, algorithm)
                    cold = reference.optimize(queries, algorithm)
                    assert warm.cost == cold.cost
                    assert sorted(warm.plan.materialized) == sorted(
                        cold.plan.materialized
                    )
        assert injector.injected_faults > 0

    def test_quarantine_counters_account_for_poison(self):
        session = OptimizerSession(psp_catalog(), cache_plans=False)
        injector = FaultInjector(seed=3, rate=0.5, mode="corrupt")
        with injector.attach(session):
            session.build_dag(scaleup_queries(2))
            session.build_dag(scaleup_queries(2))
        stats = session.cache_stats()
        assert injector.injected_corruptions > 0
        assert stats.quarantined > 0
        assert stats.quarantined <= injector.injected_corruptions


class TestResultCacheChaos:
    """rate-1.0 faults on the ``results`` family (PR 10): the cross-batch
    result cache becomes unusable, and execution must not care — rows *and*
    work accounting byte-identical to a never-cached run, because a dropped
    or corrupted entry is strictly a miss (corruption additionally counts a
    quarantine), never a wrong row."""

    def _setup(self):
        from repro.execution import generate_psp_data
        from repro.workloads.scaleup import component_query

        catalog = psp_catalog(relation_count=6)
        database = generate_psp_data(relation_count=6, rows_per_table=100)
        batches = [component_query(1), component_query(2), component_query(1)]
        return catalog, database, batches

    @pytest.mark.parametrize("mode", ["drop", "corrupt"])
    def test_unusable_results_family_serves_seed_bytes(self, mode):
        from repro.execution import Executor
        from tests.test_result_cache import work_digest

        catalog, database, batches = self._setup()
        expected = [
            work_digest(
                Executor(database, catalog).run(
                    MQOptimizer(catalog).optimize(queries, "greedy").plan
                )
            )
            for queries in batches
        ]
        session = OptimizerSession(catalog, cache_plans=False, result_cache=True)
        executor = Executor(database, catalog,
                            result_cache=session.result_cache)
        injector = FaultInjector(seed=11, rate=1.0, families=["results"],
                                 mode=mode)
        with injector.attach(session):
            for queries, digest in zip(batches, expected):
                produced = executor.run(session.optimize(queries, "greedy").plan)
                assert work_digest(produced) == digest
        cache = session.result_cache
        # Nothing was ever served or injected: every probe was faulted away.
        assert cache.exec_serves == 0
        assert cache.injected_serves == 0
        assert cache.exact_injections == 0
        assert cache.covering_injections == 0
        if mode == "drop":
            assert injector.injected_drops > 0
        else:
            assert injector.injected_corruptions > 0
            assert session.cache_stats().quarantined > 0


class TestRecipeQuarantine:
    def test_malformed_recipe_is_quarantined_and_rebuilt(self):
        catalog = psp_catalog()
        queries = scaleup_queries(2)
        expected = dag_fingerprint(DagBuilder(catalog, memoize=False).build(list(queries)))
        session = OptimizerSession(catalog, cache_plans=False)
        session.build_dag(queries)
        cache = session.cache
        assert len(cache.join_recipes) > 0
        # Structurally damage every recorded recipe (keep the deps component
        # intact so invalidation bookkeeping is untouched).
        for key in list(cache.join_recipes):
            _entries, deps = dict.__getitem__(cache.join_recipes, key)
            dict.__setitem__(cache.join_recipes, key, (("bogus",), deps))
        assert dag_fingerprint(session.build_dag(queries)) == expected
        stats = session.cache_stats()
        assert stats.recipe_quarantines > 0
        # Quarantined recipes were re-recorded by the rebuild: a third build
        # replays them cleanly.
        before = stats.recipe_quarantines
        assert dag_fingerprint(session.build_dag(queries)) == expected
        assert session.cache_stats().recipe_quarantines == before


def _load_harness():
    spec = importlib.util.spec_from_file_location(
        "chaos_test_harness", os.path.join(REPO_ROOT, "benchmarks", "harness.py")
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestServiceWorkerFailure:
    def test_sigkilled_worker_is_a_typed_failure_not_a_hang(self):
        harness = _load_harness()
        with pytest.raises(ServiceWorkerError) as excinfo:
            harness.measure_service_throughput(
                workers=2, batches=8, kill_after=2, worker_timeout_s=60.0
            )
        error = excinfo.value
        assert len(error.failures) == 1
        failure = error.failures[0]
        assert failure["worker"] == 0
        assert failure["exitcode"] == -9  # SIGKILL
        assert failure["heartbeat"] == 2  # batches served before death
        assert error.partial["reports"] == 1  # the survivor still reported
        assert "worker 0" in str(error)

    def test_chaos_service_run_completes_and_verifies(self):
        harness = _load_harness()
        metrics = harness.measure_service_throughput(
            workers=2, batches=12, chaos_seed=5
        )
        assert metrics["chaos"] is True
        assert metrics["injected_faults"] > 0
        assert metrics["worker_failures"] == []

    def test_corrupted_snapshot_never_restores_wrong(self):
        session = OptimizerSession(psp_catalog())
        session.build_dag(scaleup_queries(1))
        data = session.snapshot_state()
        for mode in ("truncate", "bitflip"):
            damaged = FaultInjector(seed=11).corrupt_snapshot(data, mode=mode)
            with pytest.raises(SnapshotError):
                OptimizerSession.from_snapshot(damaged)
