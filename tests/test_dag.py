"""Tests for AND-OR DAG construction: expansion, unification, subsumption,
sharability, and structural invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import (
    Aggregate,
    AggregateFunction,
    Join,
    Project,
    Relation,
    Select,
    col,
    eq,
    ge,
    gt,
    lt,
)
from repro.dag import DagBuilder, Query
from repro.dag.nodes import DagError, JoinOp, ScanOp, SelectOp
from repro.dag.sharability import degree_of_sharing, sharable_nodes, sharing_degrees


def join_rs(v_limit=500):
    """σ_{v<limit}(r) ⋈ s on a."""
    return Join(
        Select(Relation("r"), lt(col("r", "v"), v_limit)),
        Relation("s"),
        eq(col("r", "a"), col("s", "a")),
    )


def join_rst(v_limit=500):
    """(σ(r) ⋈ s) ⋈ t."""
    return Join(join_rs(v_limit), Relation("t"), eq(col("s", "c"), col("t", "c")))


class TestBlockExpansion:
    def test_three_relation_chain_has_node_per_connected_subset(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        builder.build([Query("q", join_rst())])
        join_nodes = [
            n for n in builder.dag.equivalence_nodes()
            if isinstance(n.key, tuple) and n.key[0] == "join"
        ]
        # Connected subsets of the chain r-s-t with >= 2 members: {rs}, {st}, {rst}.
        assert len(join_nodes) == 3

    def test_join_operations_cover_both_orders(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        root = builder.build_expression(join_rs())
        assert len(root.operations) == 2  # (r ⋈ s) and (s ⋈ r)
        assert all(isinstance(op.operator, JoinOp) for op in root.operations)

    def test_selection_pushed_into_scan(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        root = builder.build_expression(Select(Relation("r"), lt(col("r", "v"), 10)))
        assert isinstance(root.operations[0].operator, ScanOp)
        assert root.operations[0].operator.predicate is not None

    def test_bushy_plans_present_for_four_relations(self, tiny_catalog):
        expr = Join(join_rst(), Relation("p"), eq(col("t", "d"), col("p", "d")))
        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        root = builder.build_expression(expr)
        # Partitions of {r,s,t,p}: {r|stp, rs|tp, rst|p} each in both orders.
        assert len(root.operations) == 6

    def test_cross_product_block_still_builds(self, tiny_catalog):
        expr = Join(Relation("r"), Relation("t"))  # no predicate: cross product
        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        root = builder.build_expression(expr)
        assert root.rows == pytest.approx(10_000 * 5_000)

    def test_self_join_gets_distinct_canonical_aliases(self, tiny_catalog):
        expr = Join(
            Relation("r", "r1"), Relation("r", "r2"), eq(col("r1", "a"), col("r2", "b"))
        )
        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        root = builder.build_expression(expr)
        leaf_keys = root.key[1]
        assert len(leaf_keys) == 2  # the two occurrences stay distinct

    def test_too_many_relations_rejected(self, tiny_catalog):
        expr = Relation("r")
        for i in range(15):
            expr = Join(expr, Relation("s", f"s{i}"), eq(col("r", "a"), col(f"s{i}", "a")))
        builder = DagBuilder(tiny_catalog)
        with pytest.raises(ValueError):
            builder.build([Query("big", expr)])


class TestUnification:
    def test_identical_subexpressions_share_nodes(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        q1 = Query("q1", join_rst())
        q2 = Query("q2", Join(join_rs(), Relation("p"), eq(col("s", "c"), col("p", "d"))))
        dag = builder.build([q1, q2])
        rs_nodes = [
            n for n in dag.equivalence_nodes()
            if isinstance(n.key, tuple) and n.key[0] == "join" and len(n.key[1]) == 2
            and any("'r'" in str(k) or "('scan', 'r'" in str(k) for k in n.key[1])
        ]
        shared = [n for n in rs_nodes if len(n.parents) >= 2]
        assert shared, "the r ⋈ s sub-expression should be unified across the two queries"

    def test_different_constants_do_not_unify(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        dag = builder.build([Query("q1", join_rs(100)), Query("q2", join_rs(200))])
        roots = dag.query_roots
        assert roots[0] is not roots[1]

    def test_identical_queries_share_everything(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        dag = builder.build([Query("q1", join_rst()), Query("q2", join_rst())])
        assert dag.query_roots[0] is dag.query_roots[1]

    def test_aggregate_unification(self, tiny_catalog):
        agg = Aggregate(
            join_rs(),
            group_by=(col("s", "c"),),
            aggregates=(AggregateFunction("sum", col("s", "w"), "total"),),
            alias="v",
        )
        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        dag = builder.build([Query("q1", agg), Query("q2", agg)])
        assert dag.query_roots[0] is dag.query_roots[1]


class TestStructure:
    def test_topological_numbers_respect_edges(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog)
        dag = builder.build([Query("q", join_rst()), Query("p", join_rs(100))])
        dag.validate()
        for operation in dag.operation_nodes():
            for child in operation.children:
                assert child.topo_number < operation.equivalence.topo_number

    def test_pseudo_root_has_all_query_roots(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog)
        dag = builder.build([Query("q", join_rst()), Query("p", join_rs(100))])
        assert len(dag.query_roots) == 2
        assert set(dag.root.operations[0].children) == set(dag.query_roots)

    def test_materialization_costs_assigned(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog)
        dag = builder.build([Query("q", join_rst())])
        for node in dag.equivalence_nodes():
            if not node.is_base and node is not dag.root:
                assert node.mat_cost > 0
                assert node.reuse_cost > 0
                assert node.reuse_cost <= node.mat_cost

    def test_empty_batch_rejected(self, tiny_catalog):
        with pytest.raises(ValueError):
            DagBuilder(tiny_catalog).build([])

    def test_project_node(self, tiny_catalog):
        expr = Project(join_rs(), (col("s", "c"),))
        builder = DagBuilder(tiny_catalog)
        root = builder.build_expression(expr)
        assert root.key[0] == "project"

    def test_validate_detects_missing_root(self, tiny_catalog):
        from repro.dag.nodes import Dag

        with pytest.raises(DagError):
            Dag().validate()


class TestSubsumption:
    def test_implied_selection_gets_derivation(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog, enable_subsumption=True)
        dag = builder.build([Query("q1", join_rs(100)), Query("q2", join_rs(500))])
        stronger = dag.find(("scan", "r", "r", frozenset({lt(col("r", "v"), 100)})))
        assert stronger is not None
        assert any(op.is_subsumption for op in stronger.operations)

    def test_equality_selections_get_disjunction_node(self, tiny_catalog):
        q1 = Query("q1", Join(Select(Relation("r"), eq(col("r", "b"), 1)), Relation("s"),
                              eq(col("r", "a"), col("s", "a"))))
        q2 = Query("q2", Join(Select(Relation("r"), eq(col("r", "b"), 2)), Relation("s"),
                              eq(col("r", "a"), col("s", "a"))))
        builder = DagBuilder(tiny_catalog, enable_subsumption=True)
        dag = builder.build([q1, q2])
        disjunction_nodes = [
            n for n in dag.equivalence_nodes() if n.created_by_subsumption and n.key[0] == "scan"
        ]
        assert disjunction_nodes, "a σ(b=1 ∨ b=2) node should have been created"

    def test_aggregate_subsumption_creates_combined_groupby(self, tiny_catalog):
        def agg(group_col, alias):
            return Aggregate(
                join_rs(),
                group_by=(group_col,),
                aggregates=(AggregateFunction("sum", col("s", "w"), "total"),),
                alias=alias,
            )

        q1 = Query("q1", agg(col("s", "c"), "by_c"))
        q2 = Query("q2", agg(col("r", "b"), "by_b"))
        builder = DagBuilder(tiny_catalog, enable_subsumption=True)
        dag = builder.build([q1, q2])
        combined = [
            n for n in dag.equivalence_nodes()
            if isinstance(n.key, tuple) and n.key[0] == "agg" and len(n.key[2]) == 2
        ]
        assert combined, "a group-by on both columns should have been added"
        for root in dag.query_roots:
            assert any(op.is_subsumption for op in root.operations) or root.operations

    def test_join_level_subsumption_creates_weak_node(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog, enable_subsumption=True)
        dag = builder.build([Query("q1", join_rs(100)), Query("q2", join_rs(500))])
        weak = [n for n in dag.equivalence_nodes() if n.created_by_subsumption and n.key[0] == "join"]
        assert weak, "a shared weaker join should have been created"

    def test_subsumption_count_reported(self, tiny_catalog):
        from repro.dag.subsumption import apply_subsumption

        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        builder.build([Query("q1", join_rs(100)), Query("q2", join_rs(500))])
        assert apply_subsumption(builder) > 0

    def test_no_subsumption_between_unrelated_predicates(self, tiny_catalog):
        q1 = Query("q1", Select(Relation("r"), lt(col("r", "v"), 100)))
        q2 = Query("q2", Select(Relation("r"), gt(col("r", "b"), 50)))
        builder = DagBuilder(tiny_catalog, enable_subsumption=True)
        dag = builder.build([q1, q2])
        for node in dag.equivalence_nodes():
            for op in node.operations:
                if op.is_subsumption:
                    pytest.fail("no subsumption derivation should exist between unrelated predicates")


class TestSharability:
    def test_shared_node_is_sharable(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        q1 = Query("q1", join_rst())
        q2 = Query("q2", Join(join_rs(), Relation("p"), eq(col("s", "c"), col("p", "d"))))
        dag = builder.build([q1, q2])
        shared = sharable_nodes(dag)
        assert shared
        assert all(degree_of_sharing(dag, node) > 1 for node in shared)

    def test_single_query_without_self_overlap_has_no_sharable_nodes(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        dag = builder.build([Query("q", join_rst())])
        assert sharable_nodes(dag) == []

    def test_degree_counts_uses_through_one_plan(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        dag = builder.build([Query("q1", join_rst()), Query("q2", join_rst())])
        root = dag.query_roots[0]
        assert degree_of_sharing(dag, root) == pytest.approx(2.0)

    def test_sharing_degrees_covers_candidates(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog, enable_subsumption=False)
        dag = builder.build([Query("q1", join_rst()), Query("q2", join_rst())])
        degrees = sharing_degrees(dag)
        assert degrees[dag.query_roots[0].id] == pytest.approx(2.0)


@settings(max_examples=20, deadline=None)
@given(
    limits=st.lists(st.integers(10, 990), min_size=1, max_size=4),
    chain_length=st.integers(1, 3),
)
def test_random_batches_build_valid_dags(limits, chain_length):
    """Property: any batch of chain queries yields a structurally valid DAG."""
    from repro.catalog import psp_catalog

    catalog = psp_catalog(relation_count=chain_length + 1)
    queries = []
    for index, limit in enumerate(limits):
        expr = Select(Relation("psp1"), ge(col("psp1", "num"), limit))
        for j in range(1, chain_length + 1):
            expr = Join(expr, Relation(f"psp{j + 1}"), eq(col(f"psp{j}", "sp"), col(f"psp{j + 1}", "p")))
        queries.append(Query(f"q{index}", expr))
    builder = DagBuilder(catalog)
    dag = builder.build(queries)
    dag.validate()
    assert len(dag.query_roots) == len(queries)
