"""Randomized cross-algorithm differential oracle suite.

Every optimizer in this package has at least one equivalent-by-construction
twin: the array engine vs. the reference object-graph recurrence, the dense
incremental cost state vs. from-scratch recomputation, incremental Volcano-RU
vs. its per-query re-costing reference, the dense Volcano-SH decision pass
vs. its object-graph reference, the incremental greedy pruning fixpoint vs.
its from-scratch rounds, the dense (NumPy) sharability sweep vs. the sparse
dict sweep.  This suite pits them against each other on ~200 seeded random
AND-OR DAGs (see :mod:`tests.generators`, including the subsumption-augmented
variant that exercises the Volcano-SH swap/undo machinery) and additionally
checks the qualitative algorithm ordering of the paper:

* incremental Volcano-RU returns *exactly* (same total, same materialized
  set, same operation choices) what the from-scratch reference returns, on
  every query order;
* ``exhaustive ≤ greedy ≤ Volcano-SH ≤ Volcano`` (costs), with the handful
  of seeds where the greedy heuristic is genuinely suboptimal pinned as
  known — a behavioral change in either direction fails the suite;
* the engine cost kernels equal the reference recurrence on random
  materialization sets, and the dense incremental state tracks from-scratch
  costs through random toggle/undo/probe sequences;
* the memoized, hash-consed DAG builder produces DAGs byte-identical to the
  reference (memo-free) builder — equivalence keys, properties, operation
  sets, costs, topological numbers — on every seeded workload family and on
  randomized query batches, and all four paper algorithms return identical
  results (cost, materialized set, counters, plan explain) on both.

All seeds are fixed, so the suite is deterministic; a failure message always
names the seed that reproduces it.
"""

import random

import pytest

from repro.dag.sharability import (
    _batched_degrees_dense,
    _batched_degrees_sparse,
    _np,
    sharable_nodes,
)
from repro.optimizer.costing import (
    compute_node_costs,
    compute_node_costs_reference,
    total_cost_reference,
)
from repro.optimizer.engine import IncrementalCostState, get_engine
from repro.optimizer.exhaustive import optimize_exhaustive
from repro.optimizer.greedy import (
    GreedyOptions,
    _prune_unused,
    _prune_unused_reference,
    optimize_greedy,
)
from repro.optimizer.volcano import consolidated_best_plan, optimize_volcano
from repro.optimizer.volcano_ru import _run_order, _run_order_reference
from repro.optimizer.volcano_sh import (
    _subsumption_alternative,
    _volcano_sh_reference,
    optimize_volcano_sh,
    plan_node_costs,
    volcano_sh_pass,
)
from tests.generators import (
    dag_fingerprint,
    random_dag,
    random_materialization_sets,
    random_query_workload,
    random_subsumption_dag,
    subsumption_undo_dag,
)

SEEDS = range(200)

#: Seeds (of SEEDS) where the greedy heuristic provably misses the exhaustive
#: optimum: benefits there are non-monotone (two nodes are only jointly
#: profitable, or materializing one unlocks a better candidate later), which
#: single-step greedy cannot see.  Pinned so a quality *regression* on any
#: other seed — and an unreported *improvement* here — both fail loudly.
GREEDY_SUBOPTIMAL_SEEDS = {25, 78, 158, 175}

#: The one generated DAG where that same non-monotonicity makes greedy lose
#: to Volcano-SH (which inherits a jointly-profitable set from the Volcano
#: plan structure instead of building it node by node).
GREEDY_ABOVE_SH_SEEDS = {78}


def _orders(dag):
    forward = list(range(len(dag.query_roots)))
    orders = [forward]
    if len(forward) > 1:
        orders.append(list(reversed(forward)))
    return orders


class TestIncrementalVolcanoRUExact:
    def test_matches_from_scratch_reference_on_every_order(self):
        """The tentpole differential: the incremental per-query costing must
        reproduce the from-scratch pass *exactly* — total, materialized set,
        and per-node operation choices, not just the cost."""
        for seed in SEEDS:
            dag = random_dag(seed)
            for order in _orders(dag):
                incremental = _run_order(dag, order)
                reference = _run_order_reference(dag, order)
                assert incremental[0] == reference[0], (seed, order)
                assert incremental[1] == reference[1], (seed, order)
                assert incremental[2] == reference[2], (seed, order)


class TestAlgorithmOrdering:
    def test_greedy_vs_sh_vs_volcano(self):
        """Paper ordering: Volcano-SH never loses to Volcano (it falls back),
        greedy never loses to Volcano (each materialization step strictly
        lowers bestcost), and greedy beats Volcano-SH except on the pinned
        non-monotone seeds."""
        for seed in SEEDS:
            dag = random_dag(seed)
            volcano = optimize_volcano(dag).cost
            sh = optimize_volcano_sh(dag).cost
            greedy = optimize_greedy(dag).cost
            assert sh <= volcano + 1e-9, seed
            assert greedy <= volcano + 1e-9, seed
            if seed in GREEDY_ABOVE_SH_SEEDS:
                assert greedy > sh + 1e-9, (
                    f"seed {seed} no longer exhibits greedy > Volcano-SH; "
                    "update GREEDY_ABOVE_SH_SEEDS"
                )
            else:
                assert greedy <= sh + 1e-9, (seed, greedy, sh)

    def test_greedy_vs_exhaustive_optimum(self):
        """Greedy equals the exhaustive optimum over the sharable candidates
        on every generated DAG except the pinned non-monotone ones (where it
        must still never beat the optimum)."""
        for seed in SEEDS:
            dag = random_dag(seed)
            candidates = sharable_nodes(dag)
            if len(candidates) > 14:  # pragma: no cover - generator keeps DAGs small
                continue
            exhaustive = optimize_exhaustive(dag, candidates).cost
            greedy = optimize_greedy(dag).cost
            assert exhaustive <= greedy + 1e-9, seed
            if seed in GREEDY_SUBOPTIMAL_SEEDS:
                assert greedy > exhaustive + 1e-9, (
                    f"seed {seed} no longer exhibits a greedy/exhaustive gap; "
                    "update GREEDY_SUBOPTIMAL_SEEDS"
                )
            else:
                assert greedy == pytest.approx(exhaustive, abs=1e-9), seed

    def test_greedy_ablations_agree_on_final_invariant(self):
        """Every ablation combination still satisfies
        ``result.cost == bestcost(dag, result.plan.materialized)``."""
        from repro.optimizer.costing import bestcost

        for seed in range(0, 60, 3):
            dag = random_dag(seed)
            for sharability in (True, False):
                for monotonicity in (True, False):
                    result = optimize_greedy(
                        dag,
                        GreedyOptions(
                            use_sharability=sharability, use_monotonicity=monotonicity
                        ),
                    )
                    assert result.cost == bestcost(dag, result.plan.materialized), (
                        seed,
                        sharability,
                        monotonicity,
                    )


class TestEngineKernelsVsReference:
    def test_cost_tables_match_on_random_materialization_sets(self):
        for seed in range(0, 100, 2):
            dag = random_dag(seed)
            rng = random.Random(seed ^ 0xA5A5)
            for materialized in random_materialization_sets(dag, rng):
                fast = compute_node_costs(dag, materialized)
                reference = compute_node_costs_reference(dag, materialized)
                assert fast == reference, (seed, sorted(materialized))

    def test_incremental_state_tracks_reference_through_toggle_undo(self):
        for seed in range(40):
            dag = random_dag(seed)
            state = IncrementalCostState(dag)
            rng = random.Random(seed ^ 0x5A5A)
            candidates = [
                node
                for node in dag.equivalence_nodes()
                if not node.is_base and node is not dag.root
            ]
            materialized = set()
            undo_stack = []
            for _ in range(rng.randint(3, 8)):
                if undo_stack and rng.random() < 0.4:
                    node, log, added = undo_stack.pop()
                    state.undo(node, log, added)
                    materialized ^= {node.id}
                else:
                    node = rng.choice(candidates)
                    add = node.id not in materialized
                    log = state.toggle(node, add=add)
                    undo_stack.append((node, log, add))
                    materialized ^= {node.id}
                expected = compute_node_costs_reference(dag, materialized)
                for eq_node in dag.equivalence_nodes():
                    assert state.costs[eq_node.id] == pytest.approx(
                        expected[eq_node.id]
                    ), (seed, eq_node.id)
                assert state.total() == pytest.approx(
                    total_cost_reference(dag, expected, materialized)
                ), seed

    def test_probe_many_equals_from_scratch_bestcost(self):
        for seed in range(0, 60, 4):
            dag = random_dag(seed)
            state = IncrementalCostState(dag)
            candidates = [
                node.id
                for node in dag.equivalence_nodes()
                if not node.is_base and node is not dag.root
            ]
            before_costs = dict(state.costs)
            before_total = state.total()
            totals = state.probe_many(candidates)
            # Probes are side-effect free (exact restore, no drift) ...
            assert state.total() == before_total, seed
            assert dict(state.costs) == before_costs, seed
            # ... and each one equals the from-scratch bestcost.
            for node_id, total in zip(candidates, totals):
                expected_costs = compute_node_costs_reference(dag, {node_id})
                expected = total_cost_reference(dag, expected_costs, {node_id})
                assert total == pytest.approx(expected), (seed, node_id)


def _assert_sh_pass_matches(dag, plan=None):
    """Dense Volcano-SH must equal the object-graph reference byte-for-byte:
    the materialized set, every operation choice (by identity), and the
    exact float total."""
    plan = plan or consolidated_best_plan(dag)
    dense_mat, dense_choices, dense_total = volcano_sh_pass(dag, plan)
    ref_mat, ref_choices, ref_total = _volcano_sh_reference(dag, plan)
    assert dense_mat == ref_mat
    assert dense_choices == ref_choices
    assert all(dense_choices[k] is ref_choices[k] for k in ref_choices)
    assert dense_total == ref_total
    return ref_mat, ref_choices, ref_total


class TestDenseVolcanoSH:
    def test_matches_reference_on_random_dags(self):
        for seed in SEEDS:
            try:
                _assert_sh_pass_matches(random_dag(seed))
            except AssertionError:
                raise AssertionError(f"dense Volcano-SH diverged on seed {seed}")

    def test_matches_reference_on_subsumption_dags(self):
        """The swap pre-pass, the created-by-subsumption pay-for-itself test,
        and the final undo only run on DAGs with subsumption derivations;
        the augmented generator exercises all of them (across these seeds
        some swaps are kept, some undone, and some sources materialize)."""
        for seed in range(100):
            try:
                _assert_sh_pass_matches(random_subsumption_dag(seed))
            except AssertionError:
                raise AssertionError(
                    f"dense Volcano-SH diverged on subsumption seed {seed}"
                )

    def test_matches_reference_on_seeded_workloads(self, tpcd_optimizer, psp_optimizer):
        """Byte-identical decisions on every tier-1 workload family: the TPC-D
        batches (fig8), the PSP scale-up composites (fig9), the stand-alone
        TPC-D queries (fig6), and a correlated parameterized batch."""
        from repro.workloads import tpcd_queries as tq
        from repro.workloads.batch import batched_queries
        from repro.workloads.nested import parameterized_batch
        from repro.workloads.scaleup import all_scaleup_workloads

        dags = [tpcd_optimizer.build_dag(batched_queries(i)) for i in range(1, 6)]
        dags += [
            psp_optimizer.build_dag(queries)
            for queries in all_scaleup_workloads().values()
        ]
        dags += [
            tpcd_optimizer.build_dag(queries)
            for queries in tq.standalone_workloads().values()
        ]
        dags.append(
            tpcd_optimizer.build_dag(parameterized_batch(tq.q2_modified, [15, 25]))
        )
        for dag in dags:
            _assert_sh_pass_matches(dag)

    def test_ru_orders_match_on_subsumption_dags(self):
        """End-to-end Volcano-RU (incremental costing + dense SH pass) versus
        the fully object-graph reference chain, on DAGs where the SH pass has
        real subsumption decisions to make."""
        for seed in range(0, 100, 4):
            dag = random_subsumption_dag(seed)
            for order in _orders(dag):
                incremental = _run_order(dag, order)
                reference = _run_order_reference(dag, order)
                assert incremental[0] == reference[0], (seed, order)
                assert incremental[1] == reference[1], (seed, order)
                assert incremental[2] == reference[2], (seed, order)

    def test_swap_undone_when_source_not_materialized(self):
        """Pinned undo scenario (see ``tests.generators.subsumption_undo_dag``):
        the pre-pass provably swaps the consumer onto the subsumption
        derivation, the source fails its pay-for-itself test, and the final
        undo must leave the plan exactly where Volcano put it."""
        dag = subsumption_undo_dag()
        plan = consolidated_best_plan(dag)
        consumer = dag.find(("X",))
        source = dag.find(("S",))
        regular = plan.choices[consumer.id]
        assert not regular.is_subsumption

        # The swap precondition of the pre-pass holds...
        reachable_ids = {node.id for node in plan.reachable()}
        alternative = _subsumption_alternative(consumer, reachable_ids)
        assert alternative is not None and alternative.children[0] is source
        via_materialized = alternative.local_cost + source.reuse_cost
        baseline = plan_node_costs(dag, plan.choices, set())
        assert via_materialized <= baseline[consumer.id]

        materialized, choices, total = _assert_sh_pass_matches(dag, plan)
        # ... the source is not worth materializing, so the swap is undone.
        assert source.id not in materialized
        assert materialized == set()
        assert choices[consumer.id] is regular
        assert choices == plan.choices
        assert total == baseline[dag.root.id]

    def test_swap_undone_on_pinned_workload(self, tpcd_optimizer):
        """Same undo scenario on a real workload: in the TPC-D batch BQ2 the
        two-year orders scan (node 18) gets swapped onto a subsumption select
        over the three-year scan, whose source does not materialize."""
        from repro.workloads.batch import batched_queries

        dag = tpcd_optimizer.build_dag(batched_queries(2))
        plan = consolidated_best_plan(dag)
        node = dag.node_by_id(18)
        original = plan.choices[node.id]
        assert not original.is_subsumption

        reachable_ids = {n.id for n in plan.reachable()}
        alternative = _subsumption_alternative(node, reachable_ids)
        assert alternative is not None
        source_ids = [child.id for child in alternative.children]
        via_materialized = alternative.local_cost + sum(
            multiplier * child.reuse_cost
            for child, multiplier in zip(alternative.children, alternative.child_multipliers)
        )
        baseline = plan_node_costs(dag, plan.choices, set())
        assert via_materialized <= baseline[node.id]

        materialized, choices, _total = _assert_sh_pass_matches(dag, plan)
        assert not any(source_id in materialized for source_id in source_ids)
        assert choices[node.id] is original
        # The undo is selective: other swaps (whose sources did materialize)
        # survive in the same plan.
        assert any(choices[k] is not plan.choices[k] for k in plan.choices)


class TestIncrementalGreedyPruning:
    def _assert_prune_matches(self, dag, materialized):
        incremental = _prune_unused(dag, set(materialized))
        reference = _prune_unused_reference(dag, set(materialized))
        assert incremental[0] == reference[0], sorted(materialized)
        assert incremental[1] == reference[1], sorted(materialized)
        assert incremental[2] == reference[2], sorted(materialized)

    def test_matches_reference_on_random_sets(self):
        """The incremental fixpoint (epsilon=0 toggles + dense choice/refcount
        maintenance) must reproduce the from-scratch rounds exactly: same
        surviving set, same argmin choices, same float total."""
        for seed in range(0, 200, 2):
            dag = random_dag(seed)
            rng = random.Random(seed ^ 0x3C3C)
            for materialized in random_materialization_sets(dag, rng, count=4):
                try:
                    self._assert_prune_matches(dag, materialized)
                except AssertionError:
                    raise AssertionError(f"pruning diverged on seed {seed}")

    def test_matches_reference_on_subsumption_dags(self):
        for seed in range(0, 100, 5):
            dag = random_subsumption_dag(seed)
            rng = random.Random(seed ^ 0xC3C3)
            for materialized in random_materialization_sets(dag, rng, count=3):
                self._assert_prune_matches(dag, materialized)

    def test_matches_reference_on_workload_batches(self, tpcd_optimizer):
        from repro.workloads.batch import batched_queries

        for index in (1, 2, 3):
            dag = tpcd_optimizer.build_dag(batched_queries(index))
            rng = random.Random(index)
            for materialized in random_materialization_sets(dag, rng, count=3):
                self._assert_prune_matches(dag, materialized)


def _seeded_builder_workloads(tpcd_optimizer, psp_optimizer):
    """(name, optimizer, queries) for every seeded workload family the suite
    locks down: TPC-D batches BQ1..BQ5 (fig8), scale-up composites CQ1..CQ5
    (fig9), the stand-alone queries (fig6), the correlated parameterized
    batch, and the no-overlap batch of Section 6.4."""
    from repro import MQOptimizer
    from repro.catalog import tpcd_catalog
    from repro.workloads import tpcd_queries as tq
    from repro.workloads.batch import all_batched_workloads, no_overlap_batch
    from repro.workloads.nested import parameterized_batch
    from repro.workloads.scaleup import all_scaleup_workloads

    entries = []
    for name, queries in all_batched_workloads().items():
        entries.append((name, tpcd_optimizer, queries))
    for name, queries in all_scaleup_workloads().items():
        entries.append((name, psp_optimizer, queries))
    for name, queries in tq.standalone_workloads().items():
        entries.append((name, tpcd_optimizer, queries))
    entries.append(
        ("Q2-param", tpcd_optimizer, parameterized_batch(tq.q2_modified, [15, 25]))
    )
    no_overlap, extended = no_overlap_batch(tpcd_catalog(1.0))
    entries.append(("no-overlap", MQOptimizer(extended), no_overlap))
    return entries


def _assert_algorithms_identical(memo_dag, ref_dag, context):
    """All four paper algorithms must return byte-identical results on the
    memoized and the reference DAG: exact float cost, materialized set,
    Figure 10 counters, and the rendered plan."""
    from repro.optimizer import optimize_greedy as greedy
    from repro.optimizer.volcano import optimize_volcano as volcano
    from repro.optimizer.volcano_ru import optimize_volcano_ru as volcano_ru
    from repro.optimizer.volcano_sh import optimize_volcano_sh as volcano_sh

    for optimize in (volcano, volcano_sh, volcano_ru, greedy):
        fast = optimize(memo_dag)
        reference = optimize(ref_dag)
        label = (context, optimize.__name__)
        assert fast.cost == reference.cost, label
        assert fast.plan.materialized == reference.plan.materialized, label
        assert fast.counters == reference.counters, label
        assert fast.plan.explain() == reference.plan.explain(), label


class TestBuilderMemoOracle:
    """The memoized, hash-consed builder vs. the reference (memo-free) one."""

    def test_matches_reference_on_seeded_workloads(self, tpcd_optimizer, psp_optimizer):
        for name, optimizer, queries in _seeded_builder_workloads(
            tpcd_optimizer, psp_optimizer
        ):
            memo_dag = optimizer.build_dag(queries)
            ref_dag = optimizer._build_reference(queries)
            assert dag_fingerprint(memo_dag) == dag_fingerprint(ref_dag), name
            _assert_algorithms_identical(memo_dag, ref_dag, name)

    def test_matches_reference_on_random_query_batches(self, psp_optimizer):
        """Randomized batches stress the paths the seeded workloads do not:
        disconnected blocks (cross-product edges, where hash-consing must
        stand down), repeated tables, spanning disjunction predicates, and
        overlapping selections feeding every subsumption rule."""
        for seed in range(40):
            queries = random_query_workload(seed)
            memo_dag = psp_optimizer.build_dag(queries)
            ref_dag = psp_optimizer._build_reference(queries)
            assert dag_fingerprint(memo_dag) == dag_fingerprint(ref_dag), seed
            _assert_algorithms_identical(memo_dag, ref_dag, seed)

    def test_memo_builder_is_default_and_flag_reaches_builder(self, psp_optimizer):
        from repro.dag.builder import DagBuilder

        assert DagBuilder(psp_optimizer.catalog).memoize
        reference = DagBuilder(psp_optimizer.catalog, memoize=False)
        assert reference._join_op_memo is None
        assert reference._expanded_joins is None
        assert reference._weak_join_memo is None


class TestSharingSweepPaths:
    @pytest.mark.skipif(_np is None, reason="NumPy not available")
    def test_dense_and_sparse_sweeps_agree(self):
        for seed in range(0, 100, 2):
            dag = random_dag(seed)
            targets = {
                node.id
                for node in dag.equivalence_nodes()
                if not node.is_base and node is not dag.root
            }
            if not targets:
                continue
            dense = _batched_degrees_dense(dag, targets)
            sparse = _batched_degrees_sparse(dag, targets)
            assert dense == sparse, seed

    def test_degrees_match_single_target_recurrence(self):
        """Both sweep paths must equal the paper's one-target-at-a-time
        recurrence (re-implemented here as the oracle)."""

        def oracle_degree(dag, target):
            memo = {}
            for node in sorted(dag.equivalence_nodes(), key=lambda n: n.topo_number):
                if node.id == target:
                    memo[node.id] = 1.0
                    continue
                best = 0.0
                for operation in node.operations:
                    total = 0.0
                    for child, multiplier in zip(
                        operation.children, operation.child_multipliers
                    ):
                        total += multiplier * memo.get(child.id, 0.0)
                    best = max(best, total)
                memo[node.id] = best
            return memo.get(dag.root.id, 0.0)

        for seed in range(0, 40, 4):
            dag = random_dag(seed)
            get_engine(dag)  # numbers the DAG, as the sweeps do internally
            targets = {
                node.id
                for node in dag.equivalence_nodes()
                if not node.is_base and node is not dag.root
            }
            sparse = _batched_degrees_sparse(dag, targets)
            for target in targets:
                assert sparse[target] == pytest.approx(oracle_degree(dag, target)), (
                    seed,
                    target,
                )
