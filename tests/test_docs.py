"""Docs freshness: the README's code examples must actually run.

Every fenced ``python`` block in ``README.md`` is executed in its own
namespace (asserts included), so the documented API — the quick-start, the
``OptimizerSession`` warm-rebuild example — can never drift from the code.
The blocks are intentionally small and statistics-only (no data generation),
keeping this suite a few hundred milliseconds.

Runs in every CI leg, including the no-NumPy one: the examples must not
depend on optional accelerators.
"""

import os
import re

import pytest

README = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "README.md")

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks():
    with open(README, encoding="utf-8") as handle:
        text = handle.read()
    return _BLOCK_RE.findall(text)


def test_readme_has_python_examples():
    assert len(_python_blocks()) >= 2, "README lost its executable examples"


@pytest.mark.parametrize("index", range(len(_python_blocks())))
def test_readme_python_block_runs(index, capsys):
    block = _python_blocks()[index]
    namespace = {"__name__": f"readme_block_{index}"}
    exec(compile(block, f"README.md[block {index}]", "exec"), namespace)
