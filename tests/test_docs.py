"""Docs freshness: the documentation's code examples must actually run.

Every fenced ``python`` block in ``README.md``, ``docs/DETERMINISM.md``,
``docs/ARCHITECTURE.md``, ``docs/RESILIENCE.md``, and
``docs/RESULT_CACHE.md`` is executed in its own namespace (asserts
included), so the documented API — the quick-start, the
``OptimizerSession`` warm-rebuild example, the linter example, the arena
walkthrough, the result-cache examples — can never drift from the code.  The
blocks are intentionally small — statistics-only, or at most a tiny generated
dataset (the result-cache examples execute real rows) — keeping this suite
fast.  The multi-worker service example (snapshot fan-out, bounded
caches, background warming — the deployment story of PR 7) runs as a real
subprocess, self-checking included.

Runs in every CI leg, including the no-NumPy one: the examples must not
depend on optional accelerators.
"""

import os
import re
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS = {
    "README.md": os.path.join(REPO_ROOT, "README.md"),
    "DETERMINISM.md": os.path.join(REPO_ROOT, "docs", "DETERMINISM.md"),
    "ARCHITECTURE.md": os.path.join(REPO_ROOT, "docs", "ARCHITECTURE.md"),
    "RESILIENCE.md": os.path.join(REPO_ROOT, "docs", "RESILIENCE.md"),
    "RESULT_CACHE.md": os.path.join(REPO_ROOT, "docs", "RESULT_CACHE.md"),
}

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks(doc):
    with open(DOCS[doc], encoding="utf-8") as handle:
        text = handle.read()
    return _BLOCK_RE.findall(text)


def _all_blocks():
    return [(doc, index, block) for doc in DOCS for index, block in enumerate(_python_blocks(doc))]


def test_readme_has_python_examples():
    assert len(_python_blocks("README.md")) >= 2, "README lost its executable examples"


def test_determinism_doc_has_python_example():
    assert len(_python_blocks("DETERMINISM.md")) >= 1, "DETERMINISM.md lost its executable example"


def test_architecture_doc_has_python_example():
    assert len(_python_blocks("ARCHITECTURE.md")) >= 1, "ARCHITECTURE.md lost its executable example"


def test_resilience_doc_has_python_examples():
    assert len(_python_blocks("RESILIENCE.md")) >= 3, "RESILIENCE.md lost its executable examples"


def test_result_cache_doc_has_python_examples():
    assert len(_python_blocks("RESULT_CACHE.md")) >= 3, "RESULT_CACHE.md lost its executable examples"


@pytest.mark.parametrize("doc, index, block", _all_blocks())
def test_doc_python_block_runs(doc, index, block, capsys):
    namespace = {"__name__": f"{doc}_block_{index}"}
    exec(compile(block, f"{doc}[block {index}]", "exec"), namespace)


def test_multi_worker_service_example_runs():
    """The deployment example really forks workers off a pickled snapshot;
    its own asserts check byte-identity of every worker's warm answers."""
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    result = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "examples", "multi_worker_service.py")],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "worker 0" in result.stdout and "worker 1" in result.stdout
    assert "byte-identical" in result.stdout
