"""Tests for the array-backed cost engine and the correctness fixes that ride
on it: engine-vs-reference cost-table equality, undo-log correctness of the
incremental cost state under random toggle/undo sequences, the greedy pruning
fixpoint invariant ``result.cost == bestcost(dag, result.plan.materialized)``,
and the multiplier-aware monotonicity bound on correlated workloads."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import GreedyOptions, Query
from repro.algebra import Join, Relation, col, eq
from repro.dag import DagBuilder
from repro.optimizer import CostEngine, get_engine
from repro.optimizer.costing import (
    best_operations,
    best_operations_reference,
    bestcost,
    compute_node_costs,
    compute_node_costs_reference,
    total_cost,
    total_cost_reference,
)
from repro.optimizer.greedy import IncrementalCostState, optimize_greedy
from repro.workloads import tpcd_queries as tq
from repro.workloads.batch import batched_queries
from repro.workloads.nested import parameterized_batch
from repro.workloads.scaleup import scaleup_queries
from tests.test_dag import join_rs, join_rst


@pytest.fixture(scope="module")
def shared_dag(medium_catalog):
    builder = DagBuilder(medium_catalog)
    q1 = Query("q1", join_rst(20))
    q2 = Query("q2", Join(join_rs(20), Relation("p"), eq(col("s", "c"), col("p", "d"))))
    return builder.build([q1, q2])


@pytest.fixture(scope="module")
def batch_dag(tpcd_optimizer):
    """The TPC-D batch workload BQ3 (six queries, real sharing)."""
    return tpcd_optimizer.build_dag(batched_queries(3))


class TestEngineSnapshot:
    def test_engine_is_cached_per_dag(self, shared_dag):
        assert get_engine(shared_dag) is get_engine(shared_dag)

    def test_engine_rebuilt_when_dag_grows(self, tiny_catalog):
        builder = DagBuilder(tiny_catalog)
        dag = builder.build([Query("q", join_rst())])
        first = get_engine(dag)
        # Simulate DAG growth: a fresh key must produce a fresh snapshot.
        node = dag.equivalence_nodes()[0]
        dag.add_operation(dag.root, dag.root.operations[0].operator, [node], 1.0)
        assert get_engine(dag) is not first

    def test_snapshot_mirrors_dag(self, shared_dag):
        engine = CostEngine(shared_dag)
        for node in shared_dag.equivalence_nodes():
            assert engine.nodes[node.id] is node
            assert engine.mat_cost[node.id] == node.mat_cost
            assert engine.reuse_cost[node.id] == node.reuse_cost
            assert engine.is_base[node.id] == node.is_base
            assert len(engine.op_table[node.id]) == len(node.operations)

    def test_node_by_id_roundtrip(self, shared_dag):
        for node in shared_dag.equivalence_nodes():
            assert shared_dag.node_by_id(node.id) is node

    def test_operation_tables_mirror_dag(self, batch_dag):
        """The dense operation-id-indexed tables (consumed by the Volcano-SH
        decision pass) must mirror the object graph exactly."""
        engine = get_engine(batch_dag)
        for operation in batch_dag.operation_nodes():
            assert engine.op_node_by_id[operation.id] is operation
            assert engine.op_owner[operation.id] == operation.equivalence.id
            assert engine.op_is_subsumption[operation.id] == operation.is_subsumption
            local_cost, children = engine.op_entry_by_op_id[operation.id]
            assert local_cost == operation.local_cost
            assert children == tuple(
                (child.id, multiplier)
                for child, multiplier in zip(operation.children, operation.child_multipliers)
            )
        for node in batch_dag.equivalence_nodes():
            assert engine.op_ids[node.id] == tuple(op.id for op in node.operations)
            assert engine.parent_op_ids[node.id] == tuple(op.id for op in node.parents)
            assert engine.created_by_subsumption[node.id] == node.created_by_subsumption

    def test_plan_reachable_ids_match_object_walk(self, batch_dag):
        """ConsolidatedPlan.reachable_ids must visit exactly the nodes of the
        historical object-graph walk, in the same order (re-implemented here
        as the oracle, since ``reachable`` itself now wraps the dense walk)."""
        from repro.optimizer.volcano import consolidated_best_plan

        def object_walk(plan, roots):
            seen = {}
            stack = list(roots)
            while stack:
                node = stack.pop()
                if node.id in seen:
                    continue
                seen[node.id] = node
                if node.is_base:
                    continue
                operation = plan.choices.get(node.id)
                if operation is None:
                    continue
                for child in operation.children:
                    stack.append(child)
            return list(seen)

        plan = consolidated_best_plan(batch_dag)
        oracle = object_walk(plan, [batch_dag.root])
        assert plan.reachable_ids() == oracle
        assert [node.id for node in plan.reachable()] == oracle
        root = batch_dag.query_roots[0]
        assert plan.reachable_ids([root.id]) == object_walk(plan, [root])


class TestEngineVsReference:
    """The engine-backed fast path must agree exactly with the reference
    object-graph implementation (the paper's recurrence spelled out)."""

    def _materialized_sets(self, dag):
        shareable = [
            n.id for n in dag.equivalence_nodes() if not n.is_base and len(n.parents) >= 2
        ]
        return [set(), set(shareable[:1]), set(shareable[:3]), set(shareable)]

    @pytest.mark.parametrize("batch_index", [1, 2, 3])
    def test_cost_tables_match_on_tpcd_batches(self, tpcd_optimizer, batch_index):
        dag = tpcd_optimizer.build_dag(batched_queries(batch_index))
        for materialized in self._materialized_sets(dag):
            fast = compute_node_costs(dag, materialized)
            reference = compute_node_costs_reference(dag, materialized)
            assert fast == reference
            assert total_cost(dag, fast, materialized) == pytest.approx(
                total_cost_reference(dag, reference, materialized)
            )

    def test_best_operations_match(self, batch_dag):
        for materialized in self._materialized_sets(batch_dag):
            costs = compute_node_costs(batch_dag, materialized)
            fast = best_operations(batch_dag, costs, materialized)
            reference = best_operations_reference(batch_dag, costs, materialized)
            assert fast == reference

    def test_cost_tables_match_on_scaleup(self, psp_optimizer):
        dag = psp_optimizer.build_dag(scaleup_queries(2))
        assert compute_node_costs(dag) == compute_node_costs_reference(dag)

    def test_base_node_with_operations_still_costs_zero(self, tiny_catalog):
        """``cost(e) = 0`` for base tables even if one is (atypically) given an
        operation — the engine kernels must match ``equivalence_cost`` here."""
        builder = DagBuilder(tiny_catalog)
        dag = builder.build([Query("q", join_rst())])
        base, other_base = [n for n in dag.equivalence_nodes() if n.is_base][:2]
        some_op = next(n for n in dag.equivalence_nodes() if n.operations).operations[0]
        dag.add_operation(base, some_op.operator, [other_base], 123.0)
        dag.assign_topological_numbers()
        fast = compute_node_costs(dag)
        assert fast[base.id] == 0.0
        assert fast == compute_node_costs_reference(dag)


class TestIncrementalStateUndoLog:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_random_toggle_undo_sequences_agree_with_bestcost(self, data, tiny_catalog):
        """Undo-log correctness: after every toggle *and* every undo, the
        incremental state's cost table and running total agree with a
        from-scratch ``bestcost`` computation."""
        builder = DagBuilder(tiny_catalog)
        dag = builder.build([Query("q1", join_rst()), Query("q2", join_rst(100))])
        state = IncrementalCostState(dag)
        candidates = [n for n in dag.equivalence_nodes() if not n.is_base and n.parents]
        materialized = set()
        undo_stack = []
        for _ in range(data.draw(st.integers(2, 10))):
            if undo_stack and data.draw(st.booleans()):
                node, log, added = undo_stack.pop()
                state.undo(node, log, added)
                materialized ^= {node.id}
            else:
                node = data.draw(st.sampled_from(candidates))
                add = node.id not in materialized
                log = state.toggle(node, add=add)
                undo_stack.append((node, log, add))
                materialized ^= {node.id}
            assert state.materialized == materialized
            expected_costs = compute_node_costs_reference(dag, materialized)
            for eq_node in dag.equivalence_nodes():
                assert state.costs[eq_node.id] == pytest.approx(expected_costs[eq_node.id])
            assert state.total() == pytest.approx(
                total_cost_reference(dag, expected_costs, materialized)
            )

    def test_cost_with_leaves_total_exactly_unchanged(self, batch_dag):
        state = IncrementalCostState(batch_dag)
        before = state.total()
        for node in batch_dag.equivalence_nodes():
            if node.is_base or len(node.parents) < 2:
                continue
            state.cost_with(node)
            assert state.total() == before  # exact, not approx: no drift


class TestGreedyPruningInvariant:
    """The pruned greedy result must be self-consistent: the reported cost is
    exactly ``bestcost`` of the reported materialized set."""

    def _assert_invariant(self, dag, options=None):
        result = optimize_greedy(dag, options)
        assert result.cost == bestcost(dag, result.plan.materialized)
        # Every surviving materialization is actually used by the final plan.
        choices = result.plan.choices
        used = {
            child.id
            for node in result.plan.reachable()
            if choices.get(node.id) is not None
            for child in choices[node.id].children
        }
        assert result.plan.materialized <= used

    def test_on_tpcd_batches(self, tpcd_optimizer):
        for index in (1, 2, 3):
            self._assert_invariant(tpcd_optimizer.build_dag(batched_queries(index)))

    def test_on_scaleup(self, psp_optimizer):
        self._assert_invariant(psp_optimizer.build_dag(scaleup_queries(2)))

    def test_on_standalone_workloads(self, tpcd_optimizer):
        for queries in (tq.q2_decorrelated(), [tq.q11()], [tq.q15()], [tq.q2()]):
            self._assert_invariant(tpcd_optimizer.build_dag(queries))

    def test_under_all_ablation_options(self, tpcd_optimizer):
        dag = tpcd_optimizer.build_dag(batched_queries(2))
        for sharability in (True, False):
            for monotonicity in (True, False):
                for incremental in (True, False):
                    self._assert_invariant(
                        dag,
                        GreedyOptions(
                            use_sharability=sharability,
                            use_monotonicity=monotonicity,
                            use_incremental=incremental,
                        ),
                    )


class TestMonotonicityBoundRegression:
    @pytest.mark.parametrize("params", [[15], [15, 25], [15, 25, 35]])
    def test_bound_accounts_for_use_multipliers(self, tpcd_optimizer, params):
        """With sharability disabled the initial heap bounds must still be
        genuine upper bounds.  The old ``len(node.parents)`` fallback
        undercounts nested-query use multipliers, which made the heap
        terminate early on these correlated parameterized batches (e.g. cost
        271.06 instead of 225.75 on the two-parameter batch); with exact
        multiplier-aware degrees the heap matches the full-recompute loop."""
        queries = parameterized_batch(tq.q2_modified, params)
        dag = tpcd_optimizer.build_dag(queries)
        full = optimize_greedy(
            dag, GreedyOptions(use_sharability=False, use_monotonicity=False)
        )
        mono = optimize_greedy(
            dag, GreedyOptions(use_sharability=False, use_monotonicity=True)
        )
        assert mono.cost == pytest.approx(full.cost, rel=1e-9)

    def test_bound_matches_sharability_path_on_transitive_sharing(self, tpcd_optimizer):
        """A single correlated query: the invariant sub-expression's direct
        use count is 1 (one parent), but it is invoked once per outer binding
        through its ancestors — only a transitive (true) degree ranks it like
        the sharability-enabled heap does.  Local fallbacks produced a
        different (arbitrarily diverging) materialization order.  Note the
        monotonicity heuristic itself is approximate on this workload — both
        paths report 198.26 vs 172.37 for full recompute, because benefits
        rise after the first materialization, which the heap forgoes by
        design — so the regression assertion is agreement between the two
        heap paths, not with the full-recompute loop."""
        dag = tpcd_optimizer.build_dag([tq.q2()])
        with_sharability = optimize_greedy(dag)
        without = optimize_greedy(dag, GreedyOptions(use_sharability=False))
        assert without.cost == pytest.approx(with_sharability.cost, rel=1e-9)
        assert without.plan.materialized == with_sharability.plan.materialized

    def test_correlated_batch_matches_sharability_path(self, tpcd_optimizer):
        queries = parameterized_batch(tq.q2_modified, [15])
        dag = tpcd_optimizer.build_dag(queries)
        with_sharability = optimize_greedy(dag)
        without = optimize_greedy(dag, GreedyOptions(use_sharability=False))
        assert without.cost <= with_sharability.cost * 1.0001


class TestDenseCostMappingView:
    """The dense cost tables are exposed through a dict-compatible view;
    every dict-style read external callers historically relied on must keep
    behaving exactly like the ``{node_id: cost}`` dicts it replaced."""

    def _view_and_dict(self, dag):
        view = compute_node_costs(dag)
        reference = dict(compute_node_costs_reference(dag))
        return view, reference

    def test_indexing_membership_and_misses(self, batch_dag):
        view, reference = self._view_and_dict(batch_dag)
        for node in batch_dag.equivalence_nodes():
            assert view[node.id] == reference[node.id]
            assert node.id in view
        missing = len(reference)
        assert missing not in view
        with pytest.raises(KeyError):
            view[missing]
        with pytest.raises(KeyError):
            view[-1]  # dict semantics: no negative-index aliasing
        assert "0" not in view
        assert view.get(missing) is None
        assert view.get(missing, 123.0) == 123.0
        assert view.get(0) == reference[0]

    def test_iteration_items_keys_values_len(self, batch_dag):
        view, reference = self._view_and_dict(batch_dag)
        assert len(view) == len(reference)
        assert list(view) == sorted(reference)
        assert dict(view.items()) == reference
        assert list(view.keys()) == sorted(reference)
        assert list(view.values()) == [reference[k] for k in sorted(reference)]
        assert dict(view) == reference

    def test_items_keys_values_are_reusable_views(self, batch_dag):
        """Like dict views (and unlike iterators), the views support multiple
        passes and len() — e.g. summing and then maxing the same values()."""
        view, reference = self._view_and_dict(batch_dag)
        values = view.values()
        # (summing in id order on both sides: float addition is order-sensitive
        # and the reference dict iterates in topo-insertion order)
        assert sum(values) == sum(reference[k] for k in sorted(reference))
        assert max(values) == max(reference.values())  # second pass works
        items = view.items()
        assert len(items) == len(reference)
        assert dict(items) == reference
        assert dict(items) == reference  # second pass works
        keys = view.keys()
        assert len(keys) == len(reference)
        assert 0 in keys and list(keys) == list(keys)

    def test_equality_with_plain_dicts_both_directions(self, batch_dag):
        view, reference = self._view_and_dict(batch_dag)
        assert view == reference
        assert reference == view
        assert not (view != reference)
        wrong = dict(reference)
        wrong[0] = wrong[0] + 1.0
        assert view != wrong
        assert view != {k: v for k, v in reference.items() if k != 0}
        assert view != object()

    def test_state_costs_view_tracks_toggles(self, batch_dag):
        state = IncrementalCostState(batch_dag)
        node = next(
            n for n in batch_dag.equivalence_nodes() if not n.is_base and len(n.parents) >= 2
        )
        before = dict(state.costs)
        assert state.costs == before
        log = state.toggle(node, add=True)
        after = dict(state.costs)
        assert after == dict(compute_node_costs_reference(batch_dag, {node.id}))
        state.undo(node, log, added=True)
        assert state.costs == before
        # The view is live, not a snapshot taken at construction time.
        assert dict(state.costs) != after or before == after


class TestBatchedSharingDegrees:
    def test_batched_degrees_match_per_target_recurrence(self, batch_dag):
        """The one-sweep batched computation must equal the paper's one-target
        -at-a-time recurrence (re-implemented here as the oracle)."""
        from repro.dag.sharability import _may_be_shared, sharing_degrees

        def oracle_degree(dag, target):
            memo = {}
            for node in sorted(dag.equivalence_nodes(), key=lambda n: n.topo_number):
                if node is target:
                    memo[node.id] = 1.0
                    continue
                best = 0.0
                for operation in node.operations:
                    total = 0.0
                    for child, multiplier in zip(
                        operation.children, operation.child_multipliers
                    ):
                        total += multiplier * memo.get(child.id, 0.0)
                    best = max(best, total)
                memo[node.id] = best
            return memo.get(dag.root.id, 0.0)

        degrees = sharing_degrees(batch_dag)
        for node in batch_dag.equivalence_nodes():
            if node.is_base or node is batch_dag.root or not _may_be_shared(node):
                continue
            assert degrees[node.id] == pytest.approx(oracle_degree(batch_dag, node))
