"""Tests for the execution engine, the data generators and the workloads."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Algorithm, MQOptimizer, Query
from repro.algebra import AggregateFunction, col, eq, gt, lt
from repro.catalog import psp_catalog, tpcd_catalog
from repro.cost.model import CostModel
from repro.execution import Executor, generate_psp_data, generate_tpcd_data
from repro.execution.operators import (
    ExecutionStats,
    aggregate_rows,
    filter_rows,
    join_rows,
    scan_rows,
)
from repro.workloads import batch, nested, scaleup, tpcd_queries as tq

MODEL = CostModel()


def _stats():
    return ExecutionStats()


class TestOperators:
    def test_scan_applies_filter_and_qualifies_columns(self):
        table = [{"a": i, "v": i * 10} for i in range(10)]
        rows = scan_rows(table, "r", lt(col("r", "v"), 50), _stats(), MODEL, 16)
        assert len(rows) == 5
        assert col("r", "a") in rows[0]

    def test_filter_rows(self):
        rows = [{col("r", "a"): i} for i in range(10)]
        assert len(filter_rows(rows, gt(col("r", "a"), 6), _stats(), MODEL)) == 3

    def test_hash_join_matches_nested_loop_reference(self):
        left = [{col("r", "a"): i % 5, col("r", "x"): i} for i in range(20)]
        right = [{col("s", "a"): i % 7, col("s", "y"): i} for i in range(20)]
        predicate = [eq(col("r", "a"), col("s", "a"))]
        joined = join_rows(left, right, predicate, _stats(), MODEL)
        reference = [
            {**l, **r} for l in left for r in right if l[col("r", "a")] == r[col("s", "a")]
        ]
        assert len(joined) == len(reference)

    def test_join_with_residual_predicate(self):
        left = [{col("r", "a"): i, col("r", "x"): i} for i in range(10)]
        right = [{col("s", "a"): i, col("s", "y"): i * 2} for i in range(10)]
        predicate = [eq(col("r", "a"), col("s", "a")), gt(col("s", "y"), 10)]
        joined = join_rows(left, right, predicate, _stats(), MODEL)
        assert all(row[col("s", "y")] > 10 for row in joined)

    def test_empty_join_input(self):
        assert join_rows([], [{col("s", "a"): 1}], [], _stats(), MODEL) == []

    def test_aggregate_sum_and_count(self):
        rows = [{col("r", "g"): i % 2, col("r", "v"): i} for i in range(10)]
        out = aggregate_rows(
            rows,
            (col("r", "g"),),
            (AggregateFunction("sum", col("r", "v"), "total"), AggregateFunction("count", None, "n")),
            "agg",
            _stats(),
            MODEL,
        )
        assert len(out) == 2
        by_group = {row[col("agg", "g")]: row for row in out}
        assert by_group[0][col("agg", "total")] == 0 + 2 + 4 + 6 + 8
        assert by_group[1][col("agg", "n")] == 5

    def test_global_aggregate_min_max(self):
        rows = [{col("r", "v"): i} for i in range(5)]
        out = aggregate_rows(
            rows,
            (),
            (AggregateFunction("min", col("r", "v"), "lo"), AggregateFunction("max", col("r", "v"), "hi")),
            "agg",
            _stats(),
            MODEL,
        )
        assert out[0][col("agg", "lo")] == 0 and out[0][col("agg", "hi")] == 4

    @settings(max_examples=30, deadline=None)
    @given(
        left_keys=st.lists(st.integers(0, 5), min_size=0, max_size=30),
        right_keys=st.lists(st.integers(0, 5), min_size=0, max_size=30),
    )
    def test_join_cardinality_property(self, left_keys, right_keys):
        left = [{col("l", "k"): k, col("l", "i"): i} for i, k in enumerate(left_keys)]
        right = [{col("r", "k"): k, col("r", "j"): j} for j, k in enumerate(right_keys)]
        joined = join_rows(left, right, [eq(col("l", "k"), col("r", "k"))], _stats(), MODEL)
        expected = sum(left_keys.count(k) * right_keys.count(k) for k in set(left_keys))  # repro-lint: ok(D002) integer counts: the sum is order-independent
        assert len(joined) == expected


class TestDataGenerators:
    def test_tpcd_data_is_deterministic_and_consistent(self):
        db1 = generate_tpcd_data(0.002, seed=3)
        db2 = generate_tpcd_data(0.002, seed=3)
        assert len(db1["lineitem"]) == len(db2["lineitem"])
        order_keys = {o["o_orderkey"] for o in db1["orders"]}
        assert all(l["l_orderkey"] in order_keys for l in db1["lineitem"][:100])

    def test_tpcd_data_scales(self):
        small = generate_tpcd_data(0.001)
        bigger = generate_tpcd_data(0.002)
        assert len(bigger["orders"]) > len(small["orders"])

    def test_psp_data_shape(self):
        db = generate_psp_data(relation_count=3, rows_per_table=100)
        assert set(db) == {"psp1", "psp2", "psp3"}
        assert all(set(row) == {"p", "sp", "num"} for row in db["psp1"])


class TestExecutor:
    @pytest.fixture(scope="class")
    def setup(self):
        catalog = tpcd_catalog(0.002)
        database = generate_tpcd_data(0.002)
        return MQOptimizer(catalog), Executor(database, catalog)

    @pytest.mark.parametrize("workload", ["Q2-D", "Q11", "Q15"])
    def test_mqo_and_no_mqo_plans_agree_on_results(self, setup, workload):
        optimizer, executor = setup
        queries = tq.standalone_workloads()[workload]
        dag = optimizer.build_dag(queries)
        volcano = executor.run(optimizer.optimize(queries, Algorithm.VOLCANO, dag=dag).plan)
        greedy = executor.run(optimizer.optimize(queries, Algorithm.GREEDY, dag=dag).plan)
        assert len(volcano.rows) == len(greedy.rows)
        assert len(volcano.per_query_rows) == len(greedy.per_query_rows) == len(queries)

    def test_mqo_plan_reuses_materialized_results(self, setup):
        optimizer, executor = setup
        queries = [tq.q11()]
        greedy = optimizer.optimize(queries, Algorithm.GREEDY)
        result = executor.run(greedy.plan)
        assert result.stats.reuses >= 1
        assert result.stats.rows_materialized > 0

    def test_executed_work_accounting_positive(self, setup):
        optimizer, executor = setup
        result = executor.run(optimizer.optimize([tq.q3()], Algorithm.VOLCANO).plan)
        assert result.stats.rows_scanned > 0
        assert result.simulated_seconds > 0

    def test_scaleup_queries_execute(self):
        catalog = psp_catalog(relation_count=6)
        database = generate_psp_data(relation_count=6, rows_per_table=500)
        optimizer = MQOptimizer(catalog)
        executor = Executor(database, catalog)
        queries = scaleup.component_query(1)
        result = executor.run(optimizer.optimize(queries, Algorithm.GREEDY).plan)
        assert len(result.per_query_rows) == 2


class TestWorkloads:
    def test_standalone_workloads_cover_figure6(self):
        assert set(tq.standalone_workloads()) == {"Q2", "Q2-D", "Q11", "Q15"}

    def test_batched_sizes(self):
        for i in range(1, 6):
            assert len(batch.batched_queries(i)) == 2 * i
        with pytest.raises(ValueError):
            batch.batched_queries(6)

    def test_batched_names_unique(self):
        names = [q.name for q in batch.batched_queries(5)]
        assert len(names) == len(set(names))

    def test_scaleup_dimensions_match_paper(self):
        # CQ_i uses 4i+2 relations and has 32i-16 join predicates and 8i-4 selections.
        for i in (1, 3, 5):
            queries = scaleup.scaleup_queries(i)
            assert len(queries) == 2 * (4 * i - 2)
            relations = {
                rel
                for q in queries
                for rel in q.expression.relations()
            }
            assert len(relations) == scaleup.relations_required(i) == 4 * i + 2

    def test_scaleup_pair_has_different_constants(self):
        a, b = scaleup.component_query(3)
        assert a.expression != b.expression

    def test_no_overlap_batch_has_disjoint_relations(self, tpcd):
        from repro.algebra.expressions import base_relations

        queries, extended = batch.no_overlap_batch(tpcd)
        seen = set()
        for query in queries:
            tables = {rel.table for rel in base_relations(query.expression)}
            assert not (tables & seen)
            seen |= tables
        dag = MQOptimizer(extended).build_dag(queries)
        from repro.dag.sharability import sharable_nodes

        assert sharable_nodes(dag) == []

    def test_parameterized_batch(self):
        queries = nested.parameterized_batch(tq.q3, [{"segment": "BUILDING"}, {"segment": "MACHINERY"}])
        assert len(queries) == 2
        assert queries[0].name != queries[1].name

    def test_all_tpcd_queries_build_dags(self, tpcd_optimizer):
        for query in (tq.q2(), tq.q2_modified(), tq.q3(), tq.q5(), tq.q7(), tq.q9(), tq.q10(), tq.q11(), tq.q15()):
            dag = tpcd_optimizer.build_dag([query])
            dag.validate()
            assert dag.num_equivalence_nodes > 3
