"""Unit tests for the expression AST, the plan/report helpers and the
nested-query expression type."""

import pytest

from repro import Query
from repro.algebra import (
    Aggregate,
    AggregateFunction,
    Join,
    Project,
    Relation,
    Select,
    col,
    eq,
    lt,
)
from repro.algebra.expressions import base_relations, walk
from repro.algebra.nested import CorrelatedSubqueryFilter
from repro.dag import DagBuilder
from repro.optimizer import optimize_greedy, optimize_volcano
from repro.optimizer.plans import ConsolidatedPlan, PlanError
from tests.test_dag import join_rs, join_rst


class TestExpressions:
    def test_relation_name_defaults_to_table(self):
        assert Relation("r").name == "r"
        assert Relation("r", "r2").name == "r2"

    def test_relations_of_a_tree(self):
        expr = join_rst()
        assert expr.relations() == frozenset({"r", "s", "t"})

    def test_base_relations_in_tree_order(self):
        tables = [rel.table for rel in base_relations(join_rst())]
        assert tables == ["r", "s", "t"]

    def test_walk_visits_every_node(self):
        nodes = list(walk(join_rst()))
        assert sum(isinstance(n, Join) for n in nodes) == 2
        assert sum(isinstance(n, Select) for n in nodes) == 1
        assert sum(isinstance(n, Relation) for n in nodes) == 3

    def test_rename_relations(self):
        renamed = join_rs().rename({"r": "r9"})
        assert "r9" in renamed.relations()
        assert "r" not in renamed.relations()

    def test_aggregate_rename_rewrites_columns(self):
        agg = Aggregate(
            Relation("r"),
            group_by=(col("r", "b"),),
            aggregates=(AggregateFunction("sum", col("r", "v"), "total"),),
            alias="a1",
        )
        renamed = agg.rename({"r": "x"})
        assert renamed.group_by[0].relation == "x"
        assert renamed.aggregates[0].column.relation == "x"

    def test_project_rename(self):
        project = Project(Relation("r"), (col("r", "a"),)).rename({"r": "z"})
        assert project.columns[0] == col("z", "a")

    def test_invalid_aggregate_function_rejected(self):
        with pytest.raises(ValueError):
            AggregateFunction("median", col("r", "v"), "m")

    def test_str_representations(self):
        assert "⋈" in str(join_rs())
        assert "σ" in str(Select(Relation("r"), lt(col("r", "v"), 1)))
        assert "γ" in str(
            Aggregate(Relation("r"), (), (AggregateFunction("count", None, "n"),), "a")
        )

    def test_correlated_filter_children_and_rename(self):
        expr = CorrelatedSubqueryFilter(
            outer=join_rs(),
            invariant=Relation("s"),
            correlation=(eq(col("s", "a"), col("r", "a")),),
            aggregate=AggregateFunction("min", col("s", "w"), "mw"),
            outer_column=col("s", "w"),
        )
        assert len(expr.children()) == 2
        renamed = expr.rename({"r": "rr"})
        assert any(c.relation == "rr" for p in renamed.correlation for c in p.columns())
        assert "min" in str(expr)


class TestPlansAndReports:
    @pytest.fixture(scope="class")
    def dag(self, medium_catalog):
        builder = DagBuilder(medium_catalog)
        return builder.build([Query("q1", join_rst(20)), Query("q2", join_rst(20))])

    def test_plan_error_for_missing_choice(self, dag):
        plan = ConsolidatedPlan(dag, {}, set())
        with pytest.raises(PlanError):
            plan.operation_for(dag.root)

    def test_reachable_includes_root_and_leaves(self, dag):
        result = optimize_volcano(dag)
        reachable = result.plan.reachable()
        assert dag.root in reachable
        assert any(node.is_base for node in reachable)

    def test_materialized_labels_match_count(self, dag):
        result = optimize_greedy(dag)
        assert len(result.materialized_labels()) == result.materialized_count

    def test_plan_cost_helper_matches_report(self, dag):
        from repro.optimizer.costing import compute_node_costs

        result = optimize_greedy(dag)
        costs = compute_node_costs(dag, result.plan.materialized)
        assert result.plan.cost(costs) == pytest.approx(result.cost, rel=1e-6)

    def test_report_records_dag_size(self, dag):
        result = optimize_volcano(dag)
        assert result.dag_equivalence_nodes == dag.num_equivalence_nodes
        assert result.dag_operation_nodes == dag.num_operation_nodes

    def test_identical_queries_fully_shared(self, dag):
        """Two identical queries: greedy shares the whole query result."""
        greedy = optimize_greedy(dag)
        volcano = optimize_volcano(dag)
        assert greedy.cost < volcano.cost
        assert greedy.materialized_count >= 1
