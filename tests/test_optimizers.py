"""Tests for the optimization algorithms: costing, Volcano, Volcano-SH,
Volcano-RU, Greedy (and its incremental/monotonicity machinery), Exhaustive."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Algorithm, GreedyOptions, MQOptimizer, Query
from repro.algebra import Join, Relation, Select, col, eq, lt
from repro.dag import DagBuilder
from repro.optimizer import (
    optimize_exhaustive,
    optimize_greedy,
    optimize_volcano,
    optimize_volcano_ru,
    optimize_volcano_sh,
)
from repro.optimizer.costing import best_operations, compute_node_costs, total_cost
from repro.optimizer.exhaustive import ExhaustiveSearchError
from repro.optimizer.greedy import IncrementalCostState
from repro.optimizer.plans import ConsolidatedPlan, PlanError, extract_plan
from repro.optimizer.volcano import consolidated_best_plan
from repro.workloads import tpcd_queries as tq
from tests.test_dag import join_rs, join_rst


@pytest.fixture(scope="module")
def shared_dag(medium_catalog):
    """A small two-query DAG with a genuinely shared sub-expression.

    The tables are large enough that materializing the shared ``σ(r) ⋈ s``
    join is worthwhile, so the multi-query algorithms have a real decision to
    make."""
    builder = DagBuilder(medium_catalog)
    q1 = Query("q1", join_rst(20))
    q2 = Query("q2", Join(join_rs(20), Relation("p"), eq(col("s", "c"), col("p", "d"))))
    return builder.build([q1, q2])


class TestCosting:
    def test_costs_are_finite_and_nonnegative(self, shared_dag):
        costs = compute_node_costs(shared_dag)
        for node in shared_dag.equivalence_nodes():
            assert costs[node.id] >= 0.0
            assert costs[node.id] != float("inf")

    def test_base_tables_cost_zero(self, shared_dag):
        costs = compute_node_costs(shared_dag)
        for node in shared_dag.equivalence_nodes():
            if node.is_base:
                assert costs[node.id] == 0.0

    def test_materializing_a_node_never_raises_other_costs(self, shared_dag):
        baseline = compute_node_costs(shared_dag)
        candidate = next(
            n for n in shared_dag.equivalence_nodes() if not n.is_base and len(n.parents) >= 2
        )
        with_mat = compute_node_costs(shared_dag, {candidate.id})
        for node in shared_dag.equivalence_nodes():
            assert with_mat[node.id] <= baseline[node.id] + 1e-9

    def test_total_cost_includes_materialization(self, shared_dag):
        candidate = next(n for n in shared_dag.equivalence_nodes() if not n.is_base and n.parents)
        costs = compute_node_costs(shared_dag, {candidate.id})
        with_mat = total_cost(shared_dag, costs, {candidate.id})
        without = total_cost(shared_dag, costs, set())
        assert with_mat == pytest.approx(without + costs[candidate.id] + candidate.mat_cost)

    def test_best_operations_pick_minimum(self, shared_dag):
        costs = compute_node_costs(shared_dag)
        choices = best_operations(shared_dag, costs)
        for node in shared_dag.equivalence_nodes():
            if node.is_base or not node.operations:
                continue
            chosen = choices[node.id]
            chosen_cost = chosen.local_cost + sum(
                m * costs[c.id] for c, m in zip(chosen.children, chosen.child_multipliers)
            )
            assert chosen_cost == pytest.approx(costs[node.id])


class TestIncrementalCostUpdate:
    def test_toggle_matches_from_scratch(self, shared_dag):
        state = IncrementalCostState(shared_dag)
        candidates = [n for n in shared_dag.equivalence_nodes() if not n.is_base and n.parents][:5]
        materialized = set()
        for node in candidates:
            state.toggle(node, add=True)
            materialized.add(node.id)
            expected = compute_node_costs(shared_dag, materialized)
            for eq_node in shared_dag.equivalence_nodes():
                assert state.costs[eq_node.id] == pytest.approx(expected[eq_node.id])

    def test_undo_restores_state(self, shared_dag):
        state = IncrementalCostState(shared_dag)
        before_costs = dict(state.costs)
        node = next(n for n in shared_dag.equivalence_nodes() if not n.is_base and len(n.parents) >= 2)
        log = state.toggle(node, add=True)
        state.undo(node, log, added=True)
        assert state.costs == before_costs
        assert state.materialized == set()

    def test_cost_with_equals_bestcost(self, shared_dag):
        state = IncrementalCostState(shared_dag)
        node = next(n for n in shared_dag.equivalence_nodes() if not n.is_base and len(n.parents) >= 2)
        expected_costs = compute_node_costs(shared_dag, {node.id})
        expected = total_cost(shared_dag, expected_costs, {node.id})
        assert state.cost_with(node) == pytest.approx(expected)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_toggle_sequences_stay_consistent(self, data, tiny_catalog):
        builder = DagBuilder(tiny_catalog)
        dag = builder.build([Query("q1", join_rst()), Query("q2", join_rst(100))])
        state = IncrementalCostState(dag)
        candidates = [n for n in dag.equivalence_nodes() if not n.is_base and n.parents]
        materialized = set()
        for _ in range(data.draw(st.integers(1, 6))):
            node = data.draw(st.sampled_from(candidates))
            add = node.id not in materialized
            state.toggle(node, add=add)
            materialized ^= {node.id}
            expected = compute_node_costs(dag, materialized)
            assert state.costs[dag.root.id] == pytest.approx(expected[dag.root.id])
            assert state.total() == pytest.approx(total_cost(dag, expected, materialized))


class TestAlgorithms:
    def test_volcano_materializes_nothing(self, shared_dag):
        result = optimize_volcano(shared_dag)
        assert result.materialized_count == 0
        assert result.cost > 0

    def test_heuristics_never_worse_than_volcano(self, shared_dag):
        volcano = optimize_volcano(shared_dag)
        for optimize in (optimize_volcano_sh, optimize_volcano_ru, optimize_greedy):
            result = optimize(shared_dag)
            assert result.cost <= volcano.cost * 1.0001

    def test_greedy_finds_the_shared_join(self, shared_dag):
        result = optimize_greedy(shared_dag)
        assert result.materialized_count >= 1
        assert result.sharable_nodes >= 1

    def test_greedy_matches_exhaustive_on_small_dag(self, shared_dag):
        greedy = optimize_greedy(shared_dag)
        exhaustive = optimize_exhaustive(shared_dag)
        assert greedy.cost <= exhaustive.cost * 1.10
        assert exhaustive.cost <= greedy.cost * 1.0001

    def test_exhaustive_refuses_large_candidate_sets(self, tpcd_optimizer):
        queries = [tq.q3(), tq.q5(), tq.q3(segment="MACHINERY"), tq.q5(region="EUROPE")]
        dag = tpcd_optimizer.build_dag(queries)
        with pytest.raises(ExhaustiveSearchError):
            optimize_exhaustive(dag, max_candidates=1)

    def test_greedy_without_monotonicity_same_cost(self, shared_dag):
        with_mono = optimize_greedy(shared_dag, GreedyOptions(use_monotonicity=True))
        without_mono = optimize_greedy(shared_dag, GreedyOptions(use_monotonicity=False))
        assert with_mono.cost == pytest.approx(without_mono.cost, rel=1e-6)

    def test_greedy_without_incremental_same_cost(self, shared_dag):
        fast = optimize_greedy(shared_dag)
        slow = optimize_greedy(shared_dag, GreedyOptions(use_incremental=False))
        assert fast.cost == pytest.approx(slow.cost, rel=1e-6)

    def test_greedy_counters_populated(self, shared_dag):
        result = optimize_greedy(shared_dag)
        assert result.counters["bestcost_calls"] >= result.materialized_count
        assert result.counters["cost_propagations"] > 0

    def test_volcano_ru_reverse_order_considered(self, shared_dag):
        result = optimize_volcano_ru(shared_dag)
        assert result.counters["orders_tried"] == 2
        single = optimize_volcano_ru(shared_dag, try_reverse=False)
        assert result.cost <= single.cost * 1.0001

    def test_volcano_sh_never_worse_than_volcano_on_workloads(self, tpcd_optimizer):
        for queries in (tq.q2_decorrelated(), [tq.q11()], [tq.q15()]):
            dag = tpcd_optimizer.build_dag(queries)
            assert optimize_volcano_sh(dag).cost <= optimize_volcano(dag).cost * 1.0001

    def test_volcano_sh_rejects_plan_missing_a_reachable_choice(self, shared_dag):
        """A malformed consolidated plan raises instead of being silently priced.

        Volcano-SH used to fall back to an argmin over all alternatives for a
        reachable non-base node without a chosen operation, pricing the node
        differently from the plan that claimed to contain it.  That branch is
        now a checked invariant (``PlanError``), so hand-edited or truncated
        plans fail loudly."""
        plan = consolidated_best_plan(shared_dag)
        victim = next(
            node.id
            for node in plan.reachable()
            if not node.is_base and node.id != shared_dag.root.id
        )
        broken = ConsolidatedPlan(shared_dag, dict(plan.choices), set(plan.materialized))
        del broken.choices[victim]
        with pytest.raises(PlanError, match="reachable non-base node"):
            optimize_volcano_sh(shared_dag, broken)


class TestPlans:
    def test_extracted_plan_contains_materialize_and_reuse(self, shared_dag):
        result = optimize_greedy(shared_dag)
        tree = extract_plan(result.plan)
        rendered = tree.describe()
        assert "materialize(" in rendered
        assert "reuse(" in rendered

    def test_explain_mentions_materialized_nodes(self, shared_dag):
        result = optimize_greedy(shared_dag)
        text = result.plan.explain()
        assert "[materialized]" in text

    def test_parent_counts_on_shared_plan(self, shared_dag):
        result = optimize_greedy(shared_dag)
        counts = result.plan.parent_counts()
        assert any(count >= 2 for count in counts.values())

    def test_volcano_plan_has_no_reuse(self, shared_dag):
        result = optimize_volcano(shared_dag)
        assert "reuse(" not in extract_plan(result.plan).describe()

    def test_result_summary_format(self, shared_dag):
        summary = optimize_greedy(shared_dag).summary()
        assert "Greedy" in summary and "cost=" in summary


class TestPaperWorkloadShapes:
    """Integration: the qualitative results of the paper's Figure 6 hold."""

    @pytest.fixture(scope="class")
    def standalone(self, tpcd_optimizer):
        return {
            name: tpcd_optimizer.optimize_all(queries)
            for name, queries in tq.standalone_workloads().items()
        }

    def test_ordering_volcano_worst(self, standalone):
        for results in standalone.values():
            volcano = results["Volcano"].cost
            for name in ("Volcano-SH", "Volcano-RU", "Greedy"):
                assert results[name].cost <= volcano * 1.0001

    def test_sharing_workloads_improve_substantially(self, standalone):
        for name in ("Q2-D", "Q11", "Q15"):
            assert standalone[name]["Greedy"].cost < 0.8 * standalone[name]["Volcano"].cost

    def test_greedy_materializes_something_on_sharing_workloads(self, standalone):
        for name in ("Q2-D", "Q11", "Q15"):
            assert standalone[name]["Greedy"].materialized_count >= 1

    def test_correlated_q2_benefits_from_mqo(self, standalone):
        assert standalone["Q2"]["Greedy"].cost < standalone["Q2"]["Volcano"].cost


class TestApi:
    def test_algorithm_parse(self):
        assert Algorithm.parse("greedy") is Algorithm.GREEDY
        assert Algorithm.parse("Volcano-SH") is Algorithm.VOLCANO_SH
        assert Algorithm.parse("volcano_ru") is Algorithm.VOLCANO_RU
        assert Algorithm.parse(Algorithm.VOLCANO) is Algorithm.VOLCANO
        with pytest.raises(ValueError):
            Algorithm.parse("magic")

    def test_disable_mqo_reduces_to_volcano(self, tiny_catalog):
        optimizer = MQOptimizer(tiny_catalog, enable_mqo=False)
        queries = [Query("q1", join_rst()), Query("q2", join_rst())]
        result = optimizer.optimize(queries, Algorithm.GREEDY)
        assert result.algorithm == "Volcano"
        assert result.materialized_count == 0

    def test_optimize_all_shares_one_dag(self, tiny_catalog):
        optimizer = MQOptimizer(tiny_catalog)
        queries = [Query("q1", join_rst()), Query("q2", join_rst())]
        results = optimizer.optimize_all(queries)
        sizes = {r.dag_equivalence_nodes for r in results.values()}
        assert len(sizes) == 1

    def test_one_shot_optimize_helper(self, tiny_catalog):
        from repro import optimize

        result = optimize([Query("q", join_rst())], tiny_catalog, "volcano")
        assert result.algorithm == "Volcano"
