"""Unit and property tests for the predicate language and implication tests."""

import pytest
from hypothesis import given, strategies as st

from repro.algebra import (
    Comparison,
    Conjunction,
    Disjunction,
    TruePredicate,
    and_,
    col,
    eq,
    ge,
    gt,
    implies,
    le,
    lt,
    lit,
    ne,
    or_,
)
from repro.algebra.columns import ColumnRef

A = col("r", "a")
B = col("r", "b")
C = col("s", "c")


class TestComparison:
    def test_columns_of_column_constant(self):
        assert lt(A, 5).columns() == frozenset({A})

    def test_columns_of_column_column(self):
        assert eq(A, C).columns() == frozenset({A, C})

    def test_relations(self):
        assert eq(A, C).relations() == frozenset({"r", "s"})
        assert lt(A, 5).relations() == frozenset({"r"})

    def test_is_join_predicate(self):
        assert eq(A, C).is_join_predicate()
        assert not lt(A, 5).is_join_predicate()
        assert not eq(A, B).is_join_predicate()

    def test_evaluate(self):
        row = {A: 3, C: 3}
        assert eq(A, C).evaluate(row)
        assert le(A, 3).evaluate(row)
        assert not gt(A, 10).evaluate(row)
        assert ne(A, 4).evaluate(row)

    def test_evaluate_none_is_false(self):
        assert not lt(A, 5).evaluate({A: None})

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison(A, "<>", lit(3))

    def test_flipped(self):
        assert lt(A, 5).flipped() == Comparison(lit(5), ">", A)

    def test_negated(self):
        assert lt(A, 5).negated() == ge(A, 5)
        assert eq(A, 5).negated() == ne(A, 5)

    def test_normalized_moves_constant_right(self):
        assert Comparison(lit(5), ">", A).normalized() == lt(A, 5)

    def test_rename(self):
        renamed = eq(A, C).rename({"r": "r2"})
        assert renamed.columns() == frozenset({col("r2", "a"), C})

    def test_str(self):
        assert str(lt(A, 5)) == "r.a < 5"


class TestBooleanConnectives:
    def test_and_flattens(self):
        predicate = and_(lt(A, 5), and_(gt(B, 1), eq(A, C)))
        assert isinstance(predicate, Conjunction)
        assert len(predicate.children) == 3

    def test_and_of_one_is_identity(self):
        assert and_(lt(A, 5)) == lt(A, 5)

    def test_and_of_nothing_is_true(self):
        assert isinstance(and_(), TruePredicate)

    def test_and_drops_true(self):
        assert and_(TruePredicate(), lt(A, 5)) == lt(A, 5)

    def test_or_flattens(self):
        predicate = or_(eq(A, 1), or_(eq(A, 2), eq(A, 3)))
        assert isinstance(predicate, Disjunction)
        assert len(predicate.children) == 3

    def test_conjunction_evaluate(self):
        predicate = and_(lt(A, 5), gt(B, 1))
        assert predicate.evaluate({A: 3, B: 2})
        assert not predicate.evaluate({A: 3, B: 0})

    def test_disjunction_evaluate(self):
        predicate = or_(eq(A, 1), eq(A, 7))
        assert predicate.evaluate({A: 7})
        assert not predicate.evaluate({A: 2})

    def test_conjuncts(self):
        predicate = and_(lt(A, 5), gt(B, 1))
        assert set(predicate.conjuncts()) == {lt(A, 5), gt(B, 1)}

    def test_true_predicate_conjuncts_empty(self):
        assert TruePredicate().conjuncts() == ()

    def test_rename_propagates(self):
        predicate = and_(lt(A, 5), eq(A, C)).rename({"r": "x"})
        assert predicate.relations() == frozenset({"x", "s"})


class TestImplication:
    def test_reflexive(self):
        assert implies(lt(A, 5), lt(A, 5))

    def test_range_implication(self):
        assert implies(lt(A, 5), lt(A, 10))
        assert not implies(lt(A, 10), lt(A, 5))
        assert implies(le(A, 5), lt(A, 10))
        assert implies(gt(A, 10), gt(A, 5))
        assert implies(ge(A, 10), gt(A, 5))
        assert not implies(gt(A, 5), gt(A, 10))

    def test_equality_implies_range(self):
        assert implies(eq(A, 5), lt(A, 10))
        assert implies(eq(A, 5), ge(A, 5))
        assert not implies(eq(A, 50), lt(A, 10))

    def test_different_columns_never_imply(self):
        assert not implies(lt(A, 5), lt(B, 10))

    def test_anything_implies_true(self):
        assert implies(lt(A, 5), TruePredicate())

    def test_conjunction_on_right(self):
        assert implies(eq(A, 5), and_(lt(A, 10), gt(A, 1)))
        assert not implies(eq(A, 5), and_(lt(A, 10), gt(A, 7)))

    def test_conjunction_on_left(self):
        assert implies(and_(lt(A, 5), gt(B, 1)), lt(A, 10))

    def test_disjunction_on_right(self):
        assert implies(eq(A, 5), or_(eq(A, 5), eq(A, 10)))

    def test_disjunction_on_left(self):
        assert implies(or_(eq(A, 5), eq(A, 7)), lt(A, 10))
        assert not implies(or_(eq(A, 5), eq(A, 20)), lt(A, 10))

    def test_join_predicates_never_imply(self):
        assert not implies(eq(A, C), eq(A, C).flipped()) or True  # soundness only
        assert not implies(eq(A, C), lt(A, 5))


_OPS = ["<", "<=", ">", ">=", "=", "!="]


@given(
    op1=st.sampled_from(_OPS),
    value1=st.integers(-50, 50),
    op2=st.sampled_from(_OPS),
    value2=st.integers(-50, 50),
    probe=st.integers(-60, 60),
)
def test_implication_is_sound_on_single_column_ranges(op1, value1, op2, value2, probe):
    """If ``p implies q`` then every value satisfying p must satisfy q."""
    p = Comparison(A, op1, lit(value1))
    q = Comparison(A, op2, lit(value2))
    if implies(p, q) and p.evaluate({A: probe}):
        assert q.evaluate({A: probe})


@given(
    values=st.lists(st.integers(-20, 20), min_size=1, max_size=4),
    probe=st.integers(-25, 25),
)
def test_disjunction_of_equalities_matches_membership(values, probe):
    predicate = or_(*[eq(A, v) for v in values])
    assert predicate.evaluate({A: probe}) == (probe in values)
