"""Deadline budgets, the degradation ladder, and snapshot integrity.

The resilience contract (``docs/RESILIENCE.md``) makes three promises this
module enforces directly:

* a budgeted ``optimize`` call **never returns empty-handed** — on deadline
  expiry it falls down an explicit ladder (anytime greedy → Volcano-SH →
  no-sharing Volcano) and every rung's result is *byte-identical* to running
  that rung's algorithm directly on the same DAG;
* with a generous budget (or none) results are bit-identical to the
  unbudgeted code path — the budget machinery adds observability, never
  nondeterminism;
* session snapshots are sealed (versioned header + sha256): truncations, bit
  flips, and foreign payloads raise :class:`SnapshotError` instead of
  restoring garbage, and ``from_snapshot_or_cold`` turns that into a cold
  start rather than a crash.

The anytime-greedy rung gets the strongest test: a fake clock interrupts the
monotonicity-heap loop mid-search and the result must coincide exactly with
some ``max_materializations``-capped run — the committed prefix *is* a
complete greedy answer.
"""

import pickle

import pytest

from repro.api import Algorithm, MQOptimizer
from repro.catalog import psp_catalog
from repro.dag.builder import DagBuilder, Query
from repro.optimizer import GreedyOptions
from repro.optimizer.greedy import optimize_greedy
from repro.optimizer.report import BudgetExceeded, DegradationLevel
from repro.optimizer.volcano import optimize_volcano
from repro.optimizer.volcano_ru import optimize_volcano_ru
from repro.optimizer.volcano_sh import optimize_volcano_sh
from repro.service import (
    CacheWarmer,
    OptimizeBudget,
    OptimizerSession,
    SnapshotError,
)
from repro.service.resilience import open_snapshot, run_ladder, seal_snapshot
from repro.workloads.scaleup import scaleup_queries

from tests.generators import random_query_workload


def _plan_signature(result):
    """Everything that identifies a served plan, for byte-identity checks."""
    return (
        result.cost,
        sorted(result.plan.materialized),
        {
            node_id: op.id
            for node_id, op in result.plan.choices.items()
        },
    )


def _build(queries):
    return DagBuilder(psp_catalog()).build(list(queries))


GENEROUS = OptimizeBudget(deadline_ms=60_000.0)
EXPIRED_WITH_GRACE = OptimizeBudget(deadline_ms=0.0, grace_ms=60_000.0)
EXPIRED_NO_GRACE = OptimizeBudget(deadline_ms=0.0, grace_ms=0.0)


class TestOptimizeBudget:
    def test_rejects_negative_deadline(self):
        with pytest.raises(ValueError):
            OptimizeBudget(deadline_ms=-1.0)

    def test_rejects_negative_grace(self):
        with pytest.raises(ValueError):
            OptimizeBudget(deadline_ms=10.0, grace_ms=-0.5)

    def test_grace_defaults_to_half_the_deadline(self):
        assert OptimizeBudget(deadline_ms=100.0).resolved_grace_ms == 50.0
        assert OptimizeBudget(deadline_ms=100.0, grace_ms=7.0).resolved_grace_ms == 7.0

    def test_absolute_deadlines(self):
        budget = OptimizeBudget(deadline_ms=100.0, grace_ms=20.0)
        assert budget.deadline_from(5.0) == 5.0 + 0.1
        assert budget.grace_deadline_from(5.0) == 5.0 + 0.12


class TestLadderFullLevel:
    """A generous budget serves the requested algorithm, byte-identical."""

    @pytest.mark.parametrize(
        "algorithm,reference",
        [
            (Algorithm.VOLCANO, optimize_volcano),
            (Algorithm.VOLCANO_SH, optimize_volcano_sh),
            (Algorithm.VOLCANO_RU, optimize_volcano_ru),
            (Algorithm.GREEDY, optimize_greedy),
        ],
    )
    def test_full_matches_unbudgeted(self, algorithm, reference):
        import time

        dag = _build(scaleup_queries(3))
        expected = reference(dag)
        result = run_ladder(dag, algorithm, GENEROUS, time.perf_counter())
        report = result.degradation
        assert report is not None
        assert report.level is DegradationLevel.FULL
        assert not report.degraded
        assert report.requested == algorithm.value
        assert report.served == expected.algorithm
        assert _plan_signature(result) == _plan_signature(expected)

    def test_unsupported_algorithm_rejected_even_when_expired(self):
        import time

        dag = _build(scaleup_queries(2))
        with pytest.raises(ValueError, match="unsupported algorithm"):
            run_ladder(dag, Algorithm.EXHAUSTIVE, EXPIRED_NO_GRACE, time.perf_counter())


class TestLadderDegradedRungs:
    def test_expired_within_grace_falls_to_volcano_sh(self):
        import time

        dag = _build(scaleup_queries(3))
        expected = optimize_volcano_sh(dag)
        for algorithm in (Algorithm.GREEDY, Algorithm.VOLCANO_RU):
            result = run_ladder(dag, algorithm, EXPIRED_WITH_GRACE, time.perf_counter())
            report = result.degradation
            assert report.level is DegradationLevel.VOLCANO_SH
            assert report.degraded and report.expired
            assert report.served == "Volcano-SH"
            assert _plan_signature(result) == _plan_signature(expected)

    def test_expired_sh_request_within_grace_stays_full(self):
        # Volcano-SH *is* the grace rung: serving it to an expired SH request
        # is not a degradation.
        import time

        dag = _build(scaleup_queries(2))
        result = run_ladder(
            dag, Algorithm.VOLCANO_SH, EXPIRED_WITH_GRACE, time.perf_counter()
        )
        assert result.degradation.level is DegradationLevel.FULL

    def test_grace_exhausted_falls_to_no_sharing_floor(self):
        import time

        dag = _build(scaleup_queries(3))
        expected = optimize_volcano(dag)
        for algorithm in (Algorithm.GREEDY, Algorithm.VOLCANO_SH, Algorithm.VOLCANO_RU):
            result = run_ladder(dag, algorithm, EXPIRED_NO_GRACE, time.perf_counter())
            report = result.degradation
            assert report.level is DegradationLevel.NO_SHARING
            assert report.served == "Volcano"
            assert _plan_signature(result) == _plan_signature(expected)

    def test_volcano_request_is_always_full(self):
        # The floor is what was asked for: nothing to degrade through.
        import time

        dag = _build(scaleup_queries(2))
        result = run_ladder(dag, Algorithm.VOLCANO, EXPIRED_NO_GRACE, time.perf_counter())
        assert result.degradation.level is DegradationLevel.FULL

    def test_level_ordering_and_labels(self):
        assert DegradationLevel.FULL < DegradationLevel.ANYTIME_GREEDY
        assert DegradationLevel.ANYTIME_GREEDY < DegradationLevel.VOLCANO_SH
        assert DegradationLevel.VOLCANO_SH < DegradationLevel.NO_SHARING
        assert DegradationLevel.ANYTIME_GREEDY.label == "anytime-greedy"


class TestAnytimeGreedy:
    def test_volcano_ru_raises_budget_exceeded_on_expiry(self):
        dag = _build(scaleup_queries(3))
        with pytest.raises(BudgetExceeded):
            optimize_volcano_ru(dag, deadline=0.0)

    def test_interrupted_greedy_equals_some_capped_run(self, monkeypatch):
        """The anytime property, under a controlled clock.

        A fake ``perf_counter`` advances one tick per deadline check inside
        the monotonicity-heap loop, expiring mid-search.  The interrupted
        result must be byte-identical to a deadline-free run capped at *some*
        materialization count — the committed prefix is a complete answer,
        not a torn state.
        """
        import repro.optimizer.engine as engine

        dag = _build(scaleup_queries(4))
        full = optimize_greedy(dag)
        assert full.materialized_count > 1, "workload too small to interrupt"

        ticks = iter(range(10**9))

        def fake_clock():
            return float(next(ticks))

        monkeypatch.setattr(engine, "perf_counter", fake_clock)
        # Expire after a handful of heap pops: enough to commit some
        # materializations, not enough to finish.
        interrupted = optimize_greedy(dag, deadline=5.0)
        monkeypatch.undo()

        assert interrupted.counters.get("deadline_expired") == 1
        assert interrupted.materialized_count < full.materialized_count

        matches = []
        for cap in range(full.materialized_count + 1):
            capped = optimize_greedy(dag, GreedyOptions(max_materializations=cap))
            if _plan_signature(capped) == _plan_signature(interrupted):
                matches.append(cap)
        assert matches, (
            "interrupted greedy result matches no max_materializations-capped "
            "run — the anytime invariant is broken"
        )

    def test_no_deadline_is_bit_identical(self):
        dag = _build(scaleup_queries(3))
        a = optimize_greedy(dag)
        b = optimize_greedy(dag, deadline=None)
        assert _plan_signature(a) == _plan_signature(b)
        assert a.counters == b.counters


class TestSessionBudgetedOptimize:
    def test_generous_budget_matches_unbudgeted(self):
        queries = scaleup_queries(3)
        session = OptimizerSession(psp_catalog(), cache_plans=False)
        plain = session.optimize(queries, "greedy")
        budgeted = session.optimize(queries, "greedy", budget=GENEROUS)
        assert plain.degradation is None
        assert budgeted.degradation.level is DegradationLevel.FULL
        assert _plan_signature(plain) == _plan_signature(budgeted)

    def test_degraded_results_do_not_enter_the_plan_cache(self):
        queries = scaleup_queries(2)
        session = OptimizerSession(psp_catalog(), cache_plans=True)
        degraded = session.optimize(queries, "greedy", budget=EXPIRED_NO_GRACE)
        assert degraded.degradation.level is DegradationLevel.NO_SHARING
        followup = session.optimize(queries, "greedy")
        assert followup.degradation is None
        assert followup.algorithm == "Greedy"  # not the cached degraded plan

    def test_cached_full_results_serve_budgeted_calls(self):
        queries = scaleup_queries(2)
        session = OptimizerSession(psp_catalog(), cache_plans=True)
        full = session.optimize(queries, "greedy")
        served = session.optimize(queries, "greedy", budget=EXPIRED_NO_GRACE)
        assert served is full  # instant and of maximal quality

    def test_budgeted_large_random_workload_stays_valid(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog, cache_plans=False)
        for seed in (11, 12):
            queries = random_query_workload(seed, max_queries=6)
            result = session.optimize(
                queries, "greedy", budget=OptimizeBudget(deadline_ms=50.0)
            )
            report = result.degradation
            assert report is not None
            assert report.level in DegradationLevel
            assert report.elapsed_ms >= 0.0
            assert result.cost > 0.0
            assert result.plan.explain()  # the plan is walkable end-to-end


class TestSnapshotIntegrity:
    def test_seal_open_round_trip(self):
        payload = b"arbitrary session bytes"
        assert open_snapshot(seal_snapshot(payload)) == payload

    def test_truncated_snapshot_rejected(self):
        session = OptimizerSession(psp_catalog())
        session.build_dag(scaleup_queries(1))
        data = session.snapshot_state()
        for cut in (0, 5, len(data) // 2, len(data) - 1):
            with pytest.raises(SnapshotError):
                OptimizerSession.from_snapshot(data[:cut])

    def test_flipped_bit_rejected(self):
        session = OptimizerSession(psp_catalog())
        session.build_dag(scaleup_queries(1))
        data = bytearray(session.snapshot_state())
        data[len(data) // 2] ^= 0x10
        with pytest.raises(SnapshotError, match="checksum"):
            OptimizerSession.from_snapshot(bytes(data))

    def test_foreign_payload_raises_snapshot_error_and_type_error(self):
        # SnapshotError subclasses TypeError: the historical foreign-payload
        # contract (tests/test_arena.py) and the new typed error are the same
        # exception.
        blob = pickle.dumps({"not": "a session"})
        with pytest.raises(SnapshotError):
            OptimizerSession.from_snapshot(blob)
        with pytest.raises(TypeError):
            OptimizerSession.from_snapshot(blob)

    def test_unpicklable_sealed_payload_rejected(self):
        with pytest.raises(SnapshotError, match="unpickle"):
            OptimizerSession.from_snapshot(seal_snapshot(b"\x80garbage"))

    def test_from_snapshot_or_cold_falls_back(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog)
        session.build_dag(scaleup_queries(1))
        damaged = session.snapshot_state()[:-3]
        recovered = OptimizerSession.from_snapshot_or_cold(damaged, catalog)
        assert isinstance(recovered.restore_error, SnapshotError)
        # Cold but correct: same answer as a fresh one-shot optimizer.
        queries = scaleup_queries(1)
        expected = MQOptimizer(catalog).optimize(queries, "greedy")
        assert recovered.optimize(queries, "greedy").cost == expected.cost

    def test_from_snapshot_or_cold_clean_restore(self):
        catalog = psp_catalog()
        session = OptimizerSession(catalog)
        session.build_dag(scaleup_queries(1))
        restored = OptimizerSession.from_snapshot_or_cold(
            session.snapshot_state(), catalog
        )
        assert restored.restore_error is None
        assert restored.cache_stats().entries > 0


class TestCacheWarmerRetries:
    def test_transient_failure_retries_then_warms(self):
        session = OptimizerSession(psp_catalog(), cache_plans=False)
        real_build = session.build_dag
        calls = {"n": 0}

        def flaky(queries):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise RuntimeError("catalog mid-update")
            return real_build(queries)

        session.build_dag = flaky
        warmer = CacheWarmer(session, attempts=3, backoff_s=0.0)
        try:
            warmer.enqueue(scaleup_queries(1))
            warmer.flush()
        finally:
            warmer.close()
        assert warmer.warmed == 1
        assert warmer.errors == 0
        assert warmer.retries == 2
        assert isinstance(warmer.last_error, RuntimeError)

    def test_persistent_failure_does_not_kill_the_drain_thread(self):
        session = OptimizerSession(psp_catalog(), cache_plans=False)
        real_build = session.build_dag

        def poisoned(queries):
            if any(query.name == "bad" for query in queries):
                raise RuntimeError("permanently broken batch")
            return real_build(queries)

        session.build_dag = poisoned
        warmer = CacheWarmer(session, attempts=2, backoff_s=0.0)
        try:
            good = scaleup_queries(1)
            warmer.enqueue([Query("bad", good[0].expression)])
            warmer.flush()
            assert warmer.errors == 1
            assert warmer.retries == 1  # attempts - 1 extra tries
            # The thread survived: a later good batch still warms.
            warmer.enqueue(scaleup_queries(1))
            warmer.flush()
        finally:
            warmer.close()
        assert warmer.warmed == 1
        assert warmer.errors == 1

    def test_constructor_validation(self):
        session = OptimizerSession(psp_catalog(), cache_plans=False)
        with pytest.raises(ValueError):
            CacheWarmer(session, attempts=0)
        with pytest.raises(ValueError):
            CacheWarmer(session, backoff_s=-1.0)
