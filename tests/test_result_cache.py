"""Differential lockdown of the cross-batch result cache (PR 10).

Two oracles pin the feature:

1. **Cache-off ≡ seed.**  A session built without ``result_cache=True`` and
   an :class:`Executor` without a cache must behave *byte-identically* to the
   plain one-shot pipeline — same rows (row and column order included) and
   the same work accounting, down to the float accumulators.  The cache must
   cost nothing when it is off.

2. **Cache-on rows ≡ cold rows.**  Whatever the cache serves — exact digest
   matches at execution time, injected cached reads, covering hits that
   re-filter a weaker cached result through a compensating residual
   selection — the per-query rows must be byte-identical to a cold
   execution, while the accounted work (block reads) only ever goes down.

The sweeps run the PSP scale-up composites CQ1..CQ5, the TPC-D batch BQ5,
and 40 seeded random overlapping batches through one long-lived cached
session, each batch checked against its own cold execution.  Lifecycle tests
cover statistics-driven invalidation, the LRU bound of the ``results``
family, and the snapshot round-trip.
"""

import hashlib

import pytest

from repro import MQOptimizer
from repro.algebra import Join, Relation, Select, TruePredicate, col, eq, ge
from repro.catalog import psp_catalog, tpcd_catalog
from repro.dag.builder import Query
from repro.execution import Executor, generate_psp_data, generate_tpcd_data
from repro.service.session import OptimizerSession, SessionCacheLimits
from repro.workloads.batch import batched_queries
from repro.workloads.scaleup import component_query, scaleup_queries
from tests.generators import random_query_workload


def rows_digest(per_query_rows):
    """sha256 over the exact rows: values, row order, column order."""
    serialized = repr([
        [[(str(column), row[column]) for column in row] for row in rows]
        for rows in per_query_rows
    ])
    return hashlib.sha256(serialized.encode()).hexdigest()


def work_digest(result):
    """Rows digest plus the full work accounting — the seed-behavior oracle."""
    stats = result.stats
    token = "|".join((
        rows_digest(result.per_query_rows),
        str(stats.rows_scanned), str(stats.rows_processed),
        str(stats.rows_materialized), str(stats.blocks_read),
        str(stats.blocks_written), str(stats.reuses),
        repr(stats.io_seconds), repr(stats.cpu_seconds),
    ))
    return hashlib.sha256(token.encode()).hexdigest()


def _has_cross_product(query):
    def walk(expression):
        if isinstance(expression, Join) and isinstance(
            expression.predicate, TruePredicate
        ):
            return True
        return any(walk(child) for child in expression.children())

    return walk(query.expression)


def executable_workloads(count):
    """The first *count* seeded random batches free of cross-product joins.

    Cross products are legal plans but explode row counts under execution;
    the generator's other shapes (shared scans, overlapping range/equality
    selections, repeated tables, aggregations) are what the cache is about.
    Deterministic: seeds are scanned in order from 0.
    """
    workloads = []
    seed = 0
    while len(workloads) < count:
        workload = random_query_workload(seed)
        if not any(_has_cross_product(query) for query in workload):
            workloads.append((seed, workload))
        seed += 1
    return workloads


def cold_run(catalog, database, queries):
    """The seed pipeline: one-shot optimization, cache-less execution."""
    plan = MQOptimizer(catalog).optimize(queries, "greedy").plan
    return Executor(database, catalog).run(plan)


def cached_session(catalog, limits=None):
    session = OptimizerSession(
        catalog, cache_plans=False, result_cache=True, limits=limits
    )
    return session, session.result_cache


@pytest.fixture(scope="module")
def psp6():
    return psp_catalog(relation_count=6), generate_psp_data(
        relation_count=6, rows_per_table=100
    )


@pytest.fixture(scope="module")
def psp22():
    return psp_catalog(), generate_psp_data(relation_count=22, rows_per_table=80)


@pytest.fixture(scope="module")
def tpcd():
    return tpcd_catalog(), generate_tpcd_data(0.002)


class TestCacheOffIsSeedBehavior:
    def test_session_without_result_cache_has_no_cache(self, psp6):
        catalog, _ = psp6
        assert OptimizerSession(catalog, cache_plans=False).result_cache is None
        assert Executor(dict(), catalog).result_cache is None

    def test_cache_off_work_digest_matches_one_shot(self, psp6):
        catalog, database = psp6
        session = OptimizerSession(catalog, cache_plans=False)
        for queries in (component_query(1), component_query(2),
                        executable_workloads(1)[0][1]):
            warm = Executor(database, catalog).run(
                session.optimize(queries, "greedy").plan
            )
            reference = cold_run(catalog, database, queries)
            assert work_digest(warm) == work_digest(reference)

    def test_results_family_stays_empty_without_cache(self, psp6):
        catalog, database = psp6
        session = OptimizerSession(catalog, cache_plans=False)
        Executor(database, catalog).run(
            session.optimize(component_query(1), "greedy").plan
        )
        assert len(session.cache.results) == 0


class TestDifferentialRows:
    def test_scaleup_composites_rows_identical_and_cheaper(self, psp22):
        catalog, database = psp22
        session, cache = cached_session(catalog)
        executor = Executor(database, catalog, result_cache=cache)
        off_blocks = on_blocks = 0
        for i in range(1, 6):
            queries = scaleup_queries(i)
            cold = cold_run(catalog, database, queries)
            cached = executor.run(session.optimize(queries, "greedy").plan)
            assert rows_digest(cached.per_query_rows) == rows_digest(
                cold.per_query_rows
            ), f"CQ{i}: cached rows diverged from the cold execution"
            assert cached.stats.blocks_read <= cold.stats.blocks_read
            off_blocks += cold.stats.blocks_read
            on_blocks += cached.stats.blocks_read
        assert on_blocks < off_blocks
        counters = cache.counters()
        assert counters["stores"] > 0
        assert counters["exec_serves"] + counters["injected_serves"] > 0

    def test_bq5_rows_identical_across_repeats(self, tpcd):
        catalog, database = tpcd
        queries = batched_queries(5)
        cold = cold_run(catalog, database, queries)
        session, cache = cached_session(catalog)
        executor = Executor(database, catalog, result_cache=cache)
        first = executor.run(session.optimize(queries, "greedy").plan)
        second = executor.run(session.optimize(queries, "greedy").plan)
        oracle = rows_digest(cold.per_query_rows)
        assert rows_digest(first.per_query_rows) == oracle
        assert rows_digest(second.per_query_rows) == oracle
        # The repeat must be served, not recomputed.
        assert second.stats.blocks_read < cold.stats.blocks_read
        assert cache.exec_serves + cache.injected_serves > 0

    def test_forty_seeded_random_batches_differential(self, psp6):
        catalog, database = psp6
        session, cache = cached_session(catalog)
        executor = Executor(database, catalog, result_cache=cache)
        off_blocks = on_blocks = 0
        for seed, queries in executable_workloads(40):
            cold = cold_run(catalog, database, queries)
            cached = executor.run(session.optimize(queries, "greedy").plan)
            assert rows_digest(cached.per_query_rows) == rows_digest(
                cold.per_query_rows
            ), f"seed {seed}: cached rows diverged from the cold execution"
            assert cached.stats.blocks_read <= cold.stats.blocks_read, (
                f"seed {seed}: the cache made execution do *more* block reads"
            )
            off_blocks += cold.stats.blocks_read
            on_blocks += cached.stats.blocks_read
        assert on_blocks < off_blocks
        counters = cache.counters()
        assert counters["exact_injections"] > 0
        assert counters["injected_serves"] > 0

    def test_covering_hit_applies_residual_selection(self, psp6):
        catalog, database = psp6
        weaker = Query("weak", Select(Relation("psp1"),
                                      ge(col("psp1", "num"), 700)))
        stronger = Query("strong", Select(Relation("psp1"),
                                          ge(col("psp1", "num"), 900)))
        session, cache = cached_session(catalog)
        executor = Executor(database, catalog, result_cache=cache)
        executor.run(session.optimize([weaker], "greedy").plan)
        assert cache.covering_injections == 0
        cold = cold_run(catalog, database, [stronger])
        cached = executor.run(session.optimize([stronger], "greedy").plan)
        # The stronger scan was answered from the weaker cached result plus
        # a compensating residual selection — and the rows are byte-equal.
        assert cache.covering_injections >= 1
        assert cache.injected_serves >= 1
        assert rows_digest(cached.per_query_rows) == rows_digest(
            cold.per_query_rows
        )

    def test_covering_sweep_forces_residual_hits(self, psp6):
        """Chain batches whose scan thresholds strengthen batch over batch:
        every later batch can only be answered from the earlier, weaker
        cached scans through residual compensation."""
        catalog, database = psp6

        def chain(threshold, name):
            expression = Select(Relation("psp1"),
                                ge(col("psp1", "num"), threshold))
            expression = Join(expression, Relation("psp2"),
                              eq(col("psp1", "sp"), col("psp2", "p")))
            return Query(name, expression)

        session, cache = cached_session(catalog)
        executor = Executor(database, catalog, result_cache=cache)
        for index, threshold in enumerate((600, 700, 800, 900)):
            queries = [chain(threshold, f"T{threshold}")]
            cold = cold_run(catalog, database, queries)
            cached = executor.run(session.optimize(queries, "greedy").plan)
            assert rows_digest(cached.per_query_rows) == rows_digest(
                cold.per_query_rows
            ), f"threshold {threshold}"
            if index:
                assert cache.covering_injections >= index
        assert cache.injected_serves > 0


class TestLifecycle:
    def test_statistics_update_invalidates_dependent_entries(self, psp6):
        catalog = psp_catalog(relation_count=6)  # private: this test mutates
        database = generate_psp_data(relation_count=6, rows_per_table=100)
        session, cache = cached_session(catalog)
        executor = Executor(database, catalog, result_cache=cache)
        executor.run(session.optimize(component_query(1), "greedy").plan)
        deps_before = [entry.deps for entry, _ in session.cache.results.values()]
        assert any("psp1" in deps for deps in deps_before)
        assert any("psp1" not in deps for deps in deps_before)
        catalog.update_statistics("psp1", row_count=777)
        session.cache.sync()
        deps_after = [entry.deps for entry, _ in session.cache.results.values()]
        assert deps_after, "invalidation wiped unrelated entries"
        assert all("psp1" not in deps for deps in deps_after)

    def test_results_family_honors_lru_bound(self, psp6):
        catalog, database = psp6
        session, cache = cached_session(
            catalog, limits=SessionCacheLimits(results=2)
        )
        executor = Executor(database, catalog, result_cache=cache)
        for component in (1, 2, 1, 2):
            queries = component_query(component)
            cold = cold_run(catalog, database, queries)
            cached = executor.run(session.optimize(queries, "greedy").plan)
            assert len(session.cache.results) <= 2
            assert rows_digest(cached.per_query_rows) == rows_digest(
                cold.per_query_rows
            )
        assert session.cache.results.evictions > 0

    def test_snapshot_roundtrip_serves_restored_entries(self, psp6):
        catalog, database = psp6
        donor, donor_cache = cached_session(catalog)
        Executor(database, catalog, result_cache=donor_cache).run(
            donor.optimize(component_query(1), "greedy").plan
        )
        restored = OptimizerSession.from_snapshot(
            donor.snapshot_state(), cache_plans=False, result_cache=True
        )
        assert restored.result_cache is not None
        assert restored.result_cache.store is restored.cache.results
        assert len(restored.cache.results) == len(donor.cache.results)
        executor = Executor(database, catalog,
                            result_cache=restored.result_cache)
        cold = cold_run(catalog, database, component_query(1))
        served = executor.run(restored.optimize(component_query(1),
                                                "greedy").plan)
        assert rows_digest(served.per_query_rows) == rows_digest(
            cold.per_query_rows
        )
        assert served.stats.blocks_read < cold.stats.blocks_read
        counters = restored.result_cache.counters()
        assert counters["exec_serves"] + counters["injected_serves"] > 0
